"""repro — Content-Oblivious Leader Election on Rings, reproduced.

A faithful, executable reproduction of Frei, Gelles, Ghazy & Nolin,
*Content-Oblivious Leader Election on Rings* (PODC/DISC 2024,
arXiv:2405.03646): leader election over asynchronous rings whose channels
corrupt every message down to a contentless *pulse*.

Quick start::

    from repro import elect_leader_oriented
    report = elect_leader_oriented([3, 7, 5, 2])
    assert report.leader == 1                      # index of ID 7
    assert report.total_pulses == 4 * (2 * 7 + 1)  # Theorem 1, exactly

Package layout:

* :mod:`repro.core` — the paper's algorithms (1-4), invariants, lower
  bound, composition.
* :mod:`repro.simulator` — the asynchronous fully-defective network
  substrate (channels, schedulers, engine).
* :mod:`repro.defective` — content-over-pulses transport (the Corollary 5
  substrate).
* :mod:`repro.baselines` — classic content-carrying ring elections.
* :mod:`repro.ids` — Algorithm 4's random ID sampling.
* :mod:`repro.analysis` — closed forms and statistics.
* :mod:`repro.asyncio_runtime` — an alternative asyncio execution backend.
"""

from repro.core.anonymous import (
    AnonymousOutcome,
    Prop19Outcome,
    run_anonymous,
    run_prop19,
)
from repro.core.common import LeaderState
from repro.core.composition import ComposedOutcome, run_composed
from repro.core.election import (
    ElectionReport,
    elect_leader_anonymous,
    elect_leader_nonoriented,
    elect_leader_oriented,
)
from repro.core.lower_bound import (
    lower_bound_pulses,
    solitude_pattern,
    solitude_patterns,
)
from repro.core.nonoriented import IdScheme, run_nonoriented
from repro.core.terminating import run_terminating
from repro.core.warmup import run_warmup
from repro.defective.simulation import run_defective_computation
from repro.exceptions import ReproError
from repro.ids.sampling import sample_ids

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AnonymousOutcome",
    "ComposedOutcome",
    "ElectionReport",
    "IdScheme",
    "LeaderState",
    "Prop19Outcome",
    "ReproError",
    "elect_leader_anonymous",
    "elect_leader_nonoriented",
    "elect_leader_oriented",
    "lower_bound_pulses",
    "run_anonymous",
    "run_composed",
    "run_defective_computation",
    "run_nonoriented",
    "run_prop19",
    "run_terminating",
    "run_warmup",
    "sample_ids",
    "solitude_pattern",
    "solitude_patterns",
]
