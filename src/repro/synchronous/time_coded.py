"""Time-sliced leader election: O(n) messages by spending rounds.

The classic synchronous algorithm (Lynch's *TimeSlice*; cf. the paper's
Section 1.2 citations [21, 17]) that the asynchronous lower bounds rule
out: with known ring size ``n`` and lockstep rounds, time itself encodes
IDs.

Round structure.  Slot ``v`` occupies rounds ``[(v-1)*n, v*n)``.  A node
with ID ``v`` that has heard nothing by round ``(v-1)*n`` originates a
claim carrying its ID; claims travel one hop per round, clockwise.  The
minimum-ID node's claim completes its circulation strictly before any
other node's slot begins, so exactly **n messages** are ever sent — the
information that would cost messages in the asynchronous world is read
off the shared round counter instead.  The round cost is ``IDmin * n``:
the message/time trade-off the paper contrasts with its own
``n(2*IDmax+1)``-message, time-free setting.

Note this algorithm elects the *minimum* ID (tradition for TimeSlice)
and is **non-uniform** (nodes know ``n``) and **content-carrying**
(claims hold IDs) — all three are luxuries the content-oblivious
asynchronous model denies, which is exactly the point of the contrast.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.core.common import (
    CW_ARRIVAL_PORT,
    CW_SEND_PORT,
    LeaderState,
    validate_unique_ids,
)
from repro.exceptions import ConfigurationError
from repro.simulator.ring import build_oriented_ring
from repro.synchronous.engine import SyncEngine, SyncNode, SyncNodeAPI, SyncRunResult


class TimeCodedElectionNode(SyncNode):
    """One TimeSlice node (elects the minimum ID; n known)."""

    def __init__(self, node_id: int, ring_size: int) -> None:
        super().__init__()
        if ring_size < 1:
            raise ConfigurationError(f"ring size must be positive, got {ring_size}")
        self.node_id = node_id
        self.ring_size = ring_size
        self.leader_id: Optional[int] = None

    def on_round(
        self,
        api: SyncNodeAPI,
        round_number: int,
        inbox: List[Tuple[int, Any]],
    ) -> None:
        for port, content in inbox:
            if port != CW_ARRIVAL_PORT:
                continue  # unidirectional: only CW claims exist
            claim_id = content
            if claim_id == self.node_id:
                # Our claim circled the ring: we are the minimum.
                self.leader_id = self.node_id
                api.terminate(LeaderState.LEADER)
                return
            # A smaller ID claimed first (only the global minimum's claim
            # can ever be in flight): yield, forward, and stop.
            self.leader_id = claim_id
            api.send(CW_SEND_PORT, claim_id)
            api.terminate(LeaderState.NON_LEADER)
            return
        # Silence so far: if our slot opens this round, claim leadership.
        if round_number == (self.node_id - 1) * self.ring_size:
            api.send(CW_SEND_PORT, self.node_id)


def run_time_coded_election(
    ids: Sequence[int], max_rounds: Optional[int] = None
) -> SyncRunResult:
    """Run TimeSlice on a synchronous oriented ring (non-defective).

    Args:
        ids: Unique positive IDs in clockwise order; every node also
            knows ``len(ids)`` (the algorithm is non-uniform).
        max_rounds: Engine bound; defaults to ``(min(ids)+1) * n + 2``,
            comfortably past the algorithm's ``IDmin * n`` finish.
    """
    validate_unique_ids(ids)
    n = len(ids)
    nodes = [TimeCodedElectionNode(node_id, ring_size=n) for node_id in ids]
    topology = build_oriented_ring(nodes, defective=False)
    if max_rounds is None:
        max_rounds = (min(ids) + 1) * n + 2
    return SyncEngine(topology.network, max_rounds=max_rounds).run()
