"""Synchronous rings: the related-work contrast (paper, Section 1.2).

The paper's Section 1.2 notes that *synchronous* rings escape the
asynchronous lower bounds: "leader election can be performed by
communicating only O(n) messages" (Frederickson-Lynch 1987; El-Ruby et
al. 1991), because in lockstep rounds **silence carries information** —
a node can encode its ID in *time* instead of messages.

This subpackage provides a synchronous round-based engine for the same
:class:`~repro.simulator.node.Node`-style objects and two classic
algorithms exercising the time-coding trick:

* :class:`~repro.synchronous.time_coded.TimeCodedElectionNode` — the
  minimum-ID node speaks first after waiting ``ID * n_slack`` rounds;
  its claim circulates once and suppresses everyone else: **exactly n
  messages**, at a round cost proportional to the minimum ID (the
  time/message trade-off the paper contrasts with).
* a synchronous run of the paper's own Algorithm 1/2 under the
  round-robin "synchronous" schedule, showing the *message* count does
  not improve — content-obliviousness, not asynchrony, pins it to
  ``IDmax`` (the pulse-counting argument needs every pulse either way).

The engine is deliberately minimal: rounds, per-round message batches,
round counters available to nodes — everything the asynchronous model
denies.
"""

from repro.synchronous.engine import SyncEngine, SyncRunResult
from repro.synchronous.kernel_node import KernelSyncNode
from repro.synchronous.time_coded import (
    TimeCodedElectionNode,
    run_time_coded_election,
)

__all__ = [
    "KernelSyncNode",
    "SyncEngine",
    "SyncRunResult",
    "TimeCodedElectionNode",
    "run_time_coded_election",
]
