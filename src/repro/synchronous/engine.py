"""A minimal synchronous round-based engine.

Synchrony is everything the paper's asynchronous model withholds: global
lockstep rounds, messages sent in round ``r`` all delivered at the start
of round ``r + 1``, and — crucially — a shared round counter, so that
**not** sending in a round is observable and can carry information.

The engine reuses the ring wiring of :mod:`repro.simulator.ring` (ports,
channels, flips) but drives :class:`SyncNode` objects whose single
callback sees the whole round: the round number and the batch of
messages that arrived.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ProtocolViolation, SimulationLimitExceeded
from repro.simulator.network import Network
from repro.simulator.node import check_port


class SyncNodeAPI:
    """Capabilities available to a node during one round."""

    __slots__ = ("_engine", "_node_index")

    def __init__(self, engine: "SyncEngine", node_index: int) -> None:
        self._engine = engine
        self._node_index = node_index

    def send(self, port: int, content: Any = None) -> None:
        """Send a message out of ``port``; it arrives next round."""
        self._engine._send(self._node_index, check_port(port), content)

    def terminate(self, output: Any = None) -> None:
        """Enter the terminating state with ``output``."""
        self._engine._terminate(self._node_index, output)


class SyncNode(abc.ABC):
    """A node driven in synchronous rounds."""

    def __init__(self) -> None:
        self.terminated = False
        self.output: Optional[Any] = None

    def _mark_terminated(self, output: Any) -> None:
        if self.terminated:
            raise ProtocolViolation("node terminated twice")
        self.terminated = True
        self.output = output

    @abc.abstractmethod
    def on_round(
        self,
        api: SyncNodeAPI,
        round_number: int,
        inbox: List[Tuple[int, Any]],
    ) -> None:
        """Called once per round with all messages that just arrived.

        Args:
            api: Send/terminate capabilities for this round.
            round_number: The global round counter, starting at 0 —
                knowledge the asynchronous model forbids.
            inbox: ``(port, content)`` pairs delivered this round, in
                per-channel FIFO order.
        """


@dataclass
class SyncRunResult:
    """Outcome of a synchronous run."""

    rounds_used: int
    total_sent: int
    outputs: List[Any]
    terminated: List[bool]
    termination_rounds: Dict[int, int] = field(default_factory=dict)

    @property
    def all_terminated(self) -> bool:
        return all(self.terminated)


class SyncEngine:
    """Runs a network of :class:`SyncNode` objects in lockstep rounds.

    Args:
        network: Wired topology (ring builders work unchanged) whose
            nodes are :class:`SyncNode` instances.
        max_rounds: Bound before declaring non-termination.
        stop_when_quiescent: Also stop once a round delivers no messages
            and queues none — the halting condition for *stabilizing*
            algorithms (Algorithm 1's kernel never terminates; it
            quiesces).
    """

    def __init__(
        self,
        network: Network,
        max_rounds: int = 100_000,
        stop_when_quiescent: bool = False,
    ) -> None:
        self.network = network
        self.max_rounds = max_rounds
        self.stop_when_quiescent = stop_when_quiescent
        self._in_flight: Dict[int, List[Any]] = {}  # channel_id -> payloads
        self._total_sent = 0
        self._round = 0
        self._termination_rounds: Dict[int, int] = {}
        self._apis = [
            SyncNodeAPI(self, index) for index in range(len(network.nodes))
        ]

    # -- node-facing -----------------------------------------------------------

    def _send(self, node_index: int, port: int, content: Any) -> None:
        node = self.network.nodes[node_index]
        if node.terminated:
            raise ProtocolViolation(
                f"node {node_index} attempted to send after terminating"
            )
        channel = self.network.channel_for_send(node_index, port)
        payload = None if channel.defective else content
        self._in_flight.setdefault(channel.channel_id, []).append(payload)
        self._total_sent += 1

    def _terminate(self, node_index: int, output: Any) -> None:
        self.network.nodes[node_index]._mark_terminated(output)
        self._termination_rounds[node_index] = self._round

    # -- the round loop ----------------------------------------------------------

    def run(self) -> SyncRunResult:
        """Run rounds until every node terminates (or the bound trips)."""
        nodes = self.network.nodes
        while not all(node.terminated for node in nodes):
            if (
                self.stop_when_quiescent
                and self._round > 0
                and not self._in_flight
            ):
                break
            if self._round >= self.max_rounds:
                raise SimulationLimitExceeded(
                    f"no global termination after {self._round} rounds",
                    steps=self._round,
                )
            arriving, self._in_flight = self._in_flight, {}
            inboxes: Dict[int, List[Tuple[int, Any]]] = {}
            for channel_id, payloads in arriving.items():
                dst_node, dst_port = self.network.channels[channel_id].dst
                inboxes.setdefault(dst_node, []).extend(
                    (dst_port, payload) for payload in payloads
                )
            for index, node in enumerate(nodes):
                if node.terminated:
                    continue
                node.on_round(
                    self._apis[index], self._round, inboxes.get(index, [])
                )
            self._round += 1
        return SyncRunResult(
            rounds_used=self._round,
            total_sent=self._total_sent,
            outputs=[node.output for node in nodes],
            terminated=[node.terminated for node in nodes],
            termination_rounds=dict(self._termination_rounds),
        )
