"""Synchronous adapter around the transition kernels.

The synchronous engine is just another backend of the per-algorithm
kernels (:mod:`repro.core.kernels`): a :class:`KernelSyncNode` holds one
kernel state and forwards each round's inbox to the kernel's ``step`` —
no transition logic lives here.  Running the paper's algorithms under
lockstep rounds is the related-work contrast of Section 1.2: the message
count does *not* improve (content-obliviousness, not asynchrony, pins it
to ``IDmax``), which the backend-conformance tests check by comparing
terminal kernel fingerprints and pulse totals against the asynchronous
backends.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.synchronous.engine import SyncNode, SyncNodeAPI


class KernelSyncNode(SyncNode):
    """Drives one kernel state in synchronous rounds.

    Args:
        kernel: A kernel module from :mod:`repro.core.kernels` (must
            expose ``make_state`` / ``init`` / ``step``).
        node_id: The node's identifier, forwarded to ``make_state``.
        **make_state_kwargs: Extra ``make_state`` options (e.g. the
            non-oriented kernel's ``scheme``).
    """

    def __init__(self, kernel: Any, node_id: int, **make_state_kwargs: Any):
        super().__init__()
        self.kernel = kernel
        self.state = kernel.make_state(node_id, **make_state_kwargs)

    def _apply(
        self,
        api: SyncNodeAPI,
        emissions: Tuple[Tuple[int, int], ...],
        verdict: Optional[Any],
    ) -> None:
        for port, count in emissions:
            for _ in range(count):
                api.send(port)
        if verdict is not None:
            if hasattr(self.state, "terminated"):
                self.state.terminated = True
            api.terminate(verdict)

    def on_round(
        self,
        api: SyncNodeAPI,
        round_number: int,
        inbox: List[Tuple[int, Any]],
    ) -> None:
        if round_number == 0:
            _, emissions, verdict = self.kernel.init(self.state)
            self._apply(api, emissions, verdict)
        counts: Dict[int, int] = {}
        for port, _content in inbox:
            counts[port] = counts.get(port, 0) + 1
        # Port 0 is the CW arrival port: processing CW before CCW within a
        # round matches the fleet's flush order (any per-round interleaving
        # is a legal asynchronous schedule; this one is pinned for the
        # conformance tests).
        for port in sorted(counts):
            if self.terminated:
                break
            _, emissions, verdict = self.kernel.step(
                self.state, port, counts[port]
            )
            self._apply(api, emissions, verdict)
