"""Command-line interface: the paper's results from a shell.

Usage (after ``pip install -e .``)::

    python -m repro elect --ids 3,7,5,2
    python -m repro elect --setting nonoriented --ids 12,31,7 --flips 1,0,1
    python -m repro elect --setting anonymous --n 12 --c 2 --seed 42
    python -m repro compute --ids 14,3,27 --inputs 18,22,19 --op sum
    python -m repro verify --ids 1,2,3
    python -m repro solitude --max-id 16
    python -m repro compare --n 16 --spread 256
    python -m repro timeline --ids 2,3
    python -m repro sweep --workload placements --n 64 --trials 1000 --fleet
    python -m repro sweep --workload whp --n 16 --trials 5000 --min-rate 0.9

Every subcommand prints a plain-text report and exits 0 on success,
1 when a guarantee failed to hold (useful in CI).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.accel import BACKEND_CHOICES
from repro.simulator.scheduler import Scheduler, all_standard_schedulers


def _parse_int_list(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated ints, got {text!r}")


def _parse_bool_list(text: str) -> List[bool]:
    return [bool(value) for value in _parse_int_list(text)]


def _parse_topology(spec: str):
    """Build the graph named by a ``--topology`` spec.

    Grammar (names come from :data:`repro.graphs.samples.SAMPLE_TOPOLOGIES`)::

        theta[:A,B,C]      theta graph, path interior counts A,B,C
        nested[:DEPTH[,CYCLE]]   nested-ears ladder
        random:SEED[,TARGET]     random ear composition
        ring:N             the cycle C_N
        bridge             two triangles joined by a bridge (refusal demo)
        edges:A-B,C-D,...  explicit edge list (n = max vertex + 1)
    """
    from repro.exceptions import ConfigurationError
    from repro.graphs.connectivity import Graph
    from repro.graphs.samples import (
        bridge_graph,
        nested_ears,
        random_ear_composition,
        theta_graph,
    )

    name, _, params = spec.partition(":")
    values = _parse_int_list(params) if params and name != "edges" else []
    try:
        if name == "theta":
            return theta_graph(*values) if values else theta_graph()
        if name == "nested":
            return nested_ears(*values) if values else nested_ears()
        if name == "random":
            if not values:
                raise SystemExit("--topology random needs a seed: random:SEED[,TARGET]")
            return random_ear_composition(*values)
        if name == "ring":
            if len(values) != 1:
                raise SystemExit("--topology ring needs a size: ring:N")
            return Graph.ring(values[0])
        if name == "bridge":
            return bridge_graph()
        if name == "edges":
            try:
                pairs = [
                    tuple(int(part) for part in chunk.split("-"))
                    for chunk in params.split(",")
                    if chunk
                ]
            except ValueError:
                raise SystemExit(
                    f"--topology edges expects A-B,C-D,... pairs, got {params!r}"
                )
            if not pairs or any(len(pair) != 2 for pair in pairs):
                raise SystemExit(
                    f"--topology edges expects A-B,C-D,... pairs, got {params!r}"
                )
            n = max(max(pair) for pair in pairs) + 1
            return Graph.from_edges(n, pairs)
    except ConfigurationError as error:
        raise SystemExit(f"--topology {spec}: {error}") from None
    raise SystemExit(
        f"unknown topology {name!r}; choose from theta, nested, random, "
        "ring, bridge, edges"
    )


def _scheduler(name: Optional[str]) -> Optional[Scheduler]:
    if name is None:
        return None
    registry = all_standard_schedulers()
    if name not in registry:
        raise SystemExit(
            f"unknown scheduler {name!r}; choose from {sorted(registry)}"
        )
    return registry[name]


def _cmd_elect_topology(args: argparse.Namespace) -> int:
    from repro.core.ear_election import elect_leader_ear
    from repro.core.kernels.ear import build_routing
    from repro.exceptions import BridgeWitnessError

    graph = _parse_topology(args.topology)
    ids = args.ids if args.ids is not None else list(range(1, graph.n + 1))
    try:
        report = elect_leader_ear(graph, ids, scheduler=_scheduler(args.scheduler))
    except BridgeWitnessError as refusal:
        print(f"setting      : ear (2-edge-connected election)")
        print(f"topology     : {args.topology} (n={graph.n}, "
              f"{len(graph.edges)} edges)")
        print(f"REFUSED      : {refusal}")
        if refusal.bridge is not None:
            print(f"witness      : bridge edge {refusal.bridge}")
        return 1
    routing = build_routing(graph)
    print(f"setting      : ear (2-edge-connected election)")
    print(f"topology     : {args.topology} (n={graph.n}, "
          f"{len(graph.edges)} edges)")
    print(f"virtual ring : L={routing.length} stride C={routing.stride}")
    print(f"leader       : {report.leader}")
    print(f"states       : {[state.value for state in report.states]}")
    print(f"pulses       : {report.total_pulses}")
    exact = (
        "exact match" if report.total_pulses == report.claimed_bound
        else "MISMATCH"
    )
    print(f"bound L*IDmax*C : {report.claimed_bound}  ({exact})")
    return 0 if report.succeeded else 1


def _cmd_elect(args: argparse.Namespace) -> int:
    from repro.core.election import (
        elect_leader_anonymous,
        elect_leader_nonoriented,
        elect_leader_oriented,
    )

    if args.topology is not None:
        return _cmd_elect_topology(args)
    if args.setting == "oriented":
        report = elect_leader_oriented(args.ids, scheduler=_scheduler(args.scheduler))
    elif args.setting == "nonoriented":
        report = elect_leader_nonoriented(
            args.ids, flips=args.flips, scheduler=_scheduler(args.scheduler)
        )
    else:
        report = elect_leader_anonymous(
            args.n, c=args.c, seed=args.seed, scheduler=_scheduler(args.scheduler)
        )
    print(f"setting      : {report.setting}")
    print(f"ring size    : {report.n}")
    print(f"leader       : {report.leader}")
    print(f"states       : {[state.value for state in report.states]}")
    print(f"pulses       : {report.total_pulses}")
    if report.claimed_bound is not None:
        exact = "exact match" if report.total_pulses == report.claimed_bound else "MISMATCH"
        print(f"paper bound  : {report.claimed_bound}  ({exact})")
    print(f"terminated   : {report.terminated}")
    if report.cw_ports is not None:
        print(f"cw ports     : {report.cw_ports}")
    return 0 if report.succeeded else 1


def _cmd_compute(args: argparse.Namespace) -> int:
    if args.ids is not None:
        from repro.core.composition import run_composed
        from repro.defective.simulation import AllReduceProgram, GatherProgram, SizeProgram

        programs = {
            "sum": lambda: AllReduceProgram(lambda a, b: a + b),
            "max": lambda: AllReduceProgram(max),
            "min": lambda: AllReduceProgram(min),
            "size": SizeProgram,
            "gather": GatherProgram,
        }
        if args.op not in programs:
            raise SystemExit(f"unknown op {args.op!r}; choose from {sorted(programs)}")
        outcome = run_composed(args.ids, args.inputs, programs[args.op]())
        print(f"leader (elected): node {outcome.leader}")
        print(f"outputs         : {outcome.outputs}")
        print(f"pulses          : {outcome.total_pulses}")
        print(f"quiescent term  : {outcome.run.quiescently_terminated}")
        return 0 if outcome.run.quiescently_terminated else 1
    from repro.defective.simulation import run_defective_computation

    try:
        outcome = run_defective_computation(args.inputs, args.op, leader=args.leader)
    except ValueError as error:
        raise SystemExit(str(error)) from None
    print(f"leader (given): node {args.leader}")
    print(f"outputs       : {outcome.outputs}")
    print(f"pulses        : {outcome.total_pulses}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core.composition import run_simulated_composed
    from repro.defective.ring_algorithms import (
        SimBroadcast,
        SimChangRoberts,
        SimConvergecastSum,
    )

    ids = args.ids
    if args.algorithm == "chang_roberts":
        sims = [SimChangRoberts(node_id) for node_id in ids]
    elif args.algorithm == "broadcast":
        sims = [SimBroadcast() for _ in ids]
        # The phase-1 winner is the max-ID node; it carries the value.
        sims[max(range(len(ids)), key=lambda i: ids[i])] = SimBroadcast(args.value)
    elif args.algorithm == "sum":
        inputs = args.inputs if args.inputs is not None else list(ids)
        if len(inputs) != len(ids):
            raise SystemExit("--inputs must match --ids in length")
        sims = [SimConvergecastSum(value) for value in inputs]
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown algorithm {args.algorithm!r}")
    outcome = run_simulated_composed(ids, sims)
    print(f"phase-1 leader : node {outcome.leader}")
    print(f"sim outputs    : {outcome.outputs}")
    print(f"total pulses   : {outcome.total_pulses}")
    print(f"quiescent term : {outcome.run.quiescently_terminated}")
    return 0 if outcome.run.quiescently_terminated else 1


def _expected_pulse_bound(algorithm: str, ids: List[int]) -> "tuple[str, int]":
    """The paper's exact message count for one instance of ``algorithm``."""
    n, id_max = len(ids), max(ids)
    if algorithm == "warmup":
        return ("n*IDmax (Cor 13)", n * id_max)
    if algorithm == "terminating":
        return ("n(2*IDmax+1) (Thm 1)", n * (2 * id_max + 1))
    return ("n(2*IDmax+1) (Thm 2)", n * (2 * id_max + 1))


def _fault_model_from_args(args: argparse.Namespace):
    """Compile the declarative ``--inject-*`` flags into a FaultModel.

    Returns None when no fault clause was requested (fault-free run).
    """
    from repro.exceptions import ConfigurationError
    from repro.faults.model import (
        FaultBurst,
        FaultModel,
        NodeCrash,
        StateCorruption,
    )

    burst = None
    if args.inject_burst is not None:
        if len(args.inject_burst) != 2:
            raise SystemExit("--inject-burst takes START,LENGTH")
        start, length = args.inject_burst
        burst = FaultBurst(start=start, length=length)
    crashes = []
    for spec in args.inject_crash or []:
        parts = _parse_int_list(spec)
        if len(parts) == 2:
            crashes.append(NodeCrash(node=parts[0], at_round=parts[1]))
        elif len(parts) == 3:
            crashes.append(
                NodeCrash(
                    node=parts[0], at_round=parts[1], restart_after=parts[2]
                )
            )
        else:
            raise SystemExit("--inject-crash takes NODE,ROUND[,RESTART_AFTER]")
    corruptions = []
    for spec in args.inject_corrupt or []:
        parts = spec.split(",")
        if len(parts) != 4:
            raise SystemExit("--inject-corrupt takes NODE,ROUND,FIELD,VALUE")
        try:
            corruptions.append(
                StateCorruption(
                    node=int(parts[0]),
                    at_round=int(parts[1]),
                    field=parts[2],
                    value=int(parts[3]),
                )
            )
        except ValueError:
            raise SystemExit(
                "--inject-corrupt NODE, ROUND and VALUE must be integers"
            ) from None
    try:
        model = FaultModel(
            drop_rate=args.inject_drop_rate,
            duplicate_rate=args.inject_duplicate_rate,
            spurious_rate=args.inject_spurious_rate,
            seed=args.inject_seed,
            burst=burst,
            crashes=tuple(crashes),
            corruptions=tuple(corruptions),
        )
    except ConfigurationError as error:
        raise SystemExit(str(error)) from None
    return None if model.is_noop else model


def _print_recovery_counterexamples(report) -> bool:
    """Print and replay each counterexample; True when all reproduce."""
    all_reproduce = True
    for ce in report.counterexamples:
        print(f"counterexample       : [{ce.classification}] {ce.message}")
        if ce.first_invariant is not None:
            print(f"  first invariant    : {ce.first_invariant}")
        print(
            f"  replay             : instance {ce.instance}, ids "
            f"{list(ce.ids)}"
            + (f", flips {list(ce.flips)}" if ce.flips is not None else "")
            + f", seed {ce.seed}, sched-seed {ce.sched_seed}"
        )
        reproduced = ce.replay()
        print(
            f"  replay reproduces  : "
            f"{'yes' if reproduced is not None else 'NO'}"
        )
        all_reproduce = all_reproduce and reproduced is not None
    return all_reproduce


def _cmd_verify_recovery(args: argparse.Namespace, model) -> int:
    from repro.exceptions import ConfigurationError
    from repro.verification.statistical import run_recovery_check

    try:
        report = run_recovery_check(
            algorithm=args.algorithm,
            n=args.n,
            id_max=args.id_max,
            samples=args.samples,
            seed=args.seed,
            sched_seed=args.sched_seed,
            scheduler=args.scheduler,
            backend=args.backend,
            block_size=args.block_size,
            confidence=args.confidence,
            faults=model,
            watchdog_rounds=args.watchdog,
            processes=args.processes,
        )
    except ConfigurationError as error:
        raise SystemExit(str(error)) from None

    print(f"algorithm            : {report.algorithm}")
    print(f"mode                 : recovery (faulted runs, stable end state)")
    print(f"ring size n          : {report.n}")
    print(f"id max               : {report.id_max}")
    print(f"samples              : {report.samples}")
    print(f"backend / scheduler  : {report.backend} / {report.scheduler}")
    print(f"seeds (ids, sched)   : {report.seed}, {report.sched_seed}")
    print(f"fault model          : {report.faults}")
    if report.fault_events:
        applied = {k: v for k, v in report.fault_events.items() if v}
        print(f"fault events applied : {applied or 'none'}")
    print(
        f"classification       : recovered={report.recovered} "
        f"wrong_stable={report.wrong_stable} stuck={report.stuck}"
    )
    print(
        f"recovery rate        : {report.recovery_rate:.6f} "
        f"({int(report.confidence * 100)}% CP interval "
        f"[{report.rate_low:.6f}, {report.rate_high:.6f}])"
    )
    all_reproduce = _print_recovery_counterexamples(report)
    total = report.recovered + report.wrong_stable + report.stuck
    ok = total == report.samples and all_reproduce
    print(
        "CLASSIFIED (every faulted run; counterexamples replayable)"
        if ok
        else "FAILED"
    )
    return 0 if ok else 1


def _cmd_verify_topology_statistical(args: argparse.Namespace) -> int:
    from repro.exceptions import BridgeWitnessError, ConfigurationError
    from repro.verification.statistical import run_topology_check

    graph = _parse_topology(args.topology)
    print(f"mode                 : statistical topology battery (ear election)")
    print(f"topology             : {args.topology} (n={graph.n}, "
          f"{len(graph.edges)} edges)")
    try:
        report = run_topology_check(
            graph,
            id_max=args.id_max,
            samples=args.samples,
            seed=args.seed,
            sched_seed=args.sched_seed,
            scheduler=args.scheduler,
            backend=args.backend,
            block_size=args.block_size,
            confidence=args.confidence,
        )
    except BridgeWitnessError as refusal:
        print(f"REFUSED              : {refusal}")
        if refusal.bridge is not None:
            print(f"witness              : bridge edge {refusal.bridge}")
        return 1
    except ConfigurationError as error:
        raise SystemExit(str(error)) from None
    print(f"virtual ring         : L={report.walk_length} stride C={report.stride}")
    print(f"id max               : {report.id_max}")
    print(f"samples              : {report.samples}")
    print(f"backend / scheduler  : {report.backend} / {report.scheduler}")
    print(f"seeds (ids, sched)   : {report.seed}, {report.sched_seed}")
    print(f"contract violations  : {report.violations}")
    print(
        f"pass rate            : {report.pass_rate:.6f} "
        f"({int(report.confidence * 100)}% CP interval "
        f"[{report.rate_low:.6f}, {report.rate_high:.6f}])"
    )
    for ce in report.counterexamples:
        print(f"counterexample       : instance {ce.instance}: {ce.message}")
        reproduced = ce.replay()
        print(
            f"  replay reproduces  : "
            f"{'yes' if reproduced is not None else 'NO'}"
        )
    print("PASSED (sampled topology battery)" if report.clean else "FAILED")
    return 0 if report.clean else 1


def _cmd_verify_anonymous(args: argparse.Namespace) -> int:
    """The Lemma 18 w.h.p. predicate over the anonymous pipeline."""
    from repro.exceptions import ConfigurationError
    from repro.verification.statistical import run_anonymous_whp_check

    try:
        report = run_anonymous_whp_check(
            n=args.n,
            c=args.c,
            trials=args.samples,
            seed=args.seed,
            backend=args.backend,
            confidence=args.confidence,
            processes=args.processes if args.processes is not None else 1,
        )
    except ConfigurationError as error:
        raise SystemExit(str(error)) from None
    print(f"algorithm            : anonymous (Algorithm 4 -> Algorithm 3)")
    print(f"mode                 : Lemma 18 w.h.p. predicate")
    print(f"ring size n          : {report.n}")
    print(f"sampler exponent c   : {report.c}")
    print(f"attempts             : {report.trials} (seeds {report.seed}.."
          f"{report.seed + report.trials - 1})")
    print(f"backend              : {report.backend}")
    print(
        f"success rate         : {report.successes}/{report.trials} = "
        f"{report.success_rate:.6f} ({int(report.confidence * 100)}% CP "
        f"interval [{report.rate_low:.6f}, {report.rate_high:.6f}])"
    )
    print(f"lemma 18 target      : 1 - n^-c = {report.target:.6f}")
    print(
        f"one-sided test       : CP upper bound "
        f"{report.rate_high:.6f} "
        f"{'>=' if report.holds else '<'} target (holds: "
        f"{'yes' if report.holds else 'NO'})"
    )
    all_reproduce = True
    for ce in report.counterexamples:
        print(f"counterexample       : {ce.message}")
        print(
            f"  replay             : repro verify --statistical "
            f"--algorithm anonymous --n {ce.n} --c {ce.c} --samples 1 "
            f"--seed {ce.attempt_seed} --backend {ce.backend}"
        )
        reproduced = ce.replay()
        print(
            f"  replay reproduces  : "
            f"{'yes' if reproduced is not None else 'NO'}"
        )
        all_reproduce = all_reproduce and reproduced is not None
    ok = report.holds and all_reproduce
    print("PASSED (Lemma 18 w.h.p. predicate)" if ok else "FAILED")
    return 0 if ok else 1


def _cmd_verify_statistical(args: argparse.Namespace) -> int:
    from repro.accel import maybe_warm_compiled
    from repro.simulator.fleet import FleetFault
    from repro.verification.statistical import run_statistical_check

    if args.topology is not None:
        return _cmd_verify_topology_statistical(args)
    maybe_warm_compiled(args.backend)
    if args.algorithm == "anonymous":
        return _cmd_verify_anonymous(args)
    model = _fault_model_from_args(args)
    if args.recovery:
        return _cmd_verify_recovery(args, model)

    fault = model
    if args.inject_drop is not None:
        if len(args.inject_drop) != 3:
            raise SystemExit("--inject-drop takes ROUND,NODE,INSTANCE")
        round_index, node, instance = args.inject_drop
        drop = FleetFault(
            round_index=round_index, node=node, direction="cw",
            instance=instance,
        )
        if model is None:
            fault = drop
        else:
            from dataclasses import replace

            fault = replace(model, drops=model.drops + (drop,))

    from repro.exceptions import ConfigurationError

    try:
        report = run_statistical_check(
            algorithm=args.algorithm,
            n=args.n,
            id_max=args.id_max,
            samples=args.samples,
            seed=args.seed,
            sched_seed=args.sched_seed,
            scheduler=args.scheduler,
            backend=args.backend,
            block_size=args.block_size,
            confidence=args.confidence,
            fault=fault,
            watchdog_rounds=args.watchdog,
            processes=args.processes,
        )
    except ConfigurationError as error:
        raise SystemExit(str(error)) from None

    print(f"algorithm            : {report.algorithm}")
    print(f"mode                 : statistical (sampled instances)")
    print(f"ring size n          : {report.n}")
    print(f"id max               : {report.id_max}")
    print(f"samples              : {report.samples}")
    print(f"backend / scheduler  : {report.backend} / {report.scheduler}")
    print(f"seeds (ids, sched)   : {report.seed}, {report.sched_seed}")
    if isinstance(fault, FleetFault):
        print(
            f"injected fault       : drop 1 {fault.direction} pulse at "
            f"round {fault.round_index} toward node {fault.node} in "
            f"instance {fault.instance}"
        )
    elif fault is not None:
        print(f"injected fault       : {fault}")
    print(f"invariant violations : {report.violations}")
    print(
        f"pass rate            : {report.pass_rate:.6f} "
        f"({int(report.confidence * 100)}% CP interval "
        f"[{report.rate_low:.6f}, {report.rate_high:.6f}])"
    )
    for ce in report.counterexamples:
        print(f"counterexample       : {ce.message}")
        print(
            f"  replay             : repro verify --statistical "
            f"--algorithm {ce.algorithm} --n {len(ce.ids)} "
            f"--id-max {report.id_max} --samples 1 --seed {ce.seed} "
            f"--sched-seed {ce.sched_seed} --scheduler {ce.scheduler} "
            f"--backend {ce.backend} (instance {ce.instance}: "
            f"ids {list(ce.ids)})"
        )
        reproduced = ce.replay()
        print(
            f"  replay reproduces  : "
            f"{'yes' if reproduced is not None else 'NO'}"
        )
    print("PASSED (sampled schedules)" if report.clean else "FAILED")
    return 0 if report.clean else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    if args.statistical:
        return _cmd_verify_statistical(args)
    if args.algorithm == "anonymous":
        raise SystemExit(
            "verify: --algorithm anonymous is the sampled Lemma 18 "
            "predicate; it requires --statistical"
        )
    if args.ids is None and args.topology is None:
        raise SystemExit(
            "verify: --ids is required unless --statistical or --topology"
        )

    from repro.core.invariants import InvariantViolation, hooks_for
    from repro.core.nonoriented import NonOrientedNode
    from repro.core.terminating import TerminatingNode
    from repro.core.warmup import WarmupNode
    from repro.simulator.faults import FaultPlan, apply_fault_plan
    from repro.simulator.ring import build_nonoriented_ring, build_oriented_ring
    from repro.verification import (
        ExplorationLimitExceeded,
        explore_all_schedules,
        explore_reduced,
    )

    graph = None
    ear_routing = None
    if args.topology is not None:
        from repro.core.kernels.ear import build_routing
        from repro.exceptions import BridgeWitnessError
        from repro.graphs.connectivity import require_two_edge_connected

        graph = _parse_topology(args.topology)
        try:
            require_two_edge_connected(graph)
        except BridgeWitnessError as refusal:
            print(f"topology             : {args.topology} (n={graph.n}, "
                  f"{len(graph.edges)} edges)")
            print(f"REFUSED              : {refusal}")
            if refusal.bridge is not None:
                print(f"witness              : bridge edge {refusal.bridge}")
            return 1
        ear_routing = build_routing(graph)
        if args.ids is None:
            args.ids = list(range(1, graph.n + 1))
        if len(args.ids) != graph.n:
            raise SystemExit(
                f"--topology {args.topology} has {graph.n} vertices but "
                f"--ids lists {len(args.ids)}"
            )

    ids = args.ids
    fault_plan = None
    if args.fault_drop or args.fault_duplicate:
        fault_plan = FaultPlan(
            drop_rate=args.fault_drop,
            duplicate_rate=args.fault_duplicate,
            seed=args.fault_seed,
        )
    elif args.fault_seed:
        # An all-zero plan is a valid no-op value at the library level;
        # requesting one at the CLI is almost certainly a typo, so warn
        # (but proceed fault-free) rather than reject.
        print(
            "warning: fault seed given but all fault rates are zero — "
            "running fault-free (no-op fault plan)"
        )

    def factory():
        if graph is not None:
            from repro.core.ear_election import EarElectionNode
            from repro.core.kernels.ear import virtual_ids

            vids = virtual_ids(ids, ear_routing)
            nodes = []
            for vertex in range(graph.n):
                out_ports, in_route = ear_routing.node_tables(vertex)
                node_vids = tuple(
                    vids[p] for p in ear_routing.occurrences[vertex]
                )
                nodes.append(EarElectionNode(node_vids, out_ports, in_route))
            network = ear_routing.topology.wire(nodes)
        elif args.algorithm == "nonoriented":
            flips = args.flips if args.flips is not None else [False] * len(ids)
            if len(flips) != len(ids):
                raise SystemExit("--flips must match --ids in length")
            network = build_nonoriented_ring(
                [NonOrientedNode(i) for i in ids], flips=flips
            ).network
        else:
            cls = {"warmup": WarmupNode, "terminating": TerminatingNode}[
                args.algorithm
            ]
            network = build_oriented_ring([cls(i) for i in ids]).network
        if fault_plan is not None:
            apply_fault_plan(network, fault_plan)
        return network

    if graph is not None and args.invariants:
        print(
            "note: the positional invariant hooks are ring-lemma forms; "
            "--topology runs check the contract via terminal states only"
        )
    hooks = (
        hooks_for(args.algorithm) if args.invariants and graph is None else ()
    )
    if graph is not None:
        print(f"algorithm            : ear (2-edge-connected election)")
        print(f"topology             : {args.topology} (n={graph.n}, "
              f"{len(graph.edges)} edges; virtual ring "
              f"L={ear_routing.length}, stride C={ear_routing.stride})")
    else:
        print(f"algorithm            : {args.algorithm}")
    print(f"ids                  : {ids}")
    if fault_plan is not None:
        print(
            f"faults               : drop={fault_plan.drop_rate} "
            f"duplicate={fault_plan.duplicate_rate} seed={fault_plan.seed}"
        )
    if hooks:
        print(f"invariant hooks      : {[hook.__name__ for hook in hooks]}")

    reduction = args.reduction
    if reduction == "por":  # deprecated PR 2 spelling
        print("note: --reduction por is deprecated; using 'ample'")
        reduction = "ample"
    if graph is not None and reduction in ("symmetry", "full"):
        # The ring-symmetry layer validates the ring builder convention
        # (it would raise ConfigurationError on these networks): general
        # topologies use the sorted-adjacency convention and need their
        # own automorphism groups.  Downgrade to the strongest sound mode.
        downgraded = "sleep" if reduction == "full" else "ample"
        print(
            f"note: --reduction {reduction} assumes the ring builder "
            f"convention; downgrading to '{downgraded}' off-ring"
        )
        reduction = downgraded
    if fault_plan is not None and reduction in ("symmetry", "full"):
        # Per-channel fault profiles break the ring automorphisms, so the
        # symmetry layer would be unsound; drop to the strongest sound mode.
        downgraded = "sleep" if reduction == "full" else "ample"
        print(
            f"note: --reduction {reduction} is unsound under faults; "
            f"downgrading to '{downgraded}'"
        )
        reduction = downgraded
    reduce_first = reduction != "none"
    include_duals = args.algorithm == "nonoriented" and graph is None
    spill_threshold = (
        args.spill_threshold_mb * 2**20 if args.spill_threshold_mb else None
    )
    try:
        if reduce_first:
            result = explore_reduced(
                factory,
                max_states=args.max_states,
                invariant_hooks=hooks,
                reduction=reduction,
                include_duals=include_duals,
                spill_threshold=spill_threshold,
            )
        else:
            result = explore_all_schedules(
                factory, max_states=args.max_states, invariant_hooks=hooks
            )
    except InvariantViolation as violation:
        print(f"INVARIANT VIOLATION  : {violation}")
        return 1
    except ExplorationLimitExceeded as limit:
        print(f"BUDGET EXCEEDED      : {limit}")
        return 1

    if reduce_first:
        layer_names = {
            "ample": "ample sets + counting states",
            "sleep": "ample + sleep sets",
            "symmetry": "ample + ring-symmetry canonicalization",
            "full": "ample + sleep sets + ring-symmetry canonicalization",
        }
        mode = f"reduced ({layer_names[reduction]})"
    else:
        mode = "unreduced"
    print(f"exploration          : {mode}")
    print(f"states explored      : {result.states_explored}")
    print(f"transitions examined : {result.transitions}")
    if reduce_first:
        print(
            f"branch reduction     : {result.branch_reduction:.2f}x "
            f"(ample at {result.ample_states} states, full expansion at "
            f"{result.full_expansion_states})"
        )
        if reduction in ("sleep", "full"):
            print(f"sleep-set skips      : {result.sleep_skipped}")
        if reduction in ("symmetry", "full"):
            dual_note = " incl. orientation-duals" if result.include_duals else ""
            print(
                f"orbit factor         : {result.orbit_factor}x "
                f"({result.instances_certified} instances certified per "
                f"run{dual_note})"
            )
            print(f"invariant spot checks: {result.spot_checks}")
        spill_note = " (spilled to disk)" if result.spilled else ""
        print(
            f"peak visited bytes   : {result.visited_bytes}{spill_note}"
        )
    print(f"terminal states      : {len(result.terminal_node_fingerprints)}")
    print(f"confluent            : {result.confluent}")
    print(f"quiescence violations: {result.quiescence_violations}")
    print(f"max pulses in flight : {result.max_in_flight}")

    ok = result.confluent and result.quiescence_violations == 0

    if fault_plan is None:
        if graph is not None:
            from repro.core.kernels.ear import pulse_bound

            label, expected = ("L*IDmax*C (virtual Cor 13)",
                               pulse_bound(ids, ear_routing))
        else:
            label, expected = _expected_pulse_bound(args.algorithm, ids)
        certified = bool(result.terminal_total_sent) and all(
            sent == expected for sent in result.terminal_total_sent
        )
        verdict = "CERTIFIED (all schedules)" if certified else "MISMATCH"
        print(f"message bound        : {label} = {expected}  {verdict}")
        ok = ok and certified
    else:
        print("message bound        : n/a (faults change the pulse count)")

    if args.compare_unreduced and reduce_first:
        try:
            reference = explore_all_schedules(factory, max_states=args.max_states)
        except ExplorationLimitExceeded as limit:
            print(f"unreduced reference  : BUDGET EXCEEDED ({limit})")
            print(
                "state reduction      : >= "
                f"{result.state_reduction_vs(args.max_states):.1f}x "
                "(reference search did not finish; orbit-adjusted)"
            )
        else:
            # With symmetry, terminal representatives are a subset of the
            # unreduced terminals (one per orbit — equal when IDs are
            # unique); without it the sets must match exactly.
            reduced_terminals = set(result.terminal_node_fingerprints)
            reference_terminals = set(reference.terminal_node_fingerprints)
            if reduction in ("symmetry", "full"):
                agree = reduced_terminals <= reference_terminals
            else:
                agree = reduced_terminals == reference_terminals
            agree = agree and reference.confluent == result.confluent
            print(f"unreduced reference  : {reference.states_explored} states")
            print(
                "state reduction      : "
                f"{result.state_reduction_vs(reference.states_explored):.1f}x"
                " (orbit-adjusted)"
            )
            print(f"terminal agreement   : {agree}")
            ok = ok and agree

    print("VERIFIED (all schedules)" if ok else "FAILED")
    return 0 if ok else 1


def _cmd_solitude(args: argparse.Namespace) -> int:
    from repro.core.lower_bound import (
        expected_algorithm2_pattern,
        find_pattern_collision,
        solitude_patterns,
    )
    from repro.core.terminating import TerminatingNode

    patterns = solitude_patterns(
        lambda node_id: TerminatingNode(node_id), range(1, args.max_id + 1)
    )
    print("ID  solitude pattern (0=CW pulse, 1=CCW pulse)")
    for node_id in sorted(patterns):
        marker = "" if patterns[node_id] == expected_algorithm2_pattern(node_id) else "  (!)"
        print(f"{node_id:>2}  {patterns[node_id]}{marker}")
    collision = find_pattern_collision(patterns)
    print(f"collisions: {collision if collision else 'none (Lemma 22 holds)'}")
    return 0 if collision is None else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    import random

    from repro.baselines import ALL_BASELINES, run_baseline
    from repro.core.lower_bound import lower_bound_pulses
    from repro.core.terminating import run_terminating

    rng = random.Random(args.seed)
    spread = max(args.spread, args.n)
    ids = rng.sample(range(1, spread + 1), args.n)
    print(f"ring: n={args.n}, IDmax={max(ids)} (spread {spread}, seed {args.seed})")
    print(f"{'algorithm':>22}  messages")
    oblivious = run_terminating(ids).total_pulses
    print(f"{'content-oblivious':>22}  {oblivious}")
    print(f"{'(theorem 4 floor)':>22}  {lower_bound_pulses(args.n, max(ids))}")
    for name, cls in sorted(ALL_BASELINES.items()):
        print(f"{name:>22}  {run_baseline(cls, ids).total_messages}")
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.core.terminating import TerminatingNode
    from repro.simulator.engine import Engine
    from repro.simulator.ring import build_oriented_ring
    from repro.simulator.timeline import render_space_time, summarize_counters

    nodes = [TerminatingNode(node_id) for node_id in args.ids]
    topology = build_oriented_ring(nodes)
    result = Engine(topology.network, record_events=True).run()
    labels = [f"id{node_id}" for node_id in args.ids]
    print(render_space_time(result, len(args.ids), labels=labels, max_rows=args.rows))
    print()
    print(summarize_counters(result, len(args.ids)))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.average_case import measure_oblivious_over_placements
    from repro.analysis.whp import measure_anonymous_success
    from repro.exceptions import ConfigurationError

    if args.fleet:
        from repro.accel import maybe_warm_compiled

        maybe_warm_compiled(args.backend)
    engine = "fleet" if args.fleet else ("batched" if args.workload == "placements" else "scalar")
    print(
        f"sweep: workload={args.workload} n={args.n} trials={args.trials} "
        f"seed={args.seed} engine={engine} backend={args.backend}"
    )
    if args.workload == "placements":
        try:
            stats = measure_oblivious_over_placements(
                args.n,
                args.trials,
                seed=args.seed,
                processes=args.processes,
                batched=not args.fleet,
                fleet=args.fleet,
                backend=args.backend,
                farm_root=args.farm,
            )
        except ConfigurationError as error:
            raise SystemExit(str(error)) from None
        print(
            f"algorithm 2 pulses over {stats.trials} random placements of "
            f"1..{args.n}: mean={stats.mean:.1f} min={stats.minimum} "
            f"max={stats.maximum} spread={stats.spread}"
        )
        expected = args.n * (2 * args.n + 1)
        print(f"theorem 1 bound n(2*IDmax+1) = {expected}")
        if stats.spread != 0 or stats.minimum != expected:
            print("FAIL: placement variance detected (theorem 1 violated)")
            return 1
        print("OK: zero placement variance, every trial met the bound exactly")
        return 0
    try:
        estimate = measure_anonymous_success(
            args.n,
            args.trials,
            c=args.c,
            seed=args.seed,
            processes=args.processes,
            fleet=args.fleet,
            backend=args.backend,
            farm_root=args.farm,
        )
    except ConfigurationError as error:
        raise SystemExit(str(error)) from None
    print(
        f"theorem 3 success rate at n={args.n}, c={args.c}: "
        f"{estimate.successes}/{estimate.trials} = {estimate.rate:.4f} "
        f"(wilson 99% [{estimate.low:.4f}, {estimate.high:.4f}])"
    )
    floor = args.min_rate
    if args.lemma18:
        from repro.analysis.whp import whp_target

        target = whp_target(args.n, args.c)
        print(f"lemma 18 target      : 1 - n^-c = {target:.6f}")
        floor = target if floor is None else max(floor, target)
    if floor is not None and not estimate.consistent_with_at_least(floor):
        print(f"FAIL: interval excludes the required floor {floor}")
        return 1
    print("OK")
    return 0


def _parse_float_list(text: str) -> List[float]:
    try:
        return [float(part) for part in text.split(",") if part != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated floats, got {text!r}"
        )


def _cmd_faults_sweep(args: argparse.Namespace) -> int:
    from repro.accel import maybe_warm_compiled
    from repro.analysis.degradation import measure_degradation
    from repro.exceptions import ConfigurationError

    maybe_warm_compiled(args.backend)
    try:
        curve = measure_degradation(
            args.rates,
            kind=args.kind,
            algorithm=args.algorithm,
            n=args.n,
            id_max=args.id_max,
            samples=args.samples,
            seed=args.seed,
            sched_seed=args.sched_seed,
            scheduler=args.scheduler,
            backend=args.backend,
            block_size=args.block_size,
            confidence=args.confidence,
            fault_seed=args.fault_seed,
            processes=args.processes,
            farm_root=args.farm,
        )
    except ConfigurationError as error:
        raise SystemExit(str(error)) from None

    print(
        f"degradation sweep: algorithm={curve.algorithm} kind={curve.kind} "
        f"n={curve.n} id_max={curve.id_max} samples/point={args.samples} "
        f"backend={curve.backend}"
    )
    print(
        f"{'rate':>8}  {'success':>8}  "
        f"{int(curve.confidence * 100)}% CP interval      r/w/s"
    )
    for point in curve.points:
        print(
            f"{point.rate:>8.4f}  {point.success_rate:>8.4f}  "
            f"[{point.low:.4f}, {point.high:.4f}]  "
            f"{point.recovered}/{point.wrong_stable}/{point.stuck}"
        )
    ok = True
    if not curve.clean_at_zero:
        print("FAIL: fault-free point (rate 0) did not succeed with rate 1.0")
        ok = False
    if not curve.monotone_within_bands():
        print(
            "FAIL: success rate is not monotonically degrading within the "
            "confidence bands"
        )
        ok = False
    if args.json is not None:
        import json

        with open(args.json, "w") as handle:
            json.dump(curve.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"curve written        : {args.json}")
    print("OK (graceful degradation)" if ok else "FAILED")
    return 0 if ok else 1


def _parse_restart_list(text: str) -> List[Optional[int]]:
    """Comma list of restart delays; ``none`` means a permanent crash."""
    out: List[Optional[int]] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if part.lower() == "none":
            out.append(None)
        else:
            try:
                out.append(int(part))
            except ValueError:
                raise argparse.ArgumentTypeError(
                    f"expected comma-separated ints or 'none', got {text!r}"
                ) from None
    return out


def _cmd_faults_search(args: argparse.Namespace) -> int:
    from repro.accel import maybe_warm_compiled
    from repro.adversary import (
        EvalSettings,
        PlanSpace,
        artifact_dict,
        random_baseline,
        save_artifact,
        search_worst_plan,
    )
    from repro.exceptions import ConfigurationError
    from repro.farm.keys import canonical_json

    maybe_warm_compiled(args.backend)
    try:
        space = PlanSpace(
            n=args.n,
            budget=args.budget,
            rounds=tuple(args.rounds),
            thresholds=tuple(args.thresholds),
            offsets=tuple(args.offsets),
            restarts=tuple(args.restarts),
            drop_rates=tuple(args.drop_rates),
            max_drops=args.max_drops,
            max_burst=args.max_burst,
            fault_seed=args.fault_seed,
        )
        settings = EvalSettings(
            algorithm=args.algorithm,
            n=args.n,
            id_max=args.id_max,
            samples=args.samples,
            seed=args.seed,
            sched_seed=args.sched_seed,
            scheduler=args.scheduler,
            backend=args.backend,
            block_size=args.block_size,
            confidence=args.confidence,
            watchdog_rounds=args.watchdog,
        )
        result = search_worst_plan(
            space,
            settings,
            strategy=args.strategy,
            iterations=args.iterations,
            population=args.population,
            elite_frac=args.elite_frac,
            epsilon=args.epsilon,
            search_seed=args.search_seed,
            farm_root=args.farm,
        )
    except ConfigurationError as error:
        raise SystemExit(str(error)) from None
    best = result.best
    print(
        f"adversary search     : strategy={result.strategy} "
        f"budget={result.budget} iterations={result.iterations} "
        f"evaluations={result.evaluations} seed={result.search_seed}"
    )
    print(
        f"evaluation point     : algorithm={settings.algorithm} "
        f"n={settings.n} id_max={settings.id_max} "
        f"samples={settings.samples}"
    )
    if args.budget == 0:
        print(
            "budget 0             : only the trivial (no-op) plan is "
            "admissible — nothing to search"
        )
    print(f"worst plan           : {canonical_json(best.plan.to_canonical())}")
    print(f"  cost               : {best.plan.cost} of budget {args.budget}")
    print(
        f"  recovery           : {best.recovered}/{best.samples} = "
        f"{best.success_rate:.4f} ({int(settings.confidence * 100)}% CP "
        f"[{best.rate_low:.4f}, {best.rate_high:.4f}])"
    )
    baseline = None
    baseline_count = 0
    if args.baseline is not None or args.require_beats_baseline:
        spec = args.baseline if args.baseline is not None else "equal"
        if spec == "equal":
            baseline_count = result.evaluations
        else:
            try:
                baseline_count = int(spec)
            except ValueError:
                raise SystemExit(
                    f"--baseline takes an int or 'equal', got {spec!r}"
                ) from None
        try:
            baseline = random_baseline(
                space,
                settings,
                count=baseline_count,
                search_seed=args.baseline_seed,
                farm_root=args.farm,
            )
        except ConfigurationError as error:
            raise SystemExit(str(error)) from None
        print(
            f"random baseline      : best of {baseline_count} plans "
            f"(seed {args.baseline_seed}): {baseline.recovered}/"
            f"{baseline.samples} CP high {baseline.rate_high:.4f}"
        )
    payload = artifact_dict(
        result, settings, baseline=baseline, baseline_count=baseline_count
    )
    if args.out is not None:
        path = save_artifact(args.out, payload)
        print(f"artifact written     : {path}")
    if args.require_beats_baseline:
        assert baseline is not None
        if not best.rate_high < baseline.rate_high:
            print(
                f"FAIL: search CP upper bound {best.rate_high:.4f} does not "
                f"strictly beat the equal-budget random baseline "
                f"{baseline.rate_high:.4f}"
            )
            return 1
        print(
            f"search beats baseline: {best.rate_high:.4f} < "
            f"{baseline.rate_high:.4f} (strict, CP upper bounds)"
        )
    print("OK")
    return 0


def _cmd_faults_replay(args: argparse.Namespace) -> int:
    from repro.accel import maybe_warm_compiled
    from repro.adversary import load_artifact, replay_artifact
    from repro.exceptions import ConfigurationError
    from repro.farm.keys import canonical_json

    maybe_warm_compiled(args.backend)
    try:
        payload = load_artifact(args.artifact)
        outcome = replay_artifact(
            payload, backend=args.backend, farm_root=args.farm
        )
    except ConfigurationError as error:
        raise SystemExit(str(error)) from None
    recorded = payload["worst_plan"]
    print(f"artifact             : {args.artifact}")
    print(f"plan                 : {canonical_json(recorded['plan'])}")
    print(
        f"recorded             : {recorded['recovered']}/"
        f"{recorded['samples']} recovered "
        f"(wrong_stable={recorded['wrong_stable']}, "
        f"stuck={recorded['stuck']})"
    )
    ev = outcome.evaluation
    print(
        f"replayed             : {ev.recovered}/{ev.samples} recovered "
        f"(wrong_stable={ev.wrong_stable}, stuck={ev.stuck})"
    )
    if not outcome.matches:
        drift = {
            key: (outcome.expected.get(key), outcome.observed.get(key))
            for key in sorted(set(outcome.expected) | set(outcome.observed))
            if outcome.expected.get(key) != outcome.observed.get(key)
        }
        print(f"FAIL: replay drifted on {drift}")
        return 1
    print("OK: replay bit-identical (classification and fault-event counts)")
    return 0


def _load_plan_spec(path: Optional[str]):
    """A canonical plan dict from a search artifact or a raw plan JSON."""
    import json

    if path is None:
        raise SystemExit(
            "farm submit --workload adversary needs --plan PATH "
            "(a `repro faults search` artifact, or a bare canonical "
            "plan JSON file)"
        )
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise SystemExit(f"no plan file at {path}") from None
    except json.JSONDecodeError as error:
        raise SystemExit(f"plan file {path} is not valid JSON: {error}") from None
    if isinstance(payload, dict) and "worst_plan" in payload:
        return payload["worst_plan"]["plan"]
    return payload


def _farm_campaign_from_args(args: argparse.Namespace):
    """Build the Campaign an `repro farm submit` invocation describes."""
    from repro.farm.campaign import (
        Campaign,
        degradation_params,
        placements_params,
        recovery_params,
        whp_params,
    )
    from repro.faults.model import FaultModel

    if args.workload == "recovery":
        params = recovery_params(
            algorithm=args.algorithm,
            n=args.n,
            id_max=args.id_max,
            seed=args.seed,
            sched_seed=args.sched_seed,
            scheduler=args.scheduler,
            faults=FaultModel(
                drop_rate=args.drop_rate,
                duplicate_rate=args.duplicate_rate,
                spurious_rate=args.spurious_rate,
                seed=args.fault_seed,
            ),
        )
    elif args.workload == "degradation":
        params = degradation_params(
            kind=args.kind,
            rates=tuple(args.rates),
            algorithm=args.algorithm,
            n=args.n,
            id_max=args.id_max,
            seed=args.seed,
            sched_seed=args.sched_seed,
            scheduler=args.scheduler,
            fault_seed=args.fault_seed,
        )
    elif args.workload == "adversary":
        from repro.farm.campaign import adversary_params

        params = adversary_params(
            plan=_load_plan_spec(args.plan),
            algorithm=args.algorithm,
            n=args.n,
            id_max=args.id_max,
            seed=args.seed,
            sched_seed=args.sched_seed,
            scheduler=args.scheduler,
        )
    elif args.workload == "whp":
        params = whp_params(n=args.n, c=args.c, seed=args.seed)
    elif args.workload == "ear":
        from repro.farm.campaign import ear_params

        params = ear_params(
            _parse_topology(args.topology or "theta"),
            id_max=args.id_max,
            seed=args.seed,
            sched_seed=args.sched_seed,
            scheduler=args.scheduler,
        )
    else:
        params = placements_params(n=args.n, seed=args.seed)
    return Campaign(
        args.workload,
        total=args.total,
        params=params,
        shard_size=args.shard_size,
    )


def _cmd_farm_submit(args: argparse.Namespace) -> int:
    from repro.accel import maybe_warm_compiled
    from repro.exceptions import ConfigurationError
    from repro.farm.service import Farm

    maybe_warm_compiled(args.backend)
    try:
        campaign = _farm_campaign_from_args(args)
        outcome = Farm(args.root).submit(
            campaign,
            backend=args.backend,
            processes=args.processes,
            block_size=args.block_size,
        )
    except ConfigurationError as error:
        raise SystemExit(str(error)) from None
    print(
        f"farm submit: campaign={outcome.cid} workload={args.workload} "
        f"total={args.total} shards={outcome.jobs}"
    )
    print(
        f"cache hits={outcome.hits} computed={outcome.computed} "
        f"failed={len(outcome.failed)} hit_rate={outcome.hit_rate:.4f}"
    )
    for index, _key, message in outcome.failed[:5]:
        print(f"  shard {index} failed: {message}")
    if outcome.failed:
        print("FAIL: some shards failed; submit again to retry them")
        return 1
    if args.min_hit_rate is not None and outcome.hit_rate < args.min_hit_rate:
        print(
            f"FAIL: cache hit rate {outcome.hit_rate:.4f} below the "
            f"required {args.min_hit_rate}"
        )
        return 1
    print("OK: campaign complete" if outcome.complete else "incomplete")
    return 0


def _cmd_farm_status(args: argparse.Namespace) -> int:
    import json

    from repro.exceptions import ConfigurationError
    from repro.farm.service import Farm

    try:
        report = Farm(args.root).status(args.campaign)
    except ConfigurationError as error:
        raise SystemExit(str(error)) from None
    print(json.dumps(report, indent=2, sort_keys=True))
    incomplete = [
        cid
        for cid, summary in report["campaigns"].items()
        if not summary["complete"]
    ]
    return 0 if not incomplete else 1


def _cmd_farm_collect(args: argparse.Namespace) -> int:
    from repro.exceptions import ConfigurationError
    from repro.farm.service import Farm

    try:
        text = Farm(args.root).collect_text(
            args.campaign,
            confidence=args.confidence,
            z=args.z,
            interval=args.interval,
        )
    except ConfigurationError as error:
        raise SystemExit(str(error)) from None
    if args.out is not None:
        with open(args.out, "w") as handle:
            handle.write(text)
    print(text, end="")
    return 0


def _cmd_farm_gc(args: argparse.Namespace) -> int:
    from repro.farm.service import Farm

    counters = Farm(args.root).gc()
    print(
        f"farm gc: orphaned_entries={counters['orphaned_entries']} "
        f"demoted_running={counters['demoted_running']} "
        f"tmp_files={counters['tmp_files']}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Content-Oblivious Leader Election on Rings — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    elect = sub.add_parser("elect", help="run a leader election")
    elect.add_argument("--setting", choices=["oriented", "nonoriented", "anonymous"],
                       default="oriented")
    elect.add_argument("--ids", type=_parse_int_list, default=None,
                       help="clockwise unique IDs, e.g. 3,7,5,2")
    elect.add_argument("--flips", type=_parse_bool_list, default=None,
                       help="port flips for nonoriented, e.g. 1,0,1,0")
    elect.add_argument("--n", type=int, default=8, help="ring size (anonymous)")
    elect.add_argument("--c", type=float, default=2.0, help="confidence (anonymous)")
    elect.add_argument("--seed", type=int, default=None)
    elect.add_argument("--scheduler", default=None,
                       help="global_fifo|lifo|random|round_robin|lag_ccw|lag_cw|longest_run")
    elect.add_argument("--topology", default=None, metavar="SPEC",
                       help="run the 2-edge-connected ear election on SPEC "
                            "instead of a ring: theta[:A,B,C], "
                            "nested[:DEPTH[,CYCLE]], random:SEED[,TARGET], "
                            "ring:N, bridge, or edges:A-B,C-D,...; --ids "
                            "are per-vertex (default 1..n); graphs with a "
                            "bridge are refused with the bridge as witness")
    elect.set_defaults(func=_cmd_elect)

    compute = sub.add_parser("compute", help="content-oblivious computation (Cor 5)")
    compute.add_argument("--ids", type=_parse_int_list, default=None,
                         help="elect first (omit to use --leader directly)")
    compute.add_argument("--inputs", type=_parse_int_list, required=True)
    compute.add_argument("--op", default="sum",
                         help="sum|max|min|size|gather")
    compute.add_argument("--leader", type=int, default=0,
                         help="pre-set root when --ids is omitted")
    compute.set_defaults(func=_cmd_compute)

    simulate = sub.add_parser(
        "simulate",
        help="run a content-carrying algorithm over pulses (Cor 5, universal)",
    )
    simulate.add_argument("--ids", type=_parse_int_list, required=True,
                          help="clockwise unique IDs (>= 3 nodes)")
    simulate.add_argument("--algorithm",
                          choices=["chang_roberts", "broadcast", "sum"],
                          default="chang_roberts")
    simulate.add_argument("--value", type=int, default=42,
                          help="broadcast payload")
    simulate.add_argument("--inputs", type=_parse_int_list, default=None,
                          help="per-node inputs for sum")
    simulate.set_defaults(func=_cmd_simulate)

    verify = sub.add_parser(
        "verify",
        help="model-check ALL schedules (small rings) or SAMPLED "
             "schedules at scale (--statistical)",
    )
    verify.add_argument("--ids", type=_parse_int_list, default=None,
                        help="clockwise unique IDs (required unless "
                             "--statistical)")
    verify.add_argument("--algorithm",
                        choices=["warmup", "terminating", "nonoriented",
                                 "anonymous"],
                        default="terminating",
                        help="anonymous (with --statistical) checks the "
                             "Lemma 18 w.h.p. predicate over seeded "
                             "Algorithm 4 -> Algorithm 3 attempts")
    verify.add_argument("--c", type=float, default=2.0,
                        help="sampler exponent for --algorithm anonymous "
                             "(the 1 - n^-c floor)")
    verify.add_argument("--flips", type=_parse_bool_list, default=None,
                        help="port flips for nonoriented, e.g. 1,0,1")
    verify.add_argument("--reduction",
                        choices=["full", "symmetry", "sleep", "ample", "none",
                                 "por"],
                        default="full",
                        help="reduction stack: full = ample + sleep sets + "
                             "ring-symmetry canonicalization (default); "
                             "symmetry = ample + symmetry; sleep = ample + "
                             "sleep sets; ample = persistent sets only; "
                             "none: branch on every channel at every state "
                             "(por is a deprecated alias of ample)")
    verify.add_argument("--topology", default=None, metavar="SPEC",
                        help="verify the ear election on a 2-edge-connected "
                             "graph (same SPEC grammar as elect --topology): "
                             "exhaustive over all schedules by default, or "
                             "the sampled contract battery with "
                             "--statistical; bridge graphs are refused with "
                             "the bridge edge as witness")
    verify.add_argument("--spill-threshold-mb", type=int, default=0,
                        help="spill the visited set to disk above this many "
                             "MiB (0 = keep in memory)")
    verify.add_argument("--compare-unreduced", action="store_true",
                        help="also run the unreduced reference search and "
                             "report the state-reduction factor + agreement")
    verify.add_argument("--invariants", action="store_true",
                        help="evaluate the executable lemmas at every "
                             "explored state")
    verify.add_argument("--fault-drop", type=float, default=0.0,
                        help="per-pulse drop probability (explore under faults)")
    verify.add_argument("--fault-duplicate", type=float, default=0.0,
                        help="per-pulse duplication probability")
    verify.add_argument("--fault-seed", type=int, default=0)
    verify.add_argument("--max-states", type=int, default=2_000_000)
    verify.add_argument("--statistical", action="store_true",
                        help="sample random instances through the fleet "
                             "engine and check the invariant battery per "
                             "round instead of enumerating schedules")
    verify.add_argument("--samples", type=int, default=1000,
                        help="sampled instances (--statistical)")
    verify.add_argument("--n", type=int, default=8,
                        help="ring size of each sampled instance")
    verify.add_argument("--id-max", type=int, default=1000,
                        help="IDs drawn uniformly from [1, id-max]")
    verify.add_argument("--scheduler", choices=["lockstep", "seeded"],
                        default="lockstep",
                        help="fleet delivery schedule (--statistical)")
    verify.add_argument("--backend", choices=list(BACKEND_CHOICES),
                        default="auto")
    verify.add_argument("--block-size", type=int, default=8192,
                        help="instances per fleet run (--statistical)")
    verify.add_argument("--seed", type=int, default=0,
                        help="ID-sampling seed (--statistical)")
    verify.add_argument("--sched-seed", type=int, default=0,
                        help="seeded-scheduler seed (--statistical)")
    verify.add_argument("--confidence", type=float, default=0.99,
                        help="Clopper-Pearson coverage for the pass rate")
    verify.add_argument("--inject-drop", type=_parse_int_list, default=None,
                        metavar="ROUND,NODE,INSTANCE",
                        help="self-test: delete one in-flight CW pulse at "
                             "ROUND toward NODE in sampled INSTANCE; the "
                             "battery must flag it")
    verify.add_argument("--inject-drop-rate", type=float, default=0.0,
                        help="per-pulse drop probability (--statistical)")
    verify.add_argument("--inject-duplicate-rate", type=float, default=0.0,
                        help="per-pulse duplication probability")
    verify.add_argument("--inject-spurious-rate", type=float, default=0.0,
                        help="per-channel-per-round spurious pulse probability")
    verify.add_argument("--inject-burst", type=_parse_int_list, default=None,
                        metavar="START,LENGTH",
                        help="confine the random fault rates to rounds "
                             "[START, START+LENGTH)")
    verify.add_argument("--inject-crash", action="append", default=None,
                        metavar="NODE,ROUND[,RESTART_AFTER]",
                        help="crash NODE at ROUND (repeatable); with "
                             "RESTART_AFTER, restart it fresh that many "
                             "rounds later")
    verify.add_argument("--inject-corrupt", action="append", default=None,
                        metavar="NODE,ROUND,FIELD,VALUE",
                        help="set a schema-validated kernel state FIELD of "
                             "NODE to VALUE at ROUND (repeatable)")
    verify.add_argument("--inject-seed", type=int, default=0,
                        help="seed of the counter-based fault streams")
    verify.add_argument("--recovery", action="store_true",
                        help="classify every faulted sampled run by its "
                             "stable end state (recovered / wrong_stable / "
                             "stuck) instead of pass/fail invariant checking")
    verify.add_argument("--watchdog", type=int, default=None,
                        help="stuck-run watchdog rounds (default: automatic "
                             "when faults are injected)")
    verify.add_argument(
        "--processes",
        type=lambda text: text if text == "auto" else int(text),
        default=None,
        help="worker processes for --statistical (int or 'auto')",
    )
    verify.set_defaults(func=_cmd_verify)

    solitude = sub.add_parser("solitude", help="solitude patterns (Definition 21)")
    solitude.add_argument("--max-id", type=int, default=16)
    solitude.set_defaults(func=_cmd_solitude)

    compare = sub.add_parser("compare", help="message counts vs classic baselines")
    compare.add_argument("--n", type=int, default=16)
    compare.add_argument("--spread", type=int, default=256)
    compare.add_argument("--seed", type=int, default=0)
    compare.set_defaults(func=_cmd_compare)

    timeline = sub.add_parser("timeline", help="ASCII space-time diagram of a run")
    timeline.add_argument("--ids", type=_parse_int_list, required=True)
    timeline.add_argument("--rows", type=int, default=60)
    timeline.set_defaults(func=_cmd_timeline)

    sweep = sub.add_parser(
        "sweep", help="Monte Carlo sweeps (vectorized fleet engine)"
    )
    sweep.add_argument(
        "--workload",
        choices=("placements", "whp"),
        default="placements",
        help="placements: Theorem 1 variance sweep; whp: Theorem 3 success rate",
    )
    sweep.add_argument("--n", type=int, default=16)
    sweep.add_argument("--trials", type=int, default=1000)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--c", type=float, default=2.0, help="sampler exponent (whp)")
    sweep.add_argument(
        "--processes",
        type=lambda text: text if text == "auto" else int(text),
        default=None,
        help="worker processes (int or 'auto')",
    )
    sweep.add_argument(
        "--fleet",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="advance all trials in lockstep via the vectorized fleet engine",
    )
    sweep.add_argument(
        "--backend",
        choices=list(BACKEND_CHOICES),
        default="auto",
        help="fleet backend (auto prefers compiled, then numpy)",
    )
    sweep.add_argument(
        "--min-rate",
        type=float,
        default=None,
        help="whp only: fail unless the Wilson interval admits this rate",
    )
    sweep.add_argument(
        "--lemma18",
        action="store_true",
        help="whp only: gate on Lemma 18's 1 - n^-c floor (the --min-rate "
        "is derived from --n and --c instead of being hand-picked)",
    )
    sweep.add_argument(
        "--farm",
        default=None,
        metavar="ROOT",
        help="route through the sweep farm rooted at ROOT (cached shards "
        "are reused; new shards are cached for later campaigns)",
    )
    sweep.set_defaults(func=_cmd_sweep)

    faults = sub.add_parser(
        "faults",
        help="fault-model tooling (graceful-degradation sweeps)",
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)
    fsweep = faults_sub.add_parser(
        "sweep",
        help="success-probability-vs-fault-rate degradation curve",
    )
    fsweep.add_argument("--kind",
                        choices=("drop", "duplicate", "spurious", "crash"),
                        default="drop",
                        help="which fault rate to sweep (crash: per-node "
                             "fail-stop probability)")
    fsweep.add_argument("--rates", type=_parse_float_list,
                        default=[0.0, 0.005, 0.01, 0.02, 0.05],
                        help="non-decreasing fault-rate grid, e.g. "
                             "0,0.01,0.05")
    fsweep.add_argument("--algorithm",
                        choices=["terminating", "nonoriented"],
                        default="nonoriented")
    fsweep.add_argument("--n", type=int, default=6)
    fsweep.add_argument("--id-max", type=int, default=64)
    fsweep.add_argument("--samples", type=int, default=200,
                        help="sampled instances per grid point")
    fsweep.add_argument("--seed", type=int, default=0,
                        help="ID/flip sampling seed")
    fsweep.add_argument("--sched-seed", type=int, default=0)
    fsweep.add_argument("--fault-seed", type=int, default=0,
                        help="seed of the counter-based fault streams")
    fsweep.add_argument("--scheduler", choices=["lockstep", "seeded"],
                        default="lockstep")
    fsweep.add_argument("--backend", choices=list(BACKEND_CHOICES),
                        default="auto")
    fsweep.add_argument("--block-size", type=int, default=256)
    fsweep.add_argument("--confidence", type=float, default=0.99)
    fsweep.add_argument("--json", default=None, metavar="PATH",
                        help="also write the curve as JSON to PATH")
    fsweep.add_argument(
        "--processes",
        type=lambda text: text if text == "auto" else int(text),
        default=None,
        help="worker processes (int or 'auto')",
    )
    fsweep.add_argument(
        "--farm",
        default=None,
        metavar="ROOT",
        help="route through the sweep farm rooted at ROOT (cached shards "
        "are reused; new shards are cached for later campaigns)",
    )
    fsweep.set_defaults(func=_cmd_faults_sweep)

    fsearch = faults_sub.add_parser(
        "search",
        help="adversarial search: the budgeted correlated fault plan "
             "that minimizes the recovery rate (CP upper bound)",
    )
    fsearch.add_argument("--budget", type=int, default=3,
                         help="plan budget: 2*crash + drops + burst rounds "
                              "(0 exits cleanly with the trivial plan)")
    fsearch.add_argument("--strategy",
                         choices=("cross-entropy", "epsilon-greedy"),
                         default="cross-entropy")
    fsearch.add_argument("--iterations", type=int, default=8,
                         help="optimizer iterations (cross-entropy "
                              "generations or bandit steps)")
    fsearch.add_argument("--population", type=int, default=12,
                         help="cross-entropy: candidates per generation")
    fsearch.add_argument("--elite-frac", type=float, default=0.25,
                         help="cross-entropy: elite fraction refit per "
                              "generation")
    fsearch.add_argument("--epsilon", type=float, default=0.3,
                         help="epsilon-greedy: exploration probability")
    fsearch.add_argument("--search-seed", type=int, default=0,
                         help="seed of the candidate stream (same seed "
                              "walks the same candidates)")
    fsearch.add_argument("--algorithm",
                         choices=["terminating", "nonoriented"],
                         default="nonoriented")
    fsearch.add_argument("--n", type=int, default=6)
    fsearch.add_argument("--id-max", type=int, default=64)
    fsearch.add_argument("--samples", type=int, default=64,
                         help="sampled instances per candidate evaluation")
    fsearch.add_argument("--seed", type=int, default=0,
                         help="ID/flip sampling seed")
    fsearch.add_argument("--sched-seed", type=int, default=0)
    fsearch.add_argument("--fault-seed", type=int, default=0,
                         help="seed of the counter-based fault streams")
    fsearch.add_argument("--scheduler", choices=["lockstep", "seeded"],
                         default="lockstep")
    fsearch.add_argument("--backend", choices=list(BACKEND_CHOICES),
                         default="auto")
    fsearch.add_argument("--block-size", type=int, default=256)
    fsearch.add_argument("--confidence", type=float, default=0.99)
    fsearch.add_argument("--watchdog", type=int, default=None,
                         help="stuck-run watchdog rounds (default: "
                              "automatic)")
    fsearch.add_argument("--rounds", type=_parse_int_list,
                         default=[1, 2, 3, 4, 6, 8, 12, 16],
                         help="absolute trigger-round choices")
    fsearch.add_argument("--thresholds", type=_parse_int_list,
                         default=[1, 2, 3],
                         help="rho/sigma threshold-trigger choices")
    fsearch.add_argument("--offsets", type=_parse_int_list,
                         default=[0, 1, 2, 3],
                         help="drop-offset choices (rounds after the fire "
                              "round)")
    fsearch.add_argument("--restarts", type=_parse_restart_list,
                         default=[None, 1, 2, 4],
                         help="crash restart-delay choices; 'none' = "
                              "permanent crash (e.g. none,1,2)")
    fsearch.add_argument("--drop-rates", type=_parse_float_list,
                         default=[0.5, 1.0],
                         help="burst-window drop-rate choices")
    fsearch.add_argument("--max-drops", type=int, default=4,
                         help="most deterministic drops one plan may carry")
    fsearch.add_argument("--max-burst", type=int, default=6,
                         help="longest burst window one plan may carry")
    fsearch.add_argument("--baseline", default=None, metavar="N|equal",
                         help="also evaluate the best of N uniform random "
                              "plans ('equal': N = the search's evaluation "
                              "count)")
    fsearch.add_argument("--baseline-seed", type=int, default=101,
                         help="seed of the baseline's candidate stream")
    fsearch.add_argument("--require-beats-baseline", action="store_true",
                         help="exit 1 unless the found plan's CP upper "
                              "bound is strictly below the baseline's "
                              "(implies --baseline equal when no "
                              "--baseline is given)")
    fsearch.add_argument("--out", default=None, metavar="PATH",
                         help="write the seed-replayable plan artifact "
                              "(canonical JSON) to PATH")
    fsearch.add_argument(
        "--farm",
        default=None,
        metavar="ROOT",
        help="route candidate evaluations through the sweep farm rooted "
        "at ROOT (revisited plans and overlapping recovery campaigns "
        "hit the cache)",
    )
    fsearch.set_defaults(func=_cmd_faults_search)

    freplay = faults_sub.add_parser(
        "replay",
        help="re-run a `faults search` artifact and demand bit-identical "
             "classification counts",
    )
    freplay.add_argument("artifact", help="path to the plan artifact JSON")
    freplay.add_argument("--backend", choices=list(BACKEND_CHOICES),
                         default="auto")
    freplay.add_argument(
        "--farm",
        default=None,
        metavar="ROOT",
        help="evaluate through the sweep farm rooted at ROOT",
    )
    freplay.set_defaults(func=_cmd_faults_replay)

    farm = sub.add_parser(
        "farm",
        help="persistent sweep farm: resumable campaigns with a "
        "content-addressed result cache",
    )
    farm_sub = farm.add_subparsers(dest="farm_command", required=True)

    fsubmit = farm_sub.add_parser(
        "submit",
        help="run (or resume) a campaign; kill and re-run freely — "
        "completed shards are never recomputed",
    )
    fsubmit.add_argument("--root", required=True, help="farm root directory")
    fsubmit.add_argument(
        "--workload",
        choices=("recovery", "degradation", "whp", "placements", "ear",
                 "adversary"),
        default="recovery",
    )
    fsubmit.add_argument(
        "--plan", default=None, metavar="PATH",
        help="adversary workload: a `repro faults search` artifact (its "
             "worst plan is evaluated) or a bare canonical plan JSON file",
    )
    fsubmit.add_argument(
        "--topology", default=None, metavar="SPEC",
        help="ear workload: the 2-edge-connected graph to sweep "
             "(same SPEC grammar as elect --topology; default theta)",
    )
    fsubmit.add_argument("--total", type=int, default=1000,
                         help="instances per grid point")
    fsubmit.add_argument("--shard-size", type=int, default=250,
                         help="instances per resumable shard")
    fsubmit.add_argument("--n", type=int, default=6)
    fsubmit.add_argument("--id-max", type=int, default=64,
                         help="recovery/degradation: ID universe bound")
    fsubmit.add_argument("--seed", type=int, default=0)
    fsubmit.add_argument("--sched-seed", type=int, default=0)
    fsubmit.add_argument("--scheduler", choices=["lockstep", "seeded"],
                         default="lockstep")
    fsubmit.add_argument("--algorithm",
                         choices=["terminating", "nonoriented"],
                         default="nonoriented")
    fsubmit.add_argument("--c", type=float, default=2.0,
                         help="whp: sampler exponent")
    fsubmit.add_argument("--kind",
                         choices=("drop", "duplicate", "spurious", "crash"),
                         default="drop",
                         help="degradation: fault kind to sweep")
    fsubmit.add_argument("--rates", type=_parse_float_list,
                         default=[0.0, 0.005, 0.01, 0.02, 0.05],
                         help="degradation: non-decreasing rate grid")
    fsubmit.add_argument("--drop-rate", type=float, default=0.0,
                         help="recovery: per-pulse drop probability")
    fsubmit.add_argument("--duplicate-rate", type=float, default=0.0,
                         help="recovery: per-pulse duplication probability")
    fsubmit.add_argument("--spurious-rate", type=float, default=0.0,
                         help="recovery: per-slot spurious-pulse probability")
    fsubmit.add_argument("--fault-seed", type=int, default=0,
                         help="seed of the counter-based fault streams")
    fsubmit.add_argument("--backend", choices=list(BACKEND_CHOICES),
                         default="auto")
    fsubmit.add_argument("--block-size", type=int, default=256)
    fsubmit.add_argument(
        "--processes",
        type=lambda text: text if text == "auto" else int(text),
        default=None,
        help="worker processes (int or 'auto')",
    )
    fsubmit.add_argument(
        "--min-hit-rate",
        type=float,
        default=None,
        help="fail unless at least this fraction of shards came from "
        "the cache (1.0 gates an immediate re-submit on all-hits)",
    )
    fsubmit.set_defaults(func=_cmd_farm_submit)

    fstatus = farm_sub.add_parser(
        "status", help="shard-state summary per campaign"
    )
    fstatus.add_argument("--root", required=True, help="farm root directory")
    fstatus.add_argument(
        "--campaign",
        default=None,
        help="campaign id (or 'last'); default: every campaign",
    )
    fstatus.set_defaults(func=_cmd_farm_status)

    fcollect = farm_sub.add_parser(
        "collect",
        help="aggregate a complete campaign's cached shards into its "
        "stats object (canonical JSON on stdout)",
    )
    fcollect.add_argument("--root", required=True, help="farm root directory")
    fcollect.add_argument("--campaign", default="last",
                          help="campaign id (default: 'last')")
    fcollect.add_argument("--confidence", type=float, default=0.99,
                          help="recovery/degradation: CP interval level")
    fcollect.add_argument("--z", type=float, default=2.576,
                          help="whp: normal quantile for the interval")
    fcollect.add_argument("--interval",
                          choices=["wilson", "clopper-pearson"],
                          default="wilson", help="whp: interval method")
    fcollect.add_argument("--out", default=None, metavar="PATH",
                          help="also write the canonical JSON to PATH")
    fcollect.set_defaults(func=_cmd_farm_collect)

    fgc = farm_sub.add_parser(
        "gc",
        help="reap crash leftovers: compact the ledger (orphaned "
        "campaigns, dead-pid running shards) and sweep temp files",
    )
    fgc.add_argument("--root", required=True, help="farm root directory")
    fgc.set_defaults(func=_cmd_farm_gc)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if (
        args.command == "elect"
        and args.setting != "anonymous"
        and args.topology is None
        and args.ids is None
    ):
        parser.error("--ids is required for oriented/nonoriented elections")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
