"""Chang & Roberts 1979: unidirectional extrema-finding.

Every node starts as a candidate and sends its ID clockwise.  A node
relays IDs larger than its own (becoming passive), swallows smaller ones,
and recognizes itself as leader when its own ID comes back around.  The
leader then circulates an ``elected`` announcement so every node can
terminate with the correct output.

Message complexity: :math:`O(n^2)` worst case (IDs sorted descending
clockwise... i.e. each candidate's ID travels far), :math:`O(n \\log n)`
on average over ID placements; plus exactly ``n`` announcement messages.
"""

from __future__ import annotations

from typing import Any

from repro.baselines.common import BaselineNode
from repro.core.common import LeaderState
from repro.exceptions import ProtocolViolation
from repro.simulator.node import NodeAPI

CANDIDATE = "candidate"
ELECTED = "elected"


class ChangRobertsNode(BaselineNode):
    """One Chang-Roberts node (elects the maximum ID)."""

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.participating = True

    def on_init(self, api: NodeAPI) -> None:
        self.send_cw(api, (CANDIDATE, self.node_id))

    def on_cw_message(self, api: NodeAPI, content: Any) -> None:
        kind, payload = content
        if kind == CANDIDATE:
            self._on_candidate(api, payload)
        elif kind == ELECTED:
            self._on_elected(api, payload)
        else:  # pragma: no cover - no other kinds exist
            raise ProtocolViolation(f"unknown message kind {kind!r}")

    def on_ccw_message(self, api: NodeAPI, content: Any) -> None:
        raise ProtocolViolation("Chang-Roberts is unidirectional (CW only)")

    def _on_candidate(self, api: NodeAPI, candidate_id: int) -> None:
        if candidate_id > self.node_id:
            self.participating = False
            self.send_cw(api, (CANDIDATE, candidate_id))
        elif candidate_id == self.node_id:
            # Our own ID survived the full circle: we are the maximum.
            self.leader_id = self.node_id
            self.send_cw(api, (ELECTED, self.node_id))
        # A smaller ID is swallowed: its originator cannot win.

    def _on_elected(self, api: NodeAPI, leader_id: int) -> None:
        if leader_id == self.node_id:
            # Announcement returned: everyone has been notified.
            api.terminate(LeaderState.LEADER)
            return
        self.leader_id = leader_id
        self.send_cw(api, (ELECTED, leader_id))
        api.terminate(LeaderState.NON_LEADER)


def chang_roberts_worst_case_messages(n: int) -> int:
    """Exact worst-case candidate messages plus announcements.

    The worst case places IDs increasing *counterclockwise* (so the ID at
    CW-distance :math:`i` from the maximum travels :math:`i` hops...):
    candidate messages total :math:`\\sum_{i=1}^{n} i = n(n+1)/2`, and the
    announcement adds ``n``.
    """
    return n * (n + 1) // 2 + n
