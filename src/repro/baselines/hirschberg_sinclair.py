"""Hirschberg & Sinclair 1980: bidirectional :math:`O(n\\log n)` election.

Candidates probe both directions to exponentially growing distances.  A
probe carries ``(id, phase, hops)``; nodes with a larger ID swallow it,
others relay it with a decremented hop budget, and the node at the
distance boundary bounces a reply back.  A candidate whose two replies
both return survives into the next phase with doubled reach; a probe
that travels all the way around (arriving back at its originator)
identifies the maximum-ID node, which announces and everyone terminates.

Message complexity: each phase costs :math:`O(n)` across all surviving
candidates, and there are :math:`O(\\log n)` phases, giving the classic
:math:`O(n \\log n)` bound (``8 n (1 + \\lceil\\log_2 n\\rceil)`` is a
convenient concrete ceiling, plus ``n`` announcement messages).
"""

from __future__ import annotations

import math
from typing import Any

from repro.baselines.common import BaselineNode
from repro.core.common import LeaderState
from repro.exceptions import ProtocolViolation
from repro.simulator.node import NodeAPI

PROBE = "probe"
REPLY = "reply"
ELECTED = "elected"


class HirschbergSinclairNode(BaselineNode):
    """One Hirschberg-Sinclair node (elects the maximum ID)."""

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.phase = 0
        self.replies_pending = 0
        self.candidate = True

    # -- helpers ---------------------------------------------------------------

    def _start_phase(self, api: NodeAPI) -> None:
        hops = 2 ** self.phase
        self.replies_pending = 2
        self.send_cw(api, (PROBE, self.node_id, self.phase, hops))
        self.send_ccw(api, (PROBE, self.node_id, self.phase, hops))

    def on_init(self, api: NodeAPI) -> None:
        self._start_phase(api)

    # -- message handling (symmetric in direction) ------------------------------

    def on_cw_message(self, api: NodeAPI, content: Any) -> None:
        self._handle(api, content, arrived_cw=True)

    def on_ccw_message(self, api: NodeAPI, content: Any) -> None:
        self._handle(api, content, arrived_cw=False)

    def _forward(self, api: NodeAPI, message: tuple, arrived_cw: bool) -> None:
        """Keep a message moving in its direction of travel."""
        if arrived_cw:
            self.send_cw(api, message)
        else:
            self.send_ccw(api, message)

    def _bounce(self, api: NodeAPI, message: tuple, arrived_cw: bool) -> None:
        """Send a message back the way it came."""
        if arrived_cw:
            self.send_ccw(api, message)
        else:
            self.send_cw(api, message)

    def _handle(self, api: NodeAPI, content: Any, arrived_cw: bool) -> None:
        kind = content[0]
        if kind == PROBE:
            self._on_probe(api, content, arrived_cw)
        elif kind == REPLY:
            self._on_reply(api, content, arrived_cw)
        elif kind == ELECTED:
            self._on_elected(api, content, arrived_cw)
        else:  # pragma: no cover
            raise ProtocolViolation(f"unknown message kind {kind!r}")

    def _on_probe(self, api: NodeAPI, content: Any, arrived_cw: bool) -> None:
        _kind, probe_id, phase, hops = content
        if probe_id == self.node_id:
            # Our probe circled the whole ring: we hold the maximum ID.
            self.leader_id = self.node_id
            self.send_cw(api, (ELECTED, self.node_id))
            return
        if probe_id < self.node_id:
            return  # swallow: this candidate cannot win
        if hops > 1:
            self._forward(api, (PROBE, probe_id, phase, hops - 1), arrived_cw)
        else:
            self._bounce(api, (REPLY, probe_id, phase), arrived_cw)

    def _on_reply(self, api: NodeAPI, content: Any, arrived_cw: bool) -> None:
        _kind, probe_id, phase = content
        if probe_id != self.node_id:
            self._forward(api, content, arrived_cw)
            return
        self.replies_pending -= 1
        if self.replies_pending == 0:
            self.phase += 1
            self._start_phase(api)

    def _on_elected(self, api: NodeAPI, content: Any, arrived_cw: bool) -> None:
        _kind, leader_id = content
        if leader_id == self.node_id:
            api.terminate(LeaderState.LEADER)
            return
        self.leader_id = leader_id
        self._forward(api, content, arrived_cw)
        api.terminate(LeaderState.NON_LEADER)


def hirschberg_sinclair_message_ceiling(n: int) -> int:
    """A concrete :math:`O(n\\log n)` ceiling used by the E5 comparison.

    Standard analysis: phase ``k`` involves at most
    :math:`\\lceil n / 2^{k-1} \\rceil` candidates... bounded by
    ``8n`` messages per phase over :math:`1 + \\lceil\\log_2 n\\rceil`
    phases, plus the ``n`` announcement messages.
    """
    phases = 1 + math.ceil(math.log2(n)) if n > 1 else 1
    return 8 * n * phases + n
