"""Itai & Rodeh 1981/1990: randomized election on anonymous rings, n known.

The paper's Section 5 leans on Itai-Rodeh's impossibility result (no
*terminating* anonymous election exists, even with randomness) to argue
Theorem 3 cannot terminate.  The same paper's positive side — **with the
ring size n known, a terminating randomized election exists** — is
implemented here as a baseline, completing the contrast:

| setting | IDs | n known | content | terminating election |
|---|---|---|---|---|
| Theorem 3 (this paper) | none | no | none (pulses) | impossible — stabilizes only |
| Itai-Rodeh (here)      | none | yes | yes | w.p. 1, expected O(1) rounds |

Protocol (per election round): every active node draws a random ID in
``{1..k}`` and sends ``(round, id, hop=1, unique=True)`` clockwise.
An active node receiving ``(round, id, hop, unique)``:

* ``hop == n``: its own message came home — if still ``unique``, it is
  the leader (announce); otherwise all maximum-drawers tied and enter
  the next round;
* ``id > own``: it loses — becomes passive and forwards (hop+1);
* ``id == own``: a tie — forwards with ``unique=False``;
* ``id < own``: purges the message.

Passive nodes forward everything with ``hop + 1``.  Each round at least
retains the maximum drawers; ties break with probability ≥ 1 − 1/k per
round, so termination holds with probability 1 and expected O(1) rounds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from repro.core.common import CW_ARRIVAL_PORT, CW_SEND_PORT, LeaderState
from repro.exceptions import ConfigurationError, ProtocolViolation
from repro.simulator.engine import Engine, RunResult
from repro.simulator.node import Node, NodeAPI
from repro.simulator.ring import build_oriented_ring
from repro.simulator.scheduler import Scheduler

CANDIDATE = "candidate"
ELECTED = "elected"


class ItaiRodehNode(Node):
    """One anonymous, randomized Itai-Rodeh node (ring size known)."""

    def __init__(self, ring_size: int, rng: random.Random, id_space: int = 8) -> None:
        super().__init__()
        if ring_size < 1:
            raise ConfigurationError(f"ring size must be positive, got {ring_size}")
        if id_space < 2:
            raise ConfigurationError(f"id space must be >= 2, got {id_space}")
        self.ring_size = ring_size
        self.id_space = id_space
        self._rng = rng
        self.active = True
        self.round = 0
        self.drawn_id: Optional[int] = None
        self.rounds_used = 0

    def on_init(self, api: NodeAPI) -> None:
        if self.ring_size == 1:
            api.terminate(LeaderState.LEADER)
            return
        self._new_round(api)

    def _new_round(self, api: NodeAPI) -> None:
        self.round += 1
        self.rounds_used = self.round
        self.drawn_id = self._rng.randint(1, self.id_space)
        api.send(CW_SEND_PORT, (CANDIDATE, self.round, self.drawn_id, 1, True))

    def on_message(self, api: NodeAPI, port: int, content: Any) -> None:
        if port != CW_ARRIVAL_PORT:
            raise ProtocolViolation("Itai-Rodeh is unidirectional (CW only)")
        kind = content[0]
        if kind == ELECTED:
            self._on_elected(api, content[1])
            return
        _kind, msg_round, msg_id, hop, unique = content
        if not self.active:
            api.send(CW_SEND_PORT, (CANDIDATE, msg_round, msg_id, hop + 1, unique))
            return
        self._active_step(api, msg_round, msg_id, hop, unique)

    def _active_step(
        self, api: NodeAPI, msg_round: int, msg_id: int, hop: int, unique: bool
    ) -> None:
        if hop == self.ring_size:
            # Our own candidate message completed the circle.
            if unique:
                api.send(CW_SEND_PORT, (ELECTED, self.round))
            else:
                self._new_round(api)  # tied at the maximum: redraw
            return
        if (msg_round, msg_id) > (self.round, self.drawn_id):
            # A later round, or a larger draw this round: we lose.
            self.active = False
            api.send(CW_SEND_PORT, (CANDIDATE, msg_round, msg_id, hop + 1, unique))
        elif (msg_round, msg_id) == (self.round, self.drawn_id):
            # Same round, same draw: mark the tie and pass it on.
            api.send(CW_SEND_PORT, (CANDIDATE, msg_round, msg_id, hop + 1, False))
        # else: smaller draw (or stale round): purge.

    def _on_elected(self, api: NodeAPI, token: Any) -> None:
        if self.active:
            # The announcement returned to its originator (the unique
            # remaining active node): everyone is informed.
            api.terminate(LeaderState.LEADER)
            return
        api.send(CW_SEND_PORT, (ELECTED, token))
        api.terminate(LeaderState.NON_LEADER)


@dataclass
class ItaiRodehOutcome:
    """Result of one Itai-Rodeh election."""

    nodes: List[ItaiRodehNode]
    run: RunResult

    @property
    def leaders(self) -> List[int]:
        return [
            index
            for index, node in enumerate(self.nodes)
            if node.output is LeaderState.LEADER
        ]

    @property
    def rounds_used(self) -> int:
        """Election rounds the winner needed (expected O(1))."""
        return max(node.rounds_used for node in self.nodes)

    @property
    def total_messages(self) -> int:
        return self.run.total_sent


def run_itai_rodeh(
    n: int,
    seed: int = 0,
    id_space: int = 8,
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 10_000_000,
) -> ItaiRodehOutcome:
    """Randomized anonymous election with known ring size.

    Args:
        n: Ring size, known to every node (the knowledge that makes
            termination possible at all — Itai-Rodeh's Theorem 4.1).
        seed: Master seed; each node gets an independent derived RNG.
        id_space: Draw range ``{1..k}``; larger k = fewer tie rounds.
        scheduler: Asynchronous adversary; defaults to global FIFO.
        max_steps: Engine safety bound.
    """
    if n < 1:
        raise ConfigurationError(f"need at least one node, got n={n}")
    master = random.Random(seed)
    nodes = [
        ItaiRodehNode(n, rng=random.Random(master.getrandbits(64)), id_space=id_space)
        for _ in range(n)
    ]
    topology = build_oriented_ring(nodes, defective=False)
    result = Engine(topology.network, scheduler=scheduler, max_steps=max_steps).run()
    return ItaiRodehOutcome(nodes=nodes, run=result)
