"""Franklin 1982: bidirectional :math:`O(n\\log n)` election.

Every active node sends its ID in *both* directions each phase; relays
forward.  An active node thus learns the IDs of its nearest active
neighbors on both sides and survives iff it is a local maximum among
actives (at least halving the actives per phase).  A node receiving its
own ID is the only active left and wins; an announcement circulates.

Elects the **maximum** ID (like Chang-Roberts/Le Lann/HS), with
:math:`2n` messages per phase over :math:`O(\\log n)` phases plus ``n``
announcement messages.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.baselines.common import BaselineNode
from repro.core.common import LeaderState
from repro.simulator.node import NodeAPI

TID = "tid"
ELECTED = "elected"


class FranklinNode(BaselineNode):
    """One Franklin node (elects the maximum ID)."""

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.active = True
        self.announced = False
        self.from_ccw: Optional[int] = None  # nearest active CCW-side ID
        self.from_cw: Optional[int] = None   # nearest active CW-side ID
        # TIDs arriving beyond one-per-direction belong to the sender's
        # NEXT phase (possible under asynchrony when this node is slow);
        # they are buffered here and consumed after our phase decision —
        # or forwarded if the decision demotes us to relay.
        self._buffer = {"ccw": [], "cw": []}

    def on_init(self, api: NodeAPI) -> None:
        self._start_phase(api)

    def _start_phase(self, api: NodeAPI) -> None:
        self.from_ccw = None
        self.from_cw = None
        self.send_cw(api, (TID, self.node_id))
        self.send_ccw(api, (TID, self.node_id))

    # -- message handling --------------------------------------------------------

    def on_cw_message(self, api: NodeAPI, content: Any) -> None:
        # Arrived at Port_0: the message travelled clockwise, i.e. it was
        # sent by some node on our counterclockwise side.
        self._handle(api, content, came_from="ccw")

    def on_ccw_message(self, api: NodeAPI, content: Any) -> None:
        self._handle(api, content, came_from="cw")

    def _forward(self, api: NodeAPI, content: Any, came_from: str) -> None:
        if came_from == "ccw":
            self.send_cw(api, content)  # keep travelling clockwise
        else:
            self.send_ccw(api, content)

    def _handle(self, api: NodeAPI, content: Any, came_from: str) -> None:
        kind, value = content
        if kind == ELECTED:
            self._on_elected(api, value, came_from)
            return
        if not self.active:
            self._forward(api, content, came_from)
            return
        if value == self.node_id:
            # Our own ID circled the ring: we are the only active left.
            # (It circles from both directions; announce only once and
            # swallow the second copy.)
            if not self.announced:
                self.announced = True
                self.leader_id = self.node_id
                self.send_cw(api, (ELECTED, self.node_id))
            return
        if came_from == "ccw":
            if self.from_ccw is None:
                self.from_ccw = value
            else:
                self._buffer["ccw"].append(value)
        else:
            if self.from_cw is None:
                self.from_cw = value
            else:
                self._buffer["cw"].append(value)
        if self.from_ccw is not None and self.from_cw is not None:
            self._decide(api)

    def _decide(self, api: NodeAPI) -> None:
        # Iterative: buffered next-phase TIDs may complete several phase
        # decisions back to back without touching the network.
        while (
            self.active
            and self.from_ccw is not None
            and self.from_cw is not None
        ):
            if self.node_id > self.from_ccw and self.node_id > self.from_cw:
                self._start_phase(api)  # local maximum among actives: survive
                for side in ("ccw", "cw"):
                    if not self._buffer[side]:
                        continue
                    value = self._buffer[side].pop(0)
                    if value == self.node_id:
                        if not self.announced:
                            self.announced = True
                            self.leader_id = self.node_id
                            self.send_cw(api, (ELECTED, self.node_id))
                    elif side == "ccw":
                        self.from_ccw = value
                    else:
                        self.from_cw = value
            else:
                self.active = False  # yield; from now on pure relay
                for side in ("ccw", "cw"):
                    while self._buffer[side]:
                        self._forward(api, (TID, self._buffer[side].pop(0)), side)

    def _on_elected(self, api: NodeAPI, leader_id: int, came_from: str) -> None:
        if leader_id == self.node_id:
            api.terminate(LeaderState.LEADER)
            return
        self.leader_id = leader_id
        self._forward(api, (ELECTED, leader_id), came_from)
        api.terminate(LeaderState.NON_LEADER)
