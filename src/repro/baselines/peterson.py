"""Peterson 1982: unidirectional :math:`O(n\\log n)` election.

Lynch's formulation (Distributed Algorithms, ch. 15).  Nodes are
``active`` or ``relay``.  Each phase, every active node sends its
temporary ID (``tid``), receives its active predecessor's (``v1``),
sends ``max(tid, v1)``, and receives ``v2``.  It survives (adopting
``v1``) iff ``v1`` is a strict local maximum (``v1 > tid`` and
``v1 > v2``); otherwise it becomes a relay.  At least half the actives
drop each phase.  When a node receives its own ``tid`` back, that tid —
necessarily the global maximum — has circled the remaining actives alone
and the receiving node wins.

Note the winner is the node *where the maximum tid collapses*, which is
generally **not** the node that originally held the maximum ID — unlike
Chang-Roberts/Le Lann/HS (and the paper's algorithms).  The tests
therefore check single-leader agreement, not max-node victory.

Message complexity: :math:`2n` per phase, :math:`O(\\log n)` phases,
plus ``n`` announcement messages.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.baselines.common import BaselineNode
from repro.core.common import LeaderState
from repro.exceptions import ProtocolViolation
from repro.simulator.node import NodeAPI

TID = "tid"
ELECTED = "elected"


class PetersonNode(BaselineNode):
    """One Peterson node.  Elects a unique leader (not necessarily max-ID)."""

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.active = True
        self.tid = node_id
        self.step = 1  # which receive of the current phase we await
        self.v1: Optional[int] = None

    def on_init(self, api: NodeAPI) -> None:
        self.send_cw(api, (TID, self.tid))

    def on_ccw_message(self, api: NodeAPI, content: Any) -> None:
        raise ProtocolViolation("Peterson is unidirectional (CW only)")

    def on_cw_message(self, api: NodeAPI, content: Any) -> None:
        kind, value = content
        if kind == ELECTED:
            self._on_elected(api, value)
        elif not self.active:
            self.send_cw(api, content)  # relays forward everything
        else:
            self._active_step(api, value)

    def _active_step(self, api: NodeAPI, value: int) -> None:
        if self.step == 1:
            self.v1 = value
            if value == self.tid:
                self._win(api)
                return
            self.send_cw(api, (TID, max(self.tid, value)))
            self.step = 2
        else:
            v2 = value
            if v2 == self.tid:
                self._win(api)
                return
            assert self.v1 is not None
            # v2 is the predecessor's max(tid, its own v1), so the local-
            # maximum test must be non-strict against v2: for the active
            # predecessor holding the phase's largest tid, v2 == v1.
            if self.v1 > self.tid and self.v1 >= v2:
                self.tid = self.v1
                self.step = 1
                self.send_cw(api, (TID, self.tid))  # open the next phase
            else:
                self.active = False

    def _win(self, api: NodeAPI) -> None:
        self.leader_id = self.node_id
        self.send_cw(api, (ELECTED, self.node_id))

    def _on_elected(self, api: NodeAPI, leader_id: int) -> None:
        if leader_id == self.node_id:
            api.terminate(LeaderState.LEADER)
            return
        self.leader_id = leader_id
        self.send_cw(api, (ELECTED, leader_id))
        api.terminate(LeaderState.NON_LEADER)
