"""Shared plumbing for the content-carrying baseline algorithms.

Baselines reuse the oriented-ring port conventions of
:mod:`repro.core.common` — ``Port_1`` faces clockwise, CW messages arrive
at ``Port_0`` — but their channels are built with ``defective=False`` so
message payloads survive transit.  Payloads are plain tuples whose first
element is a message kind.

Every baseline here elects the **maximum ID** (like the paper's
algorithms, making outcomes directly comparable) and terminates with a
``LeaderState`` output per node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.core.common import (
    CCW_ARRIVAL_PORT,
    CCW_SEND_PORT,
    CW_ARRIVAL_PORT,
    CW_SEND_PORT,
    LeaderState,
    validate_unique_ids,
)
from repro.simulator.engine import Engine, RunResult
from repro.simulator.node import Node, NodeAPI
from repro.simulator.ring import build_oriented_ring
from repro.simulator.scheduler import Scheduler


class BaselineNode(Node):
    """Base class: an ID-carrying node on a non-defective oriented ring."""

    def __init__(self, node_id: int) -> None:
        super().__init__()
        self.node_id = node_id
        self.leader_id: Optional[int] = None

    # -- direction helpers (content-carrying) --------------------------------

    def send_cw(self, api: NodeAPI, message: Tuple[Any, ...]) -> None:
        """Send a content message clockwise."""
        api.send(CW_SEND_PORT, message)

    def send_ccw(self, api: NodeAPI, message: Tuple[Any, ...]) -> None:
        """Send a content message counterclockwise."""
        api.send(CCW_SEND_PORT, message)

    def on_message(self, api: NodeAPI, port: int, content: Any) -> None:
        if port == CW_ARRIVAL_PORT:
            self.on_cw_message(api, content)
        else:
            self.on_ccw_message(api, content)

    def on_cw_message(self, api: NodeAPI, content: Any) -> None:
        """Handle a clockwise-travelling message (arrived at ``Port_0``)."""
        raise NotImplementedError

    def on_ccw_message(self, api: NodeAPI, content: Any) -> None:
        """Handle a counterclockwise-travelling message."""
        raise NotImplementedError


@dataclass
class BaselineOutcome:
    """Result of one baseline election."""

    ids: List[int]
    nodes: List[BaselineNode]
    run: RunResult

    @property
    def outputs(self) -> List[Any]:
        return [node.output for node in self.nodes]

    @property
    def leaders(self) -> List[int]:
        """Indices of nodes that output Leader."""
        return [
            index
            for index, node in enumerate(self.nodes)
            if node.output is LeaderState.LEADER
        ]

    @property
    def expected_leader(self) -> int:
        """All our baselines elect the maximum ID."""
        return max(range(len(self.ids)), key=lambda index: self.ids[index])

    @property
    def agreed_leader_ids(self) -> List[Optional[int]]:
        """The leader ID as learned by each node (agreement check)."""
        return [node.leader_id for node in self.nodes]

    @property
    def total_messages(self) -> int:
        """Message complexity of the execution (announcements included)."""
        return self.run.total_sent


def run_baseline(
    node_factory: Callable[[int], BaselineNode],
    ids: Sequence[int],
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 10_000_000,
) -> BaselineOutcome:
    """Run a baseline election on a non-defective oriented ring.

    Args:
        node_factory: Builds one algorithm node per ID (e.g. the class).
        ids: Unique positive node IDs in clockwise order.
        scheduler: Asynchronous adversary; defaults to global FIFO.
        max_steps: Engine safety bound.
    """
    validate_unique_ids(ids)
    nodes = [node_factory(node_id) for node_id in ids]
    topology = build_oriented_ring(nodes, defective=False)
    result = Engine(
        topology.network, scheduler=scheduler, max_steps=max_steps
    ).run()
    return BaselineOutcome(ids=list(ids), nodes=nodes, run=result)
