"""Dolev, Klawe & Rodeh 1982: unidirectional :math:`O(n\\log n)` election.

A close cousin of Peterson's algorithm.  Each phase, an active node with
value ``v`` sends ``v``, receives its active predecessor's value ``v1``,
forwards ``v1``, and receives ``v2`` (the value two actives back).  It
stays active — adopting ``v1`` — iff ``v1 > max(v, v2)``; otherwise it
relays from then on.  A node receiving its own current value (``v1 ==
v``) holds the maximum alone and wins.

As with Peterson, the winner is where the maximum value collapses, not
necessarily the original maximum-ID node.

Message complexity: :math:`2n` per phase, at most
:math:`\\lceil\\log_2 n\\rceil + 1` phases — the classic
:math:`2n\\log n + O(n)` bound — plus ``n`` announcement messages.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.baselines.common import BaselineNode
from repro.core.common import LeaderState
from repro.exceptions import ProtocolViolation
from repro.simulator.node import NodeAPI

VALUE = "value"
ELECTED = "elected"


class DolevKlaweRodehNode(BaselineNode):
    """One DKR node.  Elects a unique leader (not necessarily max-ID)."""

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.active = True
        self.value = node_id
        self.step = 1
        self.v1: Optional[int] = None

    def on_init(self, api: NodeAPI) -> None:
        self.send_cw(api, (VALUE, self.value))

    def on_ccw_message(self, api: NodeAPI, content: Any) -> None:
        raise ProtocolViolation("DKR is unidirectional (CW only)")

    def on_cw_message(self, api: NodeAPI, content: Any) -> None:
        kind, payload = content
        if kind == ELECTED:
            self._on_elected(api, payload)
        elif not self.active:
            self.send_cw(api, content)
        else:
            self._active_step(api, payload)

    def _active_step(self, api: NodeAPI, incoming: int) -> None:
        if self.step == 1:
            if incoming == self.value:
                self._win(api)
                return
            self.v1 = incoming
            self.send_cw(api, (VALUE, incoming))  # pass the predecessor's value
            self.step = 2
        else:
            v2 = incoming
            assert self.v1 is not None
            if self.v1 > self.value and self.v1 > v2:
                self.value = self.v1
                self.step = 1
                self.send_cw(api, (VALUE, self.value))
            else:
                self.active = False

    def _win(self, api: NodeAPI) -> None:
        self.leader_id = self.node_id
        self.send_cw(api, (ELECTED, self.node_id))

    def _on_elected(self, api: NodeAPI, leader_id: int) -> None:
        if leader_id == self.node_id:
            api.terminate(LeaderState.LEADER)
            return
        self.leader_id = leader_id
        self.send_cw(api, (ELECTED, leader_id))
        api.terminate(LeaderState.NON_LEADER)
