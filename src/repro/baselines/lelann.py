"""Le Lann 1977: everyone collects everyone's ID.

Each node injects its ID clockwise; every node relays every foreign ID
and absorbs its own when it completes the circle.  Because relays are
FIFO and every node emits its own ID before relaying anything, a node's
own ID is the *last* of the ``n`` IDs to reach it — so when it returns,
the node has seen the complete ID set, elects the maximum, and
terminates.  No announcement round is needed, and termination is
quiescent by the same FIFO argument.

Message complexity: exactly :math:`n^2` (each of ``n`` IDs travels ``n``
hops).
"""

from __future__ import annotations

from typing import Any, List

from repro.baselines.common import BaselineNode
from repro.core.common import LeaderState
from repro.exceptions import ProtocolViolation
from repro.simulator.node import NodeAPI


class LeLannNode(BaselineNode):
    """One Le Lann node (elects the maximum ID)."""

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.seen_ids: List[int] = [node_id]

    def on_init(self, api: NodeAPI) -> None:
        self.send_cw(api, ("id", self.node_id))

    def on_cw_message(self, api: NodeAPI, content: Any) -> None:
        _kind, incoming = content
        if incoming == self.node_id:
            # Own ID completed the circle: the collection is complete.
            self.leader_id = max(self.seen_ids)
            output = (
                LeaderState.LEADER
                if self.leader_id == self.node_id
                else LeaderState.NON_LEADER
            )
            api.terminate(output)
            return
        self.seen_ids.append(incoming)
        self.send_cw(api, ("id", incoming))

    def on_ccw_message(self, api: NodeAPI, content: Any) -> None:
        raise ProtocolViolation("Le Lann is unidirectional (CW only)")


def lelann_exact_messages(n: int) -> int:
    """Le Lann's schedule-independent cost: exactly :math:`n^2` messages."""
    return n * n
