"""Classic content-carrying leader-election baselines (related work).

The paper's introduction situates its :math:`O(n \\cdot \\mathsf{ID}_{max})`
content-oblivious algorithm against the classical asynchronous ring
algorithms that may read message *content*:

* :mod:`~repro.baselines.chang_roberts` — Chang & Roberts 1979,
  unidirectional, :math:`O(n^2)` worst case / :math:`O(n\\log n)` average.
* :mod:`~repro.baselines.lelann` — Le Lann 1977, unidirectional,
  :math:`\\Theta(n^2)`.
* :mod:`~repro.baselines.hirschberg_sinclair` — Hirschberg & Sinclair
  1980, bidirectional, :math:`O(n \\log n)`.
* :mod:`~repro.baselines.peterson` — Peterson 1982, unidirectional,
  :math:`O(n \\log n)`.
* :mod:`~repro.baselines.dolev_klawe_rodeh` — Dolev, Klawe & Rodeh 1982,
  unidirectional, :math:`O(n \\log n)`.

All run on the same simulator as the content-oblivious algorithms, with
``defective=False`` channels, enabling the E5 apples-to-apples message
count comparison: content costs :math:`O(n\\log n)` messages, losing
content costs :math:`\\Theta(n \\cdot \\mathsf{ID}_{max})` pulses — and by
Theorem 4 that gap is inherent, not an artifact.
"""

from repro.baselines.common import BaselineOutcome, run_baseline
from repro.baselines.chang_roberts import ChangRobertsNode
from repro.baselines.franklin import FranklinNode
from repro.baselines.itai_rodeh import ItaiRodehNode, ItaiRodehOutcome, run_itai_rodeh
from repro.baselines.lelann import LeLannNode
from repro.baselines.hirschberg_sinclair import HirschbergSinclairNode
from repro.baselines.peterson import PetersonNode
from repro.baselines.dolev_klawe_rodeh import DolevKlaweRodehNode

#: ID-carrying baselines sharing the ``node_factory(node_id)`` shape.
#: (Itai-Rodeh is anonymous + randomized and has its own runner,
#: :func:`run_itai_rodeh`.)
ALL_BASELINES = {
    "chang_roberts": ChangRobertsNode,
    "lelann": LeLannNode,
    "hirschberg_sinclair": HirschbergSinclairNode,
    "peterson": PetersonNode,
    "dolev_klawe_rodeh": DolevKlaweRodehNode,
    "franklin": FranklinNode,
}

__all__ = [
    "ALL_BASELINES",
    "BaselineOutcome",
    "run_baseline",
    "ChangRobertsNode",
    "FranklinNode",
    "ItaiRodehNode",
    "ItaiRodehOutcome",
    "run_itai_rodeh",
    "LeLannNode",
    "HirschbergSinclairNode",
    "PetersonNode",
    "DolevKlaweRodehNode",
]
