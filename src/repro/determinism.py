"""Counter-based default seeding: no silent entropy escape hatches.

PR 5 made every *explicit* random decision in the repo a pure function
of counter coordinates (:func:`repro.faults.model.roll_u64`), which is
what lets a farm shard, a replay, or a differential re-run reproduce a
result bit-for-bit.  A handful of library entry points, however, kept
``random.Random()`` / ``random.Random(None)`` fallbacks when the caller
omitted a seed — and an unseeded :class:`random.Random` seeds itself
from ``os.urandom``, which is exactly the non-replayable entropy the
counter scheme exists to eliminate.

This module is the single replacement for those fallbacks: a default
seed is drawn from a *counter stream* — ``mix64(stream_key + call#)`` —
so the k-th default-seeded call in any process, on any machine, sees the
same stream.  That makes "I forgot to pass a seed" reproducible instead
of silently non-deterministic: two fresh processes running the same code
path get identical results, and a sweep-farm shard that accidentally
relies on a default still caches and replays correctly.

Callers that *want* per-call variety must now thread an explicit seed or
RNG — which is the paper-trail the sweep farm's content-addressed cache
keys require anyway.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator

from repro.faults.model import mix64

#: Disjoint stream keys (arbitrary odd 64-bit constants, same family as
#: the fault-roll keys) so each default-seeded entry point draws from an
#: independent counter stream.
STREAM_RING_FLIPS = 0x5851F42D4C957F2D
STREAM_ID_SAMPLING = 0x14057B7EF767814F
STREAM_ANONYMOUS = 0xB504F333F9DE6485

_counters: dict = {}


def counter_seed(stream_key: int) -> int:
    """The next seed of ``stream_key``'s counter stream (process-stable).

    Call ``k`` (0-based, per stream, per process) returns
    ``mix64(stream_key + k)`` — a pure function of the pair, so any
    fresh process replays the identical sequence.
    """
    counter: Iterator[int] = _counters.setdefault(stream_key, itertools.count())
    return mix64(stream_key + next(counter))


def counter_rng(stream_key: int) -> random.Random:
    """A :class:`random.Random` seeded from ``stream_key``'s counter
    stream — the deterministic replacement for ``random.Random()``."""
    return random.Random(counter_seed(stream_key))


def reset_streams() -> None:
    """Rewind every counter stream (test isolation helper)."""
    _counters.clear()
