"""Optional-accelerator guards and the fleet backend registry.

Two optional tiers sit above the pure-Python reference semantics:

* **NumPy** (the ``[perf]`` extra) — vectorized struct-of-arrays
  lowerings.  This module is the single place NumPy is imported, so a
  NumPy-free install degrades in exactly one, testable way
  (``tests/test_numpy_free.py`` runs the full CLI surface with NumPy
  shadowed out).
* **Numba** (the ``[jit]`` extra) — ``@njit``-compiled per-instance
  fleet loops in :mod:`repro.core.kernels.compiled`, the only module
  allowed to import numba.  It degrades the same way
  (``tests/test_jit_free.py``).

:func:`resolve_backend` is the one dispatch rule every fleet entry
point, sweep, and checker goes through: ``"auto"`` prefers
``compiled`` → ``numpy`` → ``python`` (overridable with the
``REPRO_BACKEND`` environment variable); pinning an unavailable backend
is a :class:`~repro.exceptions.ConfigurationError` with an install
hint.  Pure Python stays the bit-identity oracle — the accelerated
tiers are lowerings of the same kernels, pinned by the differential
test battery.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Any, Optional, Tuple

try:  # pragma: no cover - trivially one of the two branches per install
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _numpy = None

#: The NumPy module when importable, else ``None``.
np: Optional[Any] = _numpy

#: True when the ``[perf]`` extra's NumPy is importable.
HAVE_NUMPY: bool = np is not None

#: Every backend name :func:`resolve_backend` accepts (CLI ``--backend``
#: choices and the ``REPRO_BACKEND`` environment variable use this).
BACKEND_CHOICES: Tuple[str, ...] = ("auto", "compiled", "numpy", "python")

#: Environment variable that overrides what ``backend="auto"`` resolves
#: to (any value in :data:`BACKEND_CHOICES`).
BACKEND_ENV_VAR = "REPRO_BACKEND"


def require_numpy(feature: str) -> Any:
    """Return the NumPy module or raise a uniform configuration error."""
    if np is None:
        from repro.exceptions import ConfigurationError

        raise ConfigurationError(
            f"{feature} requires numpy; install the [perf] extra "
            "or select the pure-Python backend"
        )
    return np


# ---------------------------------------------------------------------------
# The compiled (numba) tier.  repro.core.kernels.compiled is the only
# module that imports numba (CI greps for this); here we only probe it,
# lazily and once, so numpy-only and pure-Python installs never pay a
# failed import more than once per process.
# ---------------------------------------------------------------------------

_COMPILED_MOD: Optional[Any] = None
_COMPILED_PROBED = False


def load_compiled() -> Optional[Any]:
    """The :mod:`repro.core.kernels.compiled` module when its numba JIT
    is usable, else ``None`` (numba or numpy missing/broken).  Probed
    once per process."""
    global _COMPILED_MOD, _COMPILED_PROBED
    if not _COMPILED_PROBED:
        _COMPILED_PROBED = True
        if HAVE_NUMPY:
            try:
                from repro.core.kernels import compiled as _compiled
            except Exception:  # pragma: no cover - broken numba install
                _compiled = None  # type: ignore[assignment]
            if _compiled is not None and _compiled.HAVE_NUMBA:
                _COMPILED_MOD = _compiled
    return _COMPILED_MOD


def jit_available() -> bool:
    """True when the ``[jit]`` extra's numba tier is importable."""
    return load_compiled() is not None


def resolve_backend(backend: str = "auto") -> str:
    """Resolve a backend request to a concrete tier name.

    ``"auto"`` honours :data:`BACKEND_ENV_VAR` when set, otherwise
    dispatches compiled → numpy → python by availability.  Pinning an
    unavailable tier raises :class:`~repro.exceptions.ConfigurationError`.
    """
    from repro.exceptions import ConfigurationError

    if backend == "auto":
        pinned = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
        if pinned and pinned != "auto":
            if pinned not in BACKEND_CHOICES:
                raise ConfigurationError(
                    f"{BACKEND_ENV_VAR}={pinned!r} is not a backend; "
                    f"choose one of {', '.join(BACKEND_CHOICES)}"
                )
            return resolve_backend(pinned)
        if jit_available():
            return "compiled"
        return "numpy" if HAVE_NUMPY else "python"
    if backend == "compiled":
        if not jit_available():
            raise ConfigurationError(
                "backend='compiled' requested but the numba JIT tier is "
                "not importable; install the [jit] extra or use "
                "backend='auto'"
            )
        return "compiled"
    if backend == "numpy":
        if not HAVE_NUMPY:
            raise ConfigurationError(
                "backend='numpy' requested but numpy is not importable; "
                "install the [perf] extra or use backend='auto'"
            )
        return "numpy"
    if backend == "python":
        return "python"
    raise ConfigurationError(
        f"unknown fleet backend {backend!r}; choose one of "
        f"{', '.join(BACKEND_CHOICES)}"
    )


def pin_jit_cache() -> Optional[str]:
    """Pin ``NUMBA_CACHE_DIR`` to a shared writable directory.

    ``@njit(cache=True)`` persists compiled machine code keyed by this
    directory; pinning it *before* numba is imported (and before worker
    processes fork) lets every sweep shard reuse the parent's compiled
    cache instead of recompiling per process.  Prefers
    ``<repo>/build/numba_cache`` when running from a checkout, else a
    stable per-machine temp directory.  Respects a pre-set
    ``NUMBA_CACHE_DIR``; returns the pinned path or ``None`` when no
    writable location exists (numba then falls back to its default).
    """
    existing = os.environ.get("NUMBA_CACHE_DIR")
    if existing:
        return existing
    target: Optional[Path] = None
    for parent in Path(__file__).resolve().parents:
        if (parent / "pyproject.toml").is_file():
            target = parent / "build" / "numba_cache"
            break
    if target is None:  # installed package: no checkout root to anchor on
        target = Path(tempfile.gettempdir()) / "repro-numba-cache"
    try:
        target.mkdir(parents=True, exist_ok=True)
    except OSError:  # pragma: no cover - unwritable filesystem
        return None
    os.environ["NUMBA_CACHE_DIR"] = str(target)
    return str(target)


def warm_compiled() -> float:
    """Compile every JIT fleet entry point on a tiny workload.

    Benches and the CLI call this once up front so first-call
    compilation (~seconds, amortized by the on-disk cache) never
    pollutes a timed region.  Returns the compile wall-clock in seconds
    (0.0 when the compiled tier is unavailable or already warm).
    """
    mod = load_compiled()
    if mod is None:
        return 0.0
    return float(mod.warm_compiled())


def maybe_warm_compiled(backend: str = "auto") -> float:
    """:func:`warm_compiled`, but only when ``backend`` resolves to the
    compiled tier; unresolvable requests are left to fail at the real
    call site (returns 0.0 here)."""
    from repro.exceptions import ConfigurationError

    try:
        resolved = resolve_backend(backend)
    except ConfigurationError:
        return 0.0
    if resolved != "compiled":
        return 0.0
    return warm_compiled()
