"""Optional-accelerator guard: the single place NumPy is imported.

NumPy is the ``[perf]`` extra — an accelerator, never a requirement.
Every module that wants vectorized lowerings imports ``np`` and
``HAVE_NUMPY`` from here, so a NumPy-free install degrades to the
pure-Python reference semantics in exactly one, testable way
(``tests/test_numpy_free.py`` runs the full CLI surface with NumPy
shadowed out).
"""

from __future__ import annotations

from typing import Any, Optional

try:  # pragma: no cover - trivially one of the two branches per install
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _numpy = None

#: The NumPy module when importable, else ``None``.
np: Optional[Any] = _numpy

#: True when the ``[perf]`` extra's NumPy is importable.
HAVE_NUMPY: bool = np is not None


def require_numpy(feature: str) -> Any:
    """Return the NumPy module or raise a uniform configuration error."""
    if np is None:
        from repro.exceptions import ConfigurationError

        raise ConfigurationError(
            f"{feature} requires numpy; install the [perf] extra "
            "or select the pure-Python backend"
        )
    return np
