"""Recovery-minimizing search over the adversarial plan space.

Two classic derivative-free strategies over the discrete grid of
:class:`~repro.adversary.plans.PlanSpace`:

* **cross-entropy** — keep one categorical distribution per plan
  coordinate, sample a population, evaluate, refit the distributions to
  the elite fraction (with additive smoothing so no choice's mass ever
  hits zero), repeat;
* **epsilon-greedy** — a bandit walk: with probability epsilon sample a
  fresh uniform plan (explore), otherwise resample one coordinate of
  the incumbent best (exploit).

Both minimize the same objective: the **Clopper–Pearson upper bound**
of the recovery rate under the candidate plan, measured by the exact
farm-cacheable shard seam
(:func:`repro.verification.statistical.run_recovery_shard`).  Using the
upper bound rather than the point estimate makes the objective
pessimistic about the *adversary's* evidence — a plan only ranks as
worse-for-the-protocol when the data actually supports it — and makes
ties at equal counts break deterministically (canonical plan JSON is
the final tiebreak, so a search is a pure function of its seeds).

Evaluations are memoized per canonical plan: the objective is itself a
pure function of the plan and the evaluation coordinates, so revisiting
a plan costs nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.adversary.plans import AdversaryPlan, PlanSpace
from repro.analysis.stats import clopper_pearson_interval
from repro.exceptions import ConfigurationError
from repro.farm.keys import canonical_json

#: Strategy names the search loop (and the CLI) accepts.
STRATEGIES = ("cross-entropy", "epsilon-greedy")


@dataclass(frozen=True)
class EvalSettings:
    """The evaluation coordinates every candidate is measured under.

    These are exactly the semantics coordinates of the recovery shard
    seam, so an artifact carrying them replays bit-identically and a
    farm campaign built from them shares cache entries with any other
    campaign at the same point.
    """

    algorithm: str = "nonoriented"
    n: int = 5
    id_max: int = 40
    samples: int = 64
    seed: int = 0
    sched_seed: int = 0
    scheduler: str = "lockstep"
    backend: str = "auto"
    block_size: int = 256
    confidence: float = 0.99
    watchdog_rounds: Optional[int] = None

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise ConfigurationError(
                f"plan evaluation needs >= 1 sample, got {self.samples}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "n": self.n,
            "id_max": self.id_max,
            "samples": self.samples,
            "seed": self.seed,
            "sched_seed": self.sched_seed,
            "scheduler": self.scheduler,
            "confidence": self.confidence,
            "watchdog_rounds": self.watchdog_rounds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], **overrides: Any) -> "EvalSettings":
        """Rebuild from an artifact dict.  Backend/block_size are
        execution knobs (bit-identical by the conformance battery), so
        a replay may override them freely."""
        return cls(
            algorithm=data["algorithm"],
            n=data["n"],
            id_max=data["id_max"],
            samples=data["samples"],
            seed=data["seed"],
            sched_seed=data["sched_seed"],
            scheduler=data["scheduler"],
            confidence=data["confidence"],
            watchdog_rounds=data["watchdog_rounds"],
            **overrides,
        )


@dataclass(frozen=True)
class PlanEvaluation:
    """One measured candidate: the plan and its recovery statistics."""

    plan: AdversaryPlan
    samples: int
    recovered: int
    wrong_stable: int
    stuck: int
    rate_low: float
    rate_high: float
    fault_events: Mapping[str, int] = field(default_factory=dict)

    @property
    def success_rate(self) -> float:
        return self.recovered / self.samples

    @property
    def objective(self) -> Tuple[float, float, str]:
        """Minimization key: CP upper bound, then point estimate, then
        canonical plan JSON (a total, deterministic order)."""
        return (
            self.rate_high,
            self.success_rate,
            canonical_json(self.plan.to_canonical()),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan.to_canonical(),
            "cost": self.plan.cost,
            "samples": self.samples,
            "recovered": self.recovered,
            "wrong_stable": self.wrong_stable,
            "stuck": self.stuck,
            "success_rate": self.success_rate,
            "rate_low": self.rate_low,
            "rate_high": self.rate_high,
            "fault_events": dict(self.fault_events),
        }


def evaluate_plan(
    plan: AdversaryPlan,
    settings: EvalSettings,
    farm_root: Optional[Union[str, Path]] = None,
) -> PlanEvaluation:
    """Measure one plan's recovery statistics (the search objective).

    Direct path: one :func:`run_recovery_shard` call over
    ``range(samples)``.  With ``farm_root`` the evaluation routes
    through the sweep farm as an ``adversary`` campaign — whose jobs
    resolve to plain ``recovery`` shards, so repeated searches (and
    overlapping recovery campaigns) hit the content-addressed cache.
    Both paths aggregate the same counts, bit-identically.
    """
    if farm_root is not None:
        from repro.farm.campaign import Campaign, adversary_params
        from repro.farm.service import Farm

        farm = Farm(farm_root)
        campaign = Campaign(
            "adversary",
            total=settings.samples,
            params=adversary_params(
                plan=plan.to_canonical(),
                algorithm=settings.algorithm,
                n=settings.n,
                id_max=settings.id_max,
                seed=settings.seed,
                sched_seed=settings.sched_seed,
                scheduler=settings.scheduler,
                watchdog_rounds=settings.watchdog_rounds,
            ),
        )
        outcome = farm.submit(
            campaign, backend=settings.backend, block_size=settings.block_size
        )
        if not outcome.complete:
            raise ConfigurationError(
                f"farm submit left {len(outcome.failed)} shards failed "
                f"for campaign {outcome.cid}: {outcome.failed[0][2]}"
            )
        summary = farm.collect_object(
            campaign.cid, confidence=settings.confidence
        )
        return PlanEvaluation(
            plan=plan,
            samples=summary["samples"],
            recovered=summary["recovered"],
            wrong_stable=summary["wrong_stable"],
            stuck=summary["stuck"],
            rate_low=summary["rate_low"],
            rate_high=summary["rate_high"],
            fault_events=dict(summary["fault_events"]),
        )
    from repro.verification.statistical import run_recovery_shard

    counts, _non_recovered, events = run_recovery_shard(
        algorithm=settings.algorithm,
        n=settings.n,
        id_max=settings.id_max,
        indices=list(range(settings.samples)),
        seed=settings.seed,
        sched_seed=settings.sched_seed,
        scheduler=settings.scheduler,
        backend=settings.backend,
        block_size=settings.block_size,
        faults=plan.to_model(),
        watchdog_rounds=settings.watchdog_rounds,
    )
    low, high = clopper_pearson_interval(
        counts["recovered"], settings.samples, confidence=settings.confidence
    )
    return PlanEvaluation(
        plan=plan,
        samples=settings.samples,
        recovered=counts["recovered"],
        wrong_stable=counts["wrong_stable"],
        stuck=counts["stuck"],
        rate_low=low,
        rate_high=high,
        fault_events=dict(events),
    )


class _Memo:
    """Per-search evaluation cache keyed by canonical plan JSON."""

    def __init__(
        self,
        settings: EvalSettings,
        farm_root: Optional[Union[str, Path]],
    ) -> None:
        self.settings = settings
        self.farm_root = farm_root
        self.cache: Dict[str, PlanEvaluation] = {}
        self.evaluations = 0

    def __call__(self, plan: AdversaryPlan) -> PlanEvaluation:
        key = canonical_json(plan.to_canonical())
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        evaluation = evaluate_plan(plan, self.settings, self.farm_root)
        self.cache[key] = evaluation
        self.evaluations += 1
        return evaluation


@dataclass
class SearchResult:
    """What one search run found, plus enough trace to audit it."""

    strategy: str
    budget: int
    search_seed: int
    iterations: int
    evaluations: int
    best: PlanEvaluation
    trace: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "strategy": self.strategy,
            "budget": self.budget,
            "search_seed": self.search_seed,
            "iterations": self.iterations,
            "evaluations": self.evaluations,
            "best": self.best.to_dict(),
            "trace": list(self.trace),
        }


def _better(a: PlanEvaluation, b: Optional[PlanEvaluation]) -> bool:
    return b is None or a.objective < b.objective


def _cross_entropy(
    space: PlanSpace,
    memo: _Memo,
    rng: "random.Random",
    iterations: int,
    population: int,
    elite_frac: float,
    smoothing: float,
    trace: List[Dict[str, Any]],
) -> PlanEvaluation:
    coords = space.coordinates()
    weights: Dict[str, List[float]] = {
        name: [1.0] * len(choices) for name, choices in coords.items()
    }
    n_elite = max(1, int(round(population * elite_frac)))
    best: Optional[PlanEvaluation] = None
    for iteration in range(iterations):
        candidates: List[Tuple[AdversaryPlan, Dict[str, int], List[int]]] = []
        for _ in range(population):
            idx = {
                name: rng.choices(
                    range(len(coords[name])), weights=weights[name]
                )[0]
                for name in coords
            }
            draw = {name: coords[name][i] for name, i in idx.items()}
            drop_idx = [
                (
                    rng.choices(
                        range(len(coords["drop_offset"])),
                        weights=weights["drop_offset"],
                    )[0],
                    rng.choices(
                        range(len(coords["drop_node_offset"])),
                        weights=weights["drop_node_offset"],
                    )[0],
                    rng.choices(
                        range(len(coords["drop_direction"])),
                        weights=weights["drop_direction"],
                    )[0],
                )
                for _ in range(draw["n_drops"])
            ]
            drop_coords = [
                (
                    coords["drop_offset"][o],
                    coords["drop_node_offset"][v],
                    coords["drop_direction"][d],
                )
                for o, v, d in drop_idx
            ]
            plan = space.assemble(draw, drop_coords)
            candidates.append((plan, idx, [i for triple in drop_idx for i in triple]))
        scored = [
            (memo(plan), idx, flat_drops)
            for plan, idx, flat_drops in candidates
        ]
        scored.sort(key=lambda item: item[0].objective)
        elites = scored[:n_elite]
        if _better(elites[0][0], best):
            best = elites[0][0]
        trace.append(
            {
                "iteration": iteration,
                "strategy": "cross-entropy",
                "best_rate_high": best.rate_high,
                "elite_rate_high": elites[0][0].rate_high,
            }
        )
        # Refit every categorical to elite counts, with additive
        # smoothing so no choice's probability collapses to zero.
        for name in coords:
            counts = [smoothing] * len(coords[name])
            for evaluation, idx, flat_drops in elites:
                if name in idx:
                    counts[idx[name]] += 1.0
                if name in ("drop_offset", "drop_node_offset", "drop_direction"):
                    offset = (
                        0
                        if name == "drop_offset"
                        else 1
                        if name == "drop_node_offset"
                        else 2
                    )
                    for i in range(offset, len(flat_drops), 3):
                        counts[flat_drops[i]] += 1.0
            weights[name] = counts
    assert best is not None  # iterations >= 1 is validated by the caller
    return best


def _epsilon_greedy(
    space: PlanSpace,
    memo: _Memo,
    rng: "random.Random",
    iterations: int,
    epsilon: float,
    trace: List[Dict[str, Any]],
) -> PlanEvaluation:
    best = memo(space.sample(rng))
    for iteration in range(iterations):
        if rng.random() < epsilon:
            candidate = space.sample(rng)
            move = "explore"
        else:
            candidate = space.mutate(best.plan, rng)
            move = "exploit"
        evaluation = memo(candidate)
        if _better(evaluation, best):
            best = evaluation
        trace.append(
            {
                "iteration": iteration,
                "strategy": "epsilon-greedy",
                "move": move,
                "candidate_rate_high": evaluation.rate_high,
                "best_rate_high": best.rate_high,
            }
        )
    return best


def search_worst_plan(
    space: PlanSpace,
    settings: EvalSettings,
    strategy: str = "cross-entropy",
    iterations: int = 8,
    population: int = 12,
    elite_frac: float = 0.25,
    epsilon: float = 0.3,
    smoothing: float = 0.5,
    search_seed: int = 0,
    farm_root: Optional[Union[str, Path]] = None,
) -> SearchResult:
    """Find the budgeted plan that minimizes the recovery CP upper bound.

    A zero-budget space short-circuits: the only admissible plan is the
    trivial one, which is evaluated once and returned (the CLI's
    ``--budget 0`` clean-exit contract).
    """
    if strategy not in STRATEGIES:
        raise ConfigurationError(
            f"unknown search strategy {strategy!r}; choose from {STRATEGIES}"
        )
    if iterations < 1:
        raise ConfigurationError(
            f"search needs >= 1 iteration, got {iterations}"
        )
    if population < 2:
        raise ConfigurationError(
            f"cross-entropy population must be >= 2, got {population}"
        )
    if not 0.0 < elite_frac <= 1.0:
        raise ConfigurationError(
            f"elite_frac must be in (0, 1], got {elite_frac}"
        )
    if not 0.0 <= epsilon <= 1.0:
        raise ConfigurationError(f"epsilon must be in [0, 1], got {epsilon}")
    memo = _Memo(settings, farm_root)
    trace: List[Dict[str, Any]] = []
    if space.budget == 0:
        best = memo(AdversaryPlan.trivial(space.fault_seed))
        return SearchResult(
            strategy=strategy,
            budget=0,
            search_seed=search_seed,
            iterations=0,
            evaluations=memo.evaluations,
            best=best,
            trace=trace,
        )
    rng = random.Random(search_seed)
    if strategy == "cross-entropy":
        best = _cross_entropy(
            space, memo, rng, iterations, population, elite_frac, smoothing, trace
        )
    else:
        best = _epsilon_greedy(space, memo, rng, iterations, epsilon, trace)
    return SearchResult(
        strategy=strategy,
        budget=space.budget,
        search_seed=search_seed,
        iterations=iterations,
        evaluations=memo.evaluations,
        best=best,
        trace=trace,
    )


def random_baseline(
    space: PlanSpace,
    settings: EvalSettings,
    count: int,
    search_seed: int = 0,
    farm_root: Optional[Union[str, Path]] = None,
) -> PlanEvaluation:
    """Best (lowest-objective) of ``count`` uniform random plans.

    The equal-budget yardstick for the CI smoke gate: a search that
    cannot beat (or at least match) blind sampling at the same budget
    is not searching.  Uses its own seeded stream, disjoint from the
    search's by construction (pass a different ``search_seed``).
    """
    if count < 1:
        raise ConfigurationError(
            f"baseline needs >= 1 random plan, got {count}"
        )
    memo = _Memo(settings, farm_root)
    rng = random.Random(search_seed)
    best: Optional[PlanEvaluation] = None
    for _ in range(count):
        evaluation = memo(space.sample(rng))
        if _better(evaluation, best):
            best = evaluation
    assert best is not None
    return best
