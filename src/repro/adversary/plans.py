"""The discrete adversarial plan space over correlated fault groups.

A fault *plan* is the search-facing spelling of one correlated
:class:`~repro.faults.model.FaultGroup`: an anchor position, one
trigger (absolute round or a rho/sigma threshold crossing), and a
budgeted allocation of member clauses — a crash(-restart), relative
pulse drops, and a drop-rate burst window re-anchored to the fire
round.  Plans are deliberately *discrete and small*: the optimizer in
:mod:`repro.adversary.search` walks a finite grid, so every coordinate
here is a choice from an explicit tuple, and every plan canonicalizes
to a JSON dict that round-trips bit-identically through artifacts and
farm campaign params.

Budget accounting (the per-plan constraint the search respects)::

    cost = 2 * crash + len(drops) + burst_length

A crash costs 2 (it silences a node for good, or until a paid-for
restart); each deterministic drop and each burst round costs 1.  The
zero-budget plan is the trivial plan — a no-op model — which the
search CLI emits unconditionally at ``--budget 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.faults.model import FaultBurst, FaultGroup, FaultModel, GroupDrop

#: Trigger spellings a plan may carry: an absolute fire round, or the
#: first round the anchor's rho/sigma counter reaches the value.
TRIGGER_KINDS = ("round", "rho", "sigma")

#: Cost of a crash member in budget units (drops and burst rounds cost 1).
CRASH_COST = 2


@dataclass(frozen=True)
class AdversaryPlan:
    """One budgeted correlated-fault plan (a single fault group).

    Attributes:
        anchor: Ring position the group is bound to.
        trigger_kind: ``"round"`` (absolute) or ``"rho"``/``"sigma"``
            (threshold crossing on the anchor's counter).
        trigger_value: The fire round (1-based) or the threshold.
        crash: Whether the anchor crashes at the fire round.
        restart_after: Rounds until the crashed anchor reboots
            (None = permanent; requires ``crash``).
        drops: Relative :class:`~repro.faults.model.GroupDrop` clauses.
        burst_length: Rounds of the drop-rate burst window starting at
            the fire round (0 = no burst).
        drop_rate: Per-send drop probability inside the burst window.
        fault_seed: Seed of the model's counter-based roll streams.
    """

    anchor: int = 0
    trigger_kind: str = "round"
    trigger_value: int = 1
    crash: bool = False
    restart_after: Optional[int] = None
    drops: Tuple[GroupDrop, ...] = ()
    burst_length: int = 0
    drop_rate: float = 0.0
    fault_seed: int = 0

    def __post_init__(self) -> None:
        if self.anchor < 0:
            raise ConfigurationError(
                f"plan anchor must be >= 0, got {self.anchor}"
            )
        if self.trigger_kind not in TRIGGER_KINDS:
            raise ConfigurationError(
                f"plan trigger_kind must be one of {list(TRIGGER_KINDS)}, "
                f"got {self.trigger_kind!r}"
            )
        if self.trigger_value < 1:
            raise ConfigurationError(
                f"plan trigger_value must be >= 1, got {self.trigger_value}"
            )
        if self.burst_length < 0:
            raise ConfigurationError(
                f"plan burst_length must be >= 0, got {self.burst_length}"
            )
        if not 0.0 <= self.drop_rate <= 1.0:
            raise ConfigurationError(
                f"plan drop_rate must be in [0, 1], got {self.drop_rate}"
            )
        if self.burst_length > 0 and self.drop_rate <= 0.0:
            raise ConfigurationError(
                "a burst window without a drop_rate injects nothing; "
                "set drop_rate > 0 or burst_length = 0"
            )
        if self.restart_after is not None and not self.crash:
            raise ConfigurationError(
                "restart_after without crash=True: nothing to restart"
            )
        object.__setattr__(self, "drops", tuple(self.drops))
        # Canonicalize inert coordinates so semantically-equal plans are
        # dict-equal (the farm cache-key injectivity tests pin this):
        # a plan with no members degenerates to the trivial plan.
        if self.burst_length == 0:
            object.__setattr__(self, "drop_rate", 0.0)
        if self.is_trivial:
            object.__setattr__(self, "anchor", 0)
            object.__setattr__(self, "trigger_kind", "round")
            object.__setattr__(self, "trigger_value", 1)
            object.__setattr__(self, "restart_after", None)

    @classmethod
    def trivial(cls, fault_seed: int = 0) -> "AdversaryPlan":
        """The zero-cost plan (compiles to the no-op fault model)."""
        return cls(fault_seed=fault_seed)

    @property
    def is_trivial(self) -> bool:
        """True when the plan has no member clauses at all."""
        return not (self.crash or self.drops or self.burst_length)

    @property
    def cost(self) -> int:
        """Budget units this plan spends (see module docstring)."""
        return (
            (CRASH_COST if self.crash else 0)
            + len(self.drops)
            + self.burst_length
        )

    def to_model(self) -> FaultModel:
        """Compile the plan onto the unified fault language.

        The trivial plan compiles to the no-op model (not an empty
        group — :class:`~repro.faults.model.FaultGroup` requires at
        least one member clause).
        """
        if self.is_trivial:
            return FaultModel(seed=self.fault_seed)
        absolute = self.trigger_kind == "round"
        group = FaultGroup(
            anchor=self.anchor,
            at_round=self.trigger_value if absolute else None,
            trigger_field=None if absolute else self.trigger_kind,
            trigger_threshold=None if absolute else self.trigger_value,
            crash=self.crash,
            restart_after=self.restart_after,
            drops=self.drops,
            burst=(
                FaultBurst(start=1, length=self.burst_length)
                if self.burst_length
                else None
            ),
        )
        return FaultModel(
            drop_rate=self.drop_rate if self.burst_length else 0.0,
            seed=self.fault_seed,
            groups=(group,),
        )

    def to_canonical(self) -> Dict[str, Any]:
        """The plan as a canonical, JSON-stable dict (artifact/farm form)."""
        return {
            "anchor": self.anchor,
            "trigger_kind": self.trigger_kind,
            "trigger_value": self.trigger_value,
            "crash": self.crash,
            "restart_after": self.restart_after,
            "drops": [
                {
                    "offset": drop.offset,
                    "node_offset": drop.node_offset,
                    "direction": drop.direction,
                    "count": drop.count,
                }
                for drop in self.drops
            ],
            "burst_length": self.burst_length,
            "drop_rate": self.drop_rate,
            "fault_seed": self.fault_seed,
        }


def plan_from_canonical(data: Mapping[str, Any]) -> AdversaryPlan:
    """Inverse of :meth:`AdversaryPlan.to_canonical`."""
    return AdversaryPlan(
        anchor=data["anchor"],
        trigger_kind=data["trigger_kind"],
        trigger_value=data["trigger_value"],
        crash=data["crash"],
        restart_after=data["restart_after"],
        drops=tuple(GroupDrop(**drop) for drop in data["drops"]),
        burst_length=data["burst_length"],
        drop_rate=data["drop_rate"],
        fault_seed=data["fault_seed"],
    )


@dataclass(frozen=True)
class PlanSpace:
    """The finite coordinate grid plans are drawn from.

    Every coordinate is an explicit tuple of choices, so the space is
    enumerable, the cross-entropy strategy can maintain one categorical
    distribution per coordinate, and two searches with the same seed
    walk identical candidate sequences on every platform.
    """

    n: int
    budget: int
    rounds: Tuple[int, ...] = (1, 2, 3, 4, 6, 8, 12, 16)
    thresholds: Tuple[int, ...] = (1, 2, 3)
    offsets: Tuple[int, ...] = (0, 1, 2, 3)
    restarts: Tuple[Optional[int], ...] = (None, 1, 2, 4)
    drop_rates: Tuple[float, ...] = (0.5, 1.0)
    max_drops: int = 4
    max_burst: int = 6
    fault_seed: int = 0

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(
                f"plan space needs a ring of >= 2 nodes, got n={self.n}"
            )
        if self.budget < 0:
            raise ConfigurationError(
                f"plan budget must be >= 0, got {self.budget}"
            )
        for name in ("rounds", "thresholds", "offsets", "drop_rates"):
            if not getattr(self, name):
                raise ConfigurationError(f"plan space {name} cannot be empty")
        for rate in self.drop_rates:
            if not 0.0 < rate <= 1.0:
                raise ConfigurationError(
                    f"plan space drop_rates must be in (0, 1], got {rate}"
                )

    # -- coordinate choice lists (shared by sampling and cross-entropy) --

    def triggers(self) -> List[Tuple[str, int]]:
        """Every (kind, value) trigger the space admits, in grid order."""
        out: List[Tuple[str, int]] = [("round", r) for r in self.rounds]
        for kind in ("rho", "sigma"):
            out.extend((kind, t) for t in self.thresholds)
        return out

    def coordinates(self) -> Dict[str, List[Any]]:
        """Named categorical choice lists for the distribution-based
        strategies.  Budget projection happens after drawing (see
        :meth:`assemble`), so the lists themselves are unconstrained."""
        return {
            "anchor": list(range(self.n)),
            "trigger": self.triggers(),
            "crash": [False, True],
            "restart": list(self.restarts),
            "n_drops": list(range(self.max_drops + 1)),
            "drop_offset": list(self.offsets),
            "drop_node_offset": list(range(self.n)),
            "drop_direction": ["cw", "ccw"],
            "burst_length": list(range(self.max_burst + 1)),
            "drop_rate": list(self.drop_rates),
        }

    def assemble(self, draw: Mapping[str, Any], drop_coords: List[Tuple[int, int, str]]) -> AdversaryPlan:
        """Build a plan from raw coordinate draws, projected into budget.

        Projection order spends the budget on the crash first, then
        drops, then burst rounds — deterministic, so equal draws always
        assemble the same plan.
        """
        remaining = self.budget
        crash = bool(draw["crash"]) and remaining >= CRASH_COST
        if crash:
            remaining -= CRASH_COST
        drops = tuple(
            GroupDrop(offset=offset, node_offset=node_offset, direction=direction)
            for offset, node_offset, direction in drop_coords[
                : min(len(drop_coords), remaining)
            ]
        )
        remaining -= len(drops)
        burst_length = min(int(draw["burst_length"]), remaining)
        kind, value = draw["trigger"]
        if burst_length == 0 and not crash and not drops:
            return AdversaryPlan.trivial(self.fault_seed)
        return AdversaryPlan(
            anchor=draw["anchor"],
            trigger_kind=kind,
            trigger_value=value,
            crash=crash,
            restart_after=draw["restart"] if crash else None,
            drops=drops,
            burst_length=burst_length,
            drop_rate=draw["drop_rate"] if burst_length else 0.0,
            fault_seed=self.fault_seed,
        )

    def sample(self, rng: Any) -> AdversaryPlan:
        """One uniform random plan inside the budget (``rng`` is a
        seeded :class:`random.Random`)."""
        if self.budget == 0:
            return AdversaryPlan.trivial(self.fault_seed)
        coords = self.coordinates()
        draw = {
            name: rng.choice(choices)
            for name, choices in coords.items()
            if name not in ("drop_offset", "drop_node_offset", "drop_direction")
        }
        drop_coords = [
            (
                rng.choice(coords["drop_offset"]),
                rng.choice(coords["drop_node_offset"]),
                rng.choice(coords["drop_direction"]),
            )
            for _ in range(draw["n_drops"])
        ]
        return self.assemble(draw, drop_coords)

    def mutate(self, plan: AdversaryPlan, rng: Any) -> AdversaryPlan:
        """Resample one coordinate of ``plan`` (the epsilon-greedy
        exploitation move).  Falls back to a fresh sample when the plan
        is trivial — there is nothing local to perturb."""
        if self.budget == 0 or plan.is_trivial:
            return self.sample(rng)
        coords = self.coordinates()
        draw: Dict[str, Any] = {
            "anchor": plan.anchor,
            "trigger": (plan.trigger_kind, plan.trigger_value),
            "crash": plan.crash,
            "restart": plan.restart_after,
            "burst_length": plan.burst_length,
            "drop_rate": plan.drop_rate if plan.burst_length else rng.choice(coords["drop_rate"]),
        }
        drop_coords = [
            (drop.offset, drop.node_offset, drop.direction)
            for drop in plan.drops
        ]
        which = rng.choice(
            ["anchor", "trigger", "crash", "restart", "burst_length", "drops"]
        )
        if which == "drops":
            slot = rng.randrange(len(drop_coords) + 1)
            fresh = (
                rng.choice(coords["drop_offset"]),
                rng.choice(coords["drop_node_offset"]),
                rng.choice(coords["drop_direction"]),
            )
            if slot < len(drop_coords):
                drop_coords[slot] = fresh
            else:
                drop_coords.append(fresh)
        elif which == "crash":
            draw["crash"] = not draw["crash"]
        elif which == "restart":
            draw["restart"] = rng.choice(coords["restart"])
            draw["crash"] = True
        else:
            draw[which] = rng.choice(coords[which])
        return self.assemble(draw, drop_coords)
