"""Seed-replayable artifacts: a found worst plan, frozen to JSON.

An artifact is the durable output of one adversarial search: the worst
plan found, the evaluation coordinates it was measured under, the
measured recovery statistics, and the search provenance (strategy,
seeds, budget, optional random baseline).  Everything in it is either a
semantics coordinate or a count, so ``repro faults replay`` can rebuild
the plan, rerun the exact evaluation from a fresh process, and demand
**bit-identical** classification counts — the same replayability
contract the farm's content-addressed shards live by.

The file format is canonical JSON (sorted keys, minimal separators)
with a trailing newline, so byte-identical artifacts mean identical
searches — the CI smoke job diffs two independent replays byte for
byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.adversary.plans import plan_from_canonical
from repro.adversary.search import (
    EvalSettings,
    PlanEvaluation,
    SearchResult,
    evaluate_plan,
)
from repro.exceptions import ConfigurationError
from repro.farm.keys import canonical_json

#: Artifact schema version (bump on incompatible layout changes).
ARTIFACT_VERSION = 1


def artifact_dict(
    result: SearchResult,
    settings: EvalSettings,
    baseline: Optional[PlanEvaluation] = None,
    baseline_count: int = 0,
) -> Dict[str, Any]:
    """Assemble the artifact payload from a finished search."""
    payload: Dict[str, Any] = {
        "version": ARTIFACT_VERSION,
        "kind": "adversary-plan",
        "search": {
            "strategy": result.strategy,
            "budget": result.budget,
            "search_seed": result.search_seed,
            "iterations": result.iterations,
            "evaluations": result.evaluations,
        },
        "evaluation": settings.to_dict(),
        "worst_plan": result.best.to_dict(),
    }
    if baseline is not None:
        payload["baseline"] = {
            "count": baseline_count,
            "best": baseline.to_dict(),
        }
    return payload


def save_artifact(path: Union[str, Path], payload: Mapping[str, Any]) -> Path:
    """Write an artifact as canonical JSON (+ newline) and return its path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(canonical_json(dict(payload)) + "\n")
    return target


def load_artifact(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and structurally validate one artifact file."""
    target = Path(path)
    try:
        payload = json.loads(target.read_text())
    except FileNotFoundError:
        raise ConfigurationError(f"no artifact at {target}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"artifact {target} is not valid JSON: {exc}"
        ) from None
    if not isinstance(payload, dict) or payload.get("kind") != "adversary-plan":
        raise ConfigurationError(
            f"artifact {target} is not an adversary-plan artifact"
        )
    if payload.get("version") != ARTIFACT_VERSION:
        raise ConfigurationError(
            f"artifact {target} has version {payload.get('version')!r}; "
            f"this build reads version {ARTIFACT_VERSION}"
        )
    for key in ("evaluation", "worst_plan"):
        if key not in payload:
            raise ConfigurationError(f"artifact {target} is missing {key!r}")
    return payload


@dataclass(frozen=True)
class ReplayOutcome:
    """A fresh re-evaluation of an artifact's plan vs its recorded stats."""

    matches: bool
    expected: Dict[str, int]
    observed: Dict[str, int]
    evaluation: PlanEvaluation

    def to_dict(self) -> Dict[str, Any]:
        return {
            "matches": self.matches,
            "expected": dict(self.expected),
            "observed": dict(self.observed),
            "rate_low": self.evaluation.rate_low,
            "rate_high": self.evaluation.rate_high,
        }


def replay_artifact(
    payload: Mapping[str, Any],
    backend: str = "auto",
    farm_root: Optional[Union[str, Path]] = None,
) -> ReplayOutcome:
    """Re-run an artifact's evaluation and compare counts exactly.

    The plan, the evaluation coordinates, and the fault rolls are all
    pure functions of what the artifact records, so the observed
    recovered / wrong-stable / stuck split (and fault-event counts)
    must equal the recorded ones on any backend, in any process, at any
    shard layout.  A mismatch means semantic drift — the same signal a
    farm cache-key mismatch would give.
    """
    plan = plan_from_canonical(payload["worst_plan"]["plan"])
    settings = EvalSettings.from_dict(payload["evaluation"], backend=backend)
    evaluation = evaluate_plan(plan, settings, farm_root=farm_root)
    keys = ("samples", "recovered", "wrong_stable", "stuck")
    expected = {key: int(payload["worst_plan"][key]) for key in keys}
    expected_events = {
        key: int(value)
        for key, value in payload["worst_plan"].get("fault_events", {}).items()
    }
    observed = {
        "samples": evaluation.samples,
        "recovered": evaluation.recovered,
        "wrong_stable": evaluation.wrong_stable,
        "stuck": evaluation.stuck,
    }
    observed_events = {k: int(v) for k, v in evaluation.fault_events.items()}
    matches = observed == expected and observed_events == expected_events
    return ReplayOutcome(
        matches=matches,
        expected={**expected, **expected_events},
        observed={**observed, **observed_events},
        evaluation=evaluation,
    )
