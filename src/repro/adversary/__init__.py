"""Adversarial fault-plan search: find the worst budgeted fault plan.

The degradation sweeps measure *average-case* noise — independent
per-send coin flips.  A content-oblivious adversary is nastier: it
correlates faults (a crash plus a timed burst of drops at one anchor,
triggered by a counter threshold it can observe without reading
content).  This package searches that space:

* :mod:`repro.adversary.plans` — the discrete, budgeted plan grid over
  correlated :class:`~repro.faults.model.FaultGroup` clauses;
* :mod:`repro.adversary.search` — cross-entropy and epsilon-greedy
  optimizers minimizing the Clopper–Pearson upper bound of the
  recovery rate (measured by the farm-cacheable recovery shard seam);
* :mod:`repro.adversary.artifact` — the seed-replayable JSON artifact
  ``repro faults search`` emits and ``repro faults replay`` verifies
  bit-identically.

Everything is counter-seeded and pure in its coordinates: the same
search seed walks the same candidates, and a saved worst plan replays
to identical classification counts on every backend.
"""

from repro.adversary.artifact import (
    ARTIFACT_VERSION,
    ReplayOutcome,
    artifact_dict,
    load_artifact,
    replay_artifact,
    save_artifact,
)
from repro.adversary.plans import (
    CRASH_COST,
    TRIGGER_KINDS,
    AdversaryPlan,
    PlanSpace,
    plan_from_canonical,
)
from repro.adversary.search import (
    STRATEGIES,
    EvalSettings,
    PlanEvaluation,
    SearchResult,
    evaluate_plan,
    random_baseline,
    search_worst_plan,
)

__all__ = [
    "ARTIFACT_VERSION",
    "CRASH_COST",
    "STRATEGIES",
    "TRIGGER_KINDS",
    "AdversaryPlan",
    "EvalSettings",
    "PlanEvaluation",
    "PlanSpace",
    "ReplayOutcome",
    "SearchResult",
    "artifact_dict",
    "evaluate_plan",
    "load_artifact",
    "plan_from_canonical",
    "random_baseline",
    "replay_artifact",
    "save_artifact",
    "search_worst_plan",
]
