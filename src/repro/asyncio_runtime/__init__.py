"""Run the same algorithm nodes under real ``asyncio`` concurrency.

The discrete-event engine explores schedules deterministically; this
runtime demonstrates that nothing in the algorithms depends on it.  Every
channel becomes an ``asyncio.Queue`` drained by its own task with random
per-message delays, so deliveries interleave nondeterministically — yet
election outcomes and exact pulse counts must (and do) match the paper's
formulas, because the algorithms depend only on per-channel arrival
order.
"""

from repro.asyncio_runtime.runtime import AsyncRunResult, run_network_asyncio

__all__ = ["AsyncRunResult", "run_network_asyncio"]
