"""The asyncio execution backend.

Semantics.  Each directed channel of a :class:`~repro.simulator.network.Network`
is an ``asyncio.Queue`` with a dedicated delivery task: it takes the next
message, sleeps a random (seeded) delay, and invokes the destination
node's handler.  This realizes exactly the model's guarantees — FIFO per
channel (single consumer task per queue), arbitrary finite cross-channel
interleavings (random sleeps), no loss or duplication.

Quiescence detection.  A global in-flight counter is incremented on every
send and decremented after the corresponding handler returns.  Handlers
are synchronous (no awaits), so each delivery is atomic within the event
loop; when the counter returns to zero the network is quiescent and the
run completes.  This is a valid distributed-termination shortcut only
because the runtime is the omniscient substrate, not a node.

Use :func:`run_network_asyncio` on a freshly built network (same builders
as the discrete-event engine); node objects are reused unchanged.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.exceptions import ProtocolViolation, SimulationLimitExceeded
from repro.simulator.network import Network
from repro.simulator.node import NodeAPI, check_port


@dataclass
class AsyncRunResult:
    """Outcome of one asyncio-backend run."""

    quiescent: bool
    total_sent: int
    total_delivered: int
    outputs: List[Any]
    terminated: List[bool]
    termination_order: List[int]
    ignored_deliveries: int

    @property
    def all_terminated(self) -> bool:
        return all(self.terminated)


class _AsyncChannel:
    """One directed FIFO channel backed by an asyncio queue."""

    def __init__(self, channel_id: int, dst: tuple, defective: bool) -> None:
        self.channel_id = channel_id
        self.dst = dst
        self.defective = defective
        self.queue: "asyncio.Queue[Any]" = asyncio.Queue()


class _AsyncNodeAPI(NodeAPI):
    """Queue-backed capabilities for one node."""

    __slots__ = ("_runtime", "_node_index")

    def __init__(self, runtime: "_Runtime", node_index: int) -> None:
        self._runtime = runtime
        self._node_index = node_index

    def send(self, port: int, content: Any = None) -> None:
        self._runtime.send(self._node_index, check_port(port), content)

    def terminate(self, output: Any = None) -> None:
        self._runtime.terminate(self._node_index, output)


class _Runtime:
    """Shared mutable state of one asyncio run."""

    def __init__(self, network: Network, rng: random.Random, max_delay: float) -> None:
        self.network = network
        self.rng = rng
        self.max_delay = max_delay
        self.channels = [
            _AsyncChannel(channel.channel_id, channel.dst, channel.defective)
            for channel in network.channels
        ]
        self.in_flight = 0
        self.total_sent = 0
        self.total_delivered = 0
        self.ignored_deliveries = 0
        self.termination_order: List[int] = []
        self.apis = [
            _AsyncNodeAPI(self, index) for index in range(len(network.nodes))
        ]
        self.quiescent_event = asyncio.Event()

    def send(self, node_index: int, port: int, content: Any) -> None:
        node = self.network.nodes[node_index]
        if node.terminated:
            raise ProtocolViolation(
                f"node {node_index} attempted to send after terminating"
            )
        channel_id = self.network.out_channel[(node_index, port)]
        channel = self.channels[channel_id]
        payload = None if channel.defective else content
        self.in_flight += 1
        self.total_sent += 1
        channel.queue.put_nowait(payload)

    def terminate(self, node_index: int, output: Any) -> None:
        self.network.nodes[node_index]._mark_terminated(output)
        self.termination_order.append(node_index)

    def deliver(self, channel: _AsyncChannel, content: Any) -> None:
        receiver_index, receiver_port = channel.dst
        receiver = self.network.nodes[receiver_index]
        self.total_delivered += 1
        if receiver.terminated:
            self.ignored_deliveries += 1
        else:
            receiver.on_message(self.apis[receiver_index], receiver_port, content)
        self.in_flight -= 1
        if self.in_flight == 0:
            self.quiescent_event.set()


async def _channel_worker(runtime: _Runtime, channel: _AsyncChannel) -> None:
    while True:
        content = await channel.queue.get()
        if runtime.max_delay > 0:
            await asyncio.sleep(runtime.rng.uniform(0, runtime.max_delay))
        runtime.deliver(channel, content)


async def _run(network: Network, seed: int, max_delay: float, timeout: float) -> AsyncRunResult:
    rng = random.Random(seed)
    runtime = _Runtime(network, rng, max_delay)

    for index, node in enumerate(network.nodes):
        node.on_init(runtime.apis[index])

    if runtime.in_flight > 0:
        workers = [
            asyncio.create_task(_channel_worker(runtime, channel))
            for channel in runtime.channels
        ]
        try:
            await asyncio.wait_for(runtime.quiescent_event.wait(), timeout=timeout)
        except asyncio.TimeoutError:
            raise SimulationLimitExceeded(
                f"asyncio run did not reach quiescence within {timeout}s "
                f"({runtime.in_flight} messages in flight)",
                steps=runtime.total_delivered,
            ) from None
        finally:
            for worker in workers:
                worker.cancel()

    return AsyncRunResult(
        quiescent=True,
        total_sent=runtime.total_sent,
        total_delivered=runtime.total_delivered,
        outputs=[node.output for node in network.nodes],
        terminated=[node.terminated for node in network.nodes],
        termination_order=list(runtime.termination_order),
        ignored_deliveries=runtime.ignored_deliveries,
    )


def run_network_asyncio(
    network: Network,
    seed: int = 0,
    max_delay: float = 0.001,
    timeout: float = 60.0,
) -> AsyncRunResult:
    """Execute a network to quiescence under asyncio; synchronous wrapper.

    Args:
        network: Freshly built network (nodes must be unused).
        seed: Seed for the per-message random delays.
        max_delay: Upper bound (seconds) of each message's random delay;
            0 disables sleeping (fast, still nondeterministic ordering
            only through task scheduling fairness).
        timeout: Wall-clock bound before declaring a livelock.
    """
    return asyncio.run(_run(network, seed, max_delay, timeout))
