"""First-class topologies: the one place channel wiring happens.

Every layer of the reproduction used to hardwire the ring builder
convention; this package lifts that assumption into data.  A
:class:`Topology` is a pure description — node count, directed channel
table, orientation metadata — and :meth:`Topology.wire` is the **only**
channel-wiring loop in the source tree (a CI grep gate enforces it).
The ring builders in :mod:`repro.simulator.ring` and the general-graph
election in :mod:`repro.core.ear_election` are both thin clients.

Byte-identity contract.  :func:`ring_convention` reproduces the historic
ring builders' channel numbering *exactly* — for ring edge ``i`` joining
positions ``i`` and ``i+1 (mod n)``, channel ``2i`` is the CW channel
``i -> i+1`` and channel ``2i+1`` the CCW channel back, with endpoints on
each node's CW/CCW ports as determined by its flip bit.  Every existing
fingerprint, packed visited key, and farm cache key depends on that
ordering, so it is pinned by tests (``tests/test_topology.py``) and must
never change.

General graphs get the deterministic :func:`graph_topology` convention:
node ``v``'s ports enumerate its sorted neighbor list, and edge ``k`` of
the sorted edge list yields channels ``2k`` (``a -> b``) and ``2k+1``
(``b -> a``).
"""

from repro.topology.core import (
    ChannelSpec,
    Topology,
    graph_topology,
    oriented_ring,
    ring_convention,
)

__all__ = [
    "ChannelSpec",
    "Topology",
    "graph_topology",
    "oriented_ring",
    "ring_convention",
]
