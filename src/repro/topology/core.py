"""The :class:`Topology` abstraction and its builders.

A topology is immutable data: it can be hashed into farm cache keys,
compared for the ring byte-identity pins, and wired into a fresh
:class:`~repro.simulator.network.Network` any number of times.  See the
package docstring for the two numbering conventions (ring and general
graph) and why they are load-bearing.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.simulator.network import Network
from repro.simulator.node import Node, PORT_ONE, PORT_ZERO

#: ``Topology.kind`` values.  The two ring kinds promise the historic
#: channel numbering; ``general`` promises the sorted-adjacency one.
RING_KINDS = ("oriented-ring", "nonoriented-ring")
GENERAL_KIND = "general"


@dataclass(frozen=True)
class ChannelSpec:
    """One directed channel: ``(src_node, src_port) -> (dst_node, dst_port)``.

    The channel id is the spec's position in ``Topology.channels`` — the
    table order *is* the numbering, which is why builders construct the
    tuple in one deterministic pass.
    """

    src_node: int
    src_port: int
    dst_node: int
    dst_port: int

    @property
    def src(self) -> Tuple[int, int]:
        return (self.src_node, self.src_port)

    @property
    def dst(self) -> Tuple[int, int]:
        return (self.dst_node, self.dst_port)


@dataclass(frozen=True)
class Topology:
    """Ports per node, directed channel table, orientation metadata.

    Attributes:
        n: Number of nodes.
        channels: The directed channel table; position = channel id.
        kind: ``"oriented-ring"``, ``"nonoriented-ring"``, or
            ``"general"``.
        flips: Ring kinds only — per-node port-flip bits (the adversarial
            orientation input).  None for general topologies.
        edges: General kind only — the sorted undirected edge list the
            table was derived from.  None for rings.
    """

    n: int
    channels: Tuple[ChannelSpec, ...]
    kind: str
    flips: Optional[Tuple[bool, ...]] = None
    edges: Optional[Tuple[Tuple[int, int], ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in RING_KINDS + (GENERAL_KIND,):
            raise ConfigurationError(f"unknown topology kind {self.kind!r}")
        if self.n < 1:
            raise ConfigurationError("a topology needs at least one node")

    # -- structure queries --------------------------------------------------

    @property
    def is_ring(self) -> bool:
        """Does this topology promise the ring channel-numbering convention?"""
        return self.kind in RING_KINDS

    @cached_property
    def port_counts(self) -> Tuple[int, ...]:
        """Ports per node (max referenced port + 1; rings are all 2)."""
        highest = [-1] * self.n
        for spec in self.channels:
            highest[spec.src_node] = max(highest[spec.src_node], spec.src_port)
            highest[spec.dst_node] = max(highest[spec.dst_node], spec.dst_port)
        return tuple(h + 1 for h in highest)

    @cached_property
    def port_offsets(self) -> Tuple[int, ...]:
        """CSR-style prefix offsets over :attr:`port_counts`.

        ``port_offsets[v] + p`` is the flat slot of ``(v, p)`` in any
        variable-degree column of length ``port_offsets[n]`` — the layout
        the fleet engine's per-port readouts use off-ring.
        """
        offsets = [0] * (self.n + 1)
        for v, count in enumerate(self.port_counts):
            offsets[v + 1] = offsets[v] + count
        return tuple(offsets)

    @property
    def total_ports(self) -> int:
        """Length of a flat per-port column (CSR total)."""
        return self.port_offsets[self.n]

    def num_ports(self, node: int) -> int:
        """Number of ports of ``node``."""
        return self.port_counts[node]

    def port_slot(self, node: int, port: int) -> int:
        """Flat CSR slot of ``(node, port)``."""
        if not 0 <= port < self.port_counts[node]:
            raise ConfigurationError(
                f"node {node} has {self.port_counts[node]} ports, no port {port}"
            )
        return self.port_offsets[node] + port

    # -- wiring -------------------------------------------------------------

    def wire(self, nodes: Sequence[Node], defective: bool = True) -> Network:
        """Instantiate the channel table as a live network.

        This is the only channel-wiring loop in the package (grep-gated
        in CI): every builder and every runtime goes through it, so the
        table order — hence every channel id — is decided exactly once.
        """
        if len(nodes) != self.n:
            raise ConfigurationError(
                f"topology has {self.n} nodes, got {len(nodes)} node objects"
            )
        network = Network(nodes=list(nodes))
        for spec in self.channels:
            network.add_channel(src=spec.src, dst=spec.dst, defective=defective)
        network.validate()
        return network

    # -- identity -----------------------------------------------------------

    def canonical_descriptor(self) -> Dict[str, Any]:
        """A canonical-JSON-safe identity for farm cache keys.

        Rings canonicalize to ``(kind, n, flips)``; general topologies to
        ``(kind, n, edges)``.  The channel table is derived data under
        the conventions above, so it stays out of the descriptor — two
        spellings of the same topology must hash alike.
        """
        body: Dict[str, Any] = {"kind": self.kind, "n": self.n}
        if self.is_ring:
            body["flips"] = [bool(f) for f in self.flips or ()]
        else:
            body["edges"] = [[a, b] for a, b in (self.edges or ())]
        return body


# ---------------------------------------------------------------------------
# Builders.
# ---------------------------------------------------------------------------


def ring_convention(flips: Sequence[bool]) -> Topology:
    """The historic ring channel table for the given per-node flips.

    For each ring edge ``i -- i+1 (mod n)``: channel ``2i`` is the CW
    channel (sent from ``i``'s CW port, arriving at ``i+1``'s CCW port),
    channel ``2i+1`` the CCW channel back.  Node ``v``'s CW port is
    ``Port_1`` unless ``flips[v]`` — byte-identical to the pre-topology
    builders, pinned by ``tests/test_topology.py``.
    """
    n = len(flips)
    if n < 1:
        raise ConfigurationError("a ring needs at least one node")
    flips_t = tuple(bool(f) for f in flips)

    def cw_port(v: int) -> int:
        return PORT_ZERO if flips_t[v] else PORT_ONE

    def ccw_port(v: int) -> int:
        return PORT_ONE if flips_t[v] else PORT_ZERO

    specs: List[ChannelSpec] = []
    for i in range(n):
        j = (i + 1) % n
        specs.append(ChannelSpec(i, cw_port(i), j, ccw_port(j)))
        specs.append(ChannelSpec(j, ccw_port(j), i, cw_port(i)))
    kind = "oriented-ring" if not any(flips_t) else "nonoriented-ring"
    return Topology(n=n, channels=tuple(specs), kind=kind, flips=flips_t)


def oriented_ring(n: int) -> Topology:
    """The oriented ring on ``n`` nodes (every ``Port_1`` clockwise)."""
    return ring_convention([False] * n)


def graph_topology(graph: Any) -> Topology:
    """Deterministic channel table for a simple undirected graph.

    Port convention: node ``v``'s port towards neighbor ``u`` is ``u``'s
    index in ``v``'s sorted neighbor list (so every node of degree ``d``
    uses ports ``0..d-1``).  Channel convention: edge ``k`` of the sorted
    edge list yields channel ``2k`` (``a -> b``, ``a < b``) and channel
    ``2k+1`` (``b -> a``).

    Accepts any object with ``n`` and an ``edges`` collection of vertex
    pairs (:class:`repro.graphs.connectivity.Graph` in practice; the
    import is kept out of this module so the topology layer stays below
    the graphs layer).
    """
    n = int(graph.n)
    edges = sorted(
        (a, b) if a <= b else (b, a) for a, b in graph.edges
    )
    if len(set(edges)) != len(edges):
        raise ConfigurationError("graph_topology needs a simple graph")
    for a, b in edges:
        if a == b:
            raise ConfigurationError(f"self-loop ({a},{b}) cannot be wired")
        if not (0 <= a < n and 0 <= b < n):
            raise ConfigurationError(f"edge ({a},{b}) out of range for n={n}")
    neighbors: List[List[int]] = [[] for _ in range(n)]
    for a, b in edges:
        neighbors[a].append(b)
        neighbors[b].append(a)
    port_of = [
        {u: p for p, u in enumerate(sorted(adj))} for adj in neighbors
    ]
    specs: List[ChannelSpec] = []
    for a, b in edges:
        specs.append(ChannelSpec(a, port_of[a][b], b, port_of[b][a]))
        specs.append(ChannelSpec(b, port_of[b][a], a, port_of[a][b]))
    return Topology(
        n=n, channels=tuple(specs), kind=GENERAL_KIND, edges=tuple(edges)
    )
