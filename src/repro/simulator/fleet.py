"""Vectorized fleet engine: lockstep struct-of-arrays simulation.

The paper's large-scale experiments — average-case pulse statistics over
random ID placements (Theorems 1–2) and w.h.p. validation of the
randomized sampler (Theorem 3 / Lemma 18) — run thousands of *independent*
ring executions.  Because pulses are contentless, the entire per-instance
state is a handful of small integers per node: receive counters
:math:`\\rho`, per-channel in-flight counts, and a few phase flags.  This
module batches ``B`` independent instances into struct-of-arrays (SoA)
state — ``rho[B, n]``, ``flight[B, n]``, ``terminated[B, n]`` — and
advances the whole fleet in lockstep *rounds*, so one scheduler step is a
few array operations across the fleet instead of ``B`` Python dispatches.

Legality (the lockstep-equivalence argument, docs/PERFORMANCE.md).  A
fleet round delivers, per instance, the entire round-start content of a
set of channels; sends produced during the round enter the channels for
the next round.  Within one instance this is a legal schedule of the
asynchronous adversary: order the delivered channels arbitrarily and
expand each into consecutive per-pulse deliveries — exactly the batched
engine's adversary-equivalence argument, applied per instance.  The fleet
therefore *is* one reference execution per instance, under a particular
adversary; every schedule-invariant claim (elected leader, final
counters, exact pulse counts) transfers verbatim, and the differential
tests check this bit-for-bit against the batched and unbatched engines.

Two fleet schedulers are provided:

* ``"lockstep"`` — every round delivers all round-start in-flight pulses
  of the phase-eligible direction(s), plus a **lap-skip** fast-forward:
  when ``k`` pulses circulate in one direction and no counter can cross a
  branch-relevant threshold (absorption ID, termination trigger, exit
  comparison) within ``L`` full laps, the laps collapse to closed-form
  counter arithmetic (``rho += L*k`` everywhere, ``L*k*n`` relays
  counted, in-flight population unchanged — after a full lap every pulse
  is back on its starting channel).  This bounds rounds by the number of
  threshold *crossings* (O(n) per instance) instead of ``IDmax``.
* ``"seeded"`` — per-round, per-instance pseudo-random channel subsets
  drawn from a counter-based splitmix-style hash of
  ``(seed, instance, round, channel)``: reproducible per-instance RNG
  streams with no sequential RNG state, so the NumPy and pure-Python
  backends produce bit-identical schedules.

Backends.  ``backend="numpy"`` runs the SoA kernels on NumPy arrays;
``backend="python"`` runs the same per-instance round/phase/skip logic
with scalar integers (instances are independent, so lockstep across the
fleet and per-instance iteration produce identical trajectories);
``backend="auto"`` picks NumPy when importable.  NumPy is an optional
``[perf]`` extra — every result is defined by the pure-Python semantics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, SimulationLimitExceeded

try:  # NumPy is an optional accelerator ([perf] extra), never a requirement.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

HAVE_NUMPY = _np is not None

#: Safety bound on fleet rounds; with lap-skips a run needs O(n) rounds
#: per instance, so hitting this means a livelocked kernel, not a big ID.
DEFAULT_MAX_ROUNDS = 1_000_000

_MASK64 = (1 << 64) - 1
# Odd 64-bit constants for the counter-based schedule hash (golden-ratio
# and murmur3-finalizer family); any fixed odd constants would do.
_KEY_INSTANCE = 0x9E3779B97F4A7C15
_KEY_ROUND = 0xC2B2AE3D27D4EB4F
_KEY_CHANNEL = 0xD6E8FEB86659FD93
_MIX_A = 0xFF51AFD7ED558CCD
_MIX_B = 0xC4CEB9FE1A85EC53


def _mix64(x: int) -> int:
    """Murmur3 finalizer: a bijective 64-bit mix, pure-Python reference."""
    x &= _MASK64
    x = ((x ^ (x >> 33)) * _MIX_A) & _MASK64
    x = ((x ^ (x >> 33)) * _MIX_B) & _MASK64
    return x ^ (x >> 33)


def schedule_bit(seed: int, instance: int, round_index: int, channel: int) -> int:
    """The seeded fleet scheduler's delivery bit for one channel.

    A pure function of its arguments (counter-based, no sequential RNG
    state), so any backend — NumPy, pure Python, a future GPU port —
    reproduces the exact per-instance schedule stream.
    """
    key = (
        _mix64(seed)
        + instance * _KEY_INSTANCE
        + round_index * _KEY_ROUND
        + channel * _KEY_CHANNEL
    ) & _MASK64
    return (_mix64(key) >> 32) & 1


def _np_schedule_bits(seed_mixed: int, n_instances: int, round_index: int, channels: int):
    """Vectorized :func:`schedule_bit`: bool array ``[B, channels]``."""
    u64 = _np.uint64
    with _np.errstate(over="ignore"):
        b = _np.arange(n_instances, dtype=u64)[:, None]
        c = _np.arange(channels, dtype=u64)[None, :]
        x = (
            u64(seed_mixed)
            + b * u64(_KEY_INSTANCE)
            + u64(round_index % (1 << 64)) * u64(_KEY_ROUND)
            + c * u64(_KEY_CHANNEL)
        )
        x = (x ^ (x >> u64(33))) * u64(_MIX_A)
        x = (x ^ (x >> u64(33))) * u64(_MIX_B)
        x = x ^ (x >> u64(33))
    return ((x >> u64(32)) & u64(1)).astype(bool)


def _resolve_backend(backend: str) -> str:
    if backend == "auto":
        return "numpy" if HAVE_NUMPY else "python"
    if backend == "numpy":
        if not HAVE_NUMPY:
            raise ConfigurationError(
                "backend='numpy' requested but numpy is not importable; "
                "install the [perf] extra or use backend='auto'"
            )
        return "numpy"
    if backend == "python":
        return "python"
    raise ConfigurationError(
        f"unknown fleet backend {backend!r}; choose 'auto', 'numpy', or 'python'"
    )


def _check_scheduler(scheduler: str) -> None:
    if scheduler not in ("lockstep", "seeded"):
        raise ConfigurationError(
            f"unknown fleet scheduler {scheduler!r}; choose 'lockstep' or 'seeded'"
        )


def _check_fleet(id_lists: Sequence[Sequence[int]], unique: bool) -> Tuple[int, int]:
    from repro.core.common import validate_positive_ids, validate_unique_ids

    if not id_lists:
        raise ConfigurationError("a fleet needs at least one instance")
    n = len(id_lists[0])
    for ids in id_lists:
        if len(ids) != n:
            raise ConfigurationError(
                "all fleet instances must have the same ring size; "
                f"got sizes {sorted({len(i) for i in id_lists})} "
                "(shard ragged sweeps by n)"
            )
        if unique:
            validate_unique_ids(ids)
        else:
            validate_positive_ids(ids)
    return len(id_lists), n


def _limit(rounds: int, max_rounds: int) -> None:
    if rounds > max_rounds:
        raise SimulationLimitExceeded(
            f"fleet exceeded {max_rounds} rounds before quiescence", steps=rounds
        )


@dataclass
class FleetResult:
    """Final snapshot of a fleet run — one entry per instance throughout.

    ``states`` holds final :class:`~repro.core.common.LeaderState` values
    (for Algorithm 2 these are the terminal *outputs*).  ``rho_cw`` /
    ``rho_ccw`` are directional receive counters; ``rho_ports`` is the
    port-indexed view Algorithm 3 exposes.  ``rounds`` / ``lap_skips``
    are whole-fleet diagnostics (they depend on the batching, unlike the
    per-instance outcomes, which are schedule-invariant).
    """

    algorithm: str
    backend: str
    scheduler: str
    ids: List[List[int]]
    leaders: List[List[int]]
    states: List[List[Any]]
    total_pulses: List[int]
    rho_cw: List[List[int]]
    rho_ccw: Optional[List[List[int]]] = None
    terminated: Optional[List[List[bool]]] = None
    cw_port_labels: Optional[List[List[Optional[int]]]] = None
    orientation_consistent: Optional[List[bool]] = None
    flips: Optional[List[List[bool]]] = None
    rounds: int = 0
    lap_skips: int = 0
    ignored_deliveries: int = 0

    @property
    def size(self) -> int:
        """Number of instances in the fleet."""
        return len(self.ids)

    @property
    def expected_leaders(self) -> List[int]:
        """Per instance, the index of the maximal-ID node."""
        return [
            max(range(len(ids)), key=lambda v: ids[v]) for ids in self.ids
        ]


# ---------------------------------------------------------------------------
# Algorithm 1 (warmup) — one directional instance; also Algorithm 3's halves.
#
# The round body needs no chunk loop: a run of `count` pulses at a node
# collapses to `relays = count - [start < gov <= start + count]` (the
# WarmupNode.on_pulses closed form), evaluated once per node per round.
# ---------------------------------------------------------------------------


def _np_warmup_direction(gov, shift, scheduler, seed, chan_offset, max_rounds):
    """Advance a fleet of directional Algorithm-1 instances to quiescence.

    Args:
        gov: int64 ``[B, n]`` governing thresholds (real IDs for
            Algorithm 1, per-direction virtual IDs for Algorithm 3).
        shift: +1 when sends from node ``v`` fly toward ``v+1`` (the CW
            travel direction), -1 for CCW.
        chan_offset: Base channel index for the seeded schedule hash (the
            two directions of Algorithm 3 draw from disjoint streams).

    Returns:
        ``(rho, total_sent, rounds, lap_skips)`` as NumPy arrays/ints.
    """
    B, n = gov.shape
    int_max = _np.iinfo(_np.int64).max
    rho = _np.zeros((B, n), _np.int64)
    flight = _np.ones((B, n), _np.int64)  # on_init: one pulse toward each node
    total = _np.full(B, n, _np.int64)
    seed_mixed = _mix64(seed)
    rounds = 0
    skips = 0
    while True:
        k = flight.sum(axis=1)
        active = k > 0
        if not active.any():
            break
        rounds += 1
        _limit(rounds, max_rounds)
        if scheduler == "lockstep":
            # Lap-skip: L full laps are uniform as long as no node's rho
            # crosses its threshold; whenever k > 0 some node is still
            # below threshold, so the margin minimum is finite.
            below = rho < gov
            margin = _np.where(below, gov - rho - 1, int_max)
            laps = _np.where(active, margin.min(axis=1) // _np.maximum(k, 1), 0)
            do = laps >= 1
            if do.any():
                skips += 1
                rho += (laps * k)[:, None] * do[:, None]
                total += do * (laps * k * n)
            delivered = flight
            flight = _np.zeros_like(flight)
        else:
            mask = _np_schedule_bits(seed_mixed, B, rounds, chan_offset + n)[
                :, chan_offset:
            ]
            delivered = flight * mask
            # Progress guarantee: an active instance whose drawn subset
            # holds no pulse delivers everything this round instead.
            stuck = active & (delivered.sum(axis=1) == 0)
            delivered = _np.where(stuck[:, None], flight, delivered)
            flight = flight - delivered
        start = rho
        rho = rho + delivered
        absorbed = (start < gov) & (gov <= rho) & (delivered > 0)
        relays = delivered - absorbed
        flight += _np.roll(relays, shift, axis=1)
        total += relays.sum(axis=1)
    return rho, total, rounds, skips


def _py_warmup_direction_one(gov, shift, scheduler, seed, chan_offset, max_rounds, instance):
    """Scalar twin of :func:`_np_warmup_direction` for one instance."""
    n = len(gov)
    rho = [0] * n
    flight = [1] * n
    total = n
    seed_mixed = _mix64(seed)
    rounds = 0
    skips = 0
    while True:
        k = sum(flight)
        if k == 0:
            break
        rounds += 1
        _limit(rounds, max_rounds)
        if scheduler == "lockstep":
            margin = min(
                (gov[v] - rho[v] - 1) for v in range(n) if rho[v] < gov[v]
            )
            laps = margin // k
            if laps >= 1:
                skips += 1
                add = laps * k
                for v in range(n):
                    rho[v] += add
                total += add * n
            delivered = flight
            flight = [0] * n
        else:
            delivered = [
                flight[v]
                if schedule_bit(seed, instance, rounds, chan_offset + v)
                else 0
                for v in range(n)
            ]
            if sum(delivered) == 0:
                delivered = flight
                flight = [0] * n
            else:
                flight = [flight[v] - delivered[v] for v in range(n)]
        relays = [0] * n
        for v in range(n):
            count = delivered[v]
            if not count:
                continue
            start = rho[v]
            rho[v] += count
            relays[v] = count - (1 if start < gov[v] <= rho[v] else 0)
        for v in range(n):
            if relays[v]:
                flight[(v + shift) % n] += relays[v]
                total += relays[v]
    return rho, total, rounds, skips


def run_warmup_fleet(
    id_lists: Sequence[Sequence[int]],
    backend: str = "auto",
    scheduler: str = "lockstep",
    seed: int = 0,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> FleetResult:
    """Run a fleet of independent Algorithm 1 executions.

    Args:
        id_lists: One clockwise ID assignment per instance; all instances
            must share the same ring size (shard ragged sweeps by ``n``).
            Duplicates are allowed (Lemma 16), as in :func:`run_warmup`.
        backend: ``"auto"`` (NumPy when available), ``"numpy"``, or
            ``"python"`` — identical results by construction.
        scheduler: ``"lockstep"`` (all-deliver rounds + lap-skip) or
            ``"seeded"`` (per-instance pseudo-random channel subsets).
        seed: Stream seed for the seeded scheduler.
        max_rounds: Safety bound on fleet rounds.
    """
    from repro.core.common import LeaderState

    _check_scheduler(scheduler)
    resolved = _resolve_backend(backend)
    _check_fleet(id_lists, unique=False)
    if resolved == "numpy":
        gov = _np.asarray(id_lists, dtype=_np.int64)
        rho, total, rounds, skips = _np_warmup_direction(
            gov, +1, scheduler, seed, 0, max_rounds
        )
        rho_rows = rho.tolist()
        totals = total.tolist()
    else:
        rho_rows, totals = [], []
        rounds = skips = 0
        for b, ids in enumerate(id_lists):
            rho_b, total_b, rounds_b, skips_b = _py_warmup_direction_one(
                list(ids), +1, scheduler, seed, 0, max_rounds, b
            )
            rho_rows.append(rho_b)
            totals.append(total_b)
            rounds = max(rounds, rounds_b)
            skips += skips_b
    states = [
        [
            LeaderState.LEADER if rho_v == node_id else LeaderState.NON_LEADER
            for rho_v, node_id in zip(rho_b, ids)
        ]
        for rho_b, ids in zip(rho_rows, id_lists)
    ]
    return FleetResult(
        algorithm="warmup",
        backend=resolved,
        scheduler=scheduler,
        ids=[list(ids) for ids in id_lists],
        leaders=[
            [v for v, s in enumerate(row) if s is LeaderState.LEADER]
            for row in states
        ],
        states=states,
        total_pulses=totals,
        rho_cw=rho_rows,
        rounds=rounds,
        lap_skips=skips,
    )


# ---------------------------------------------------------------------------
# Algorithm 2 (terminating) — CW warmup + lagged CCW instance + termination.
#
# Lockstep schedule: each instance delivers only CW pulses until its CW
# instance completes (CCW pulses stall in their channels — a legal
# adversary), then delivers CCW.  This keeps the lap-skip applicable in
# both halves: during the CW half the stalled CCW population is constant,
# and during the CCW half every gate is open (k_cw == 0 means all n CW
# absorptions happened, so rho_cw >= ID everywhere) and the exit
# threshold rho_cw is static.  The CCW skip margin additionally keeps
# rho_ccw <= rho_cw so neither the line-14 trigger nor the line-18 exit
# can fire mid-skip; skips are disabled once any term pulse is sent.
# ---------------------------------------------------------------------------


def _np_terminating(ids, scheduler, seed, max_rounds):
    B, n = ids.shape
    int_max = _np.iinfo(_np.int64).max
    rho_cw = _np.zeros((B, n), _np.int64)
    rho_ccw = _np.zeros((B, n), _np.int64)
    pend_cw = _np.zeros((B, n), _np.int64)
    pend_ccw = _np.zeros((B, n), _np.int64)
    term_sent = _np.zeros((B, n), bool)
    terminated = _np.zeros((B, n), bool)
    ccw_started = _np.zeros((B, n), bool)
    out_leader = _np.zeros((B, n), bool)
    cw_flight = _np.ones((B, n), _np.int64)  # on_init: one CW pulse toward each
    ccw_flight = _np.zeros((B, n), _np.int64)
    total = _np.full(B, n, _np.int64)
    sends_cw = _np.zeros((B, n), _np.int64)
    sends_ccw = _np.zeros((B, n), _np.int64)
    ignored = 0
    seed_mixed = _mix64(seed)

    def drain():
        nonlocal rho_cw, rho_ccw, pend_cw, pend_ccw, sends_cw, sends_ccw
        nonlocal term_sent, terminated, ccw_started, out_leader
        while True:
            live = ~terminated
            # CW chunk (listing lines 3-8), boundary at rho_cw -> ID.
            has_cw = live & (pend_cw > 0)
            below = rho_cw < ids
            take = _np.where(
                has_cw,
                _np.where(below, _np.minimum(pend_cw, ids - rho_cw), pend_cw),
                0,
            )
            start = rho_cw
            rho_cw = rho_cw + take
            absorbed = has_cw & (start < ids) & (ids <= rho_cw)
            sends_cw += take - absorbed
            pend_cw -= take
            progressed = has_cw
            # CCW chunk (lines 9-13), gated on rho_cw >= ID; boundaries at
            # rho_ccw -> ID and rho_ccw -> rho_cw + 1.
            gate = live & (rho_cw >= ids)
            start_now = gate & ~ccw_started
            sends_ccw += start_now  # line 10: CCW instance's initial pulse
            ccw_started |= start_now
            has_ccw = gate & (pend_ccw > 0)
            take2 = _np.where(has_ccw, pend_ccw, 0)
            take2 = _np.where(
                has_ccw & (rho_ccw < ids),
                _np.minimum(take2, ids - rho_ccw),
                take2,
            )
            take2 = _np.where(
                has_ccw & (rho_ccw <= rho_cw),
                _np.minimum(take2, rho_cw + 1 - rho_ccw),
                take2,
            )
            start2 = rho_ccw
            rho_ccw = rho_ccw + take2
            absorbed2 = has_ccw & (start2 < ids) & (ids <= rho_ccw)
            sends_ccw += _np.where(term_sent, 0, take2 - absorbed2)
            pend_ccw -= take2
            progressed |= has_ccw
            # Lines 14-15: the unique leader event emits the term pulse.
            trigger = live & ~term_sent & (rho_cw == ids) & (rho_ccw == ids)
            term_sent |= trigger
            sends_ccw += trigger
            # Line 18: exit on rho_ccw > rho_cw.
            exits = live & (rho_ccw > rho_cw)
            terminated |= exits
            out_leader |= exits & (rho_cw == ids)
            if not progressed.any():
                return

    rounds = 0
    skips = 0
    while True:
        k_cw = cw_flight.sum(axis=1)
        k_ccw = ccw_flight.sum(axis=1)
        active = (k_cw + k_ccw) > 0
        if not active.any():
            break
        rounds += 1
        _limit(rounds, max_rounds)
        if scheduler == "lockstep":
            skippable = ~term_sent.any(axis=1) & ~terminated.any(axis=1)
            phase_cw = k_cw > 0
            phase_ccw = ~phase_cw & (k_ccw > 0)
            cand = phase_cw & skippable
            if cand.any():
                below = rho_cw < ids
                margin = _np.where(below, ids - rho_cw - 1, int_max)
                laps = _np.where(cand, margin.min(axis=1) // _np.maximum(k_cw, 1), 0)
                do = laps >= 1
                if do.any():
                    skips += 1
                    rho_cw += (laps * k_cw)[:, None] * do[:, None]
                    total += do * (laps * k_cw * n)
            cand = phase_ccw & skippable
            if cand.any():
                below = rho_ccw < ids
                margin = _np.minimum(
                    _np.where(below, ids - rho_ccw - 1, int_max),
                    rho_cw - rho_ccw,
                )
                laps = _np.where(cand, margin.min(axis=1) // _np.maximum(k_ccw, 1), 0)
                do = laps >= 1
                if do.any():
                    skips += 1
                    rho_ccw += (laps * k_ccw)[:, None] * do[:, None]
                    total += do * (laps * k_ccw * n)
            deliver_cw = cw_flight
            cw_flight = _np.zeros_like(cw_flight)
            deliver_ccw = ccw_flight * phase_ccw[:, None]
            ccw_flight = ccw_flight * ~phase_ccw[:, None]
        else:
            mask = _np_schedule_bits(seed_mixed, B, rounds, 2 * n)
            deliver_cw = cw_flight * mask[:, :n]
            deliver_ccw = ccw_flight * mask[:, n:]
            stuck = active & ((deliver_cw.sum(axis=1) + deliver_ccw.sum(axis=1)) == 0)
            deliver_cw = _np.where(stuck[:, None], cw_flight, deliver_cw)
            deliver_ccw = _np.where(stuck[:, None], ccw_flight, deliver_ccw)
            cw_flight = cw_flight - deliver_cw
            ccw_flight = ccw_flight - deliver_ccw
        # Deliveries to terminated nodes are ignored (the model: a
        # terminated node reacts to nothing); Algorithm 2's quiescent
        # termination guarantees this count stays zero.
        dropped = (deliver_cw + deliver_ccw) * terminated
        if dropped.any():
            ignored += int(dropped.sum())
            deliver_cw = deliver_cw * ~terminated
            deliver_ccw = deliver_ccw * ~terminated
        pend_cw += deliver_cw
        pend_ccw += deliver_ccw
        drain()
        cw_flight += _np.roll(sends_cw, 1, axis=1)
        ccw_flight += _np.roll(sends_ccw, -1, axis=1)
        total += sends_cw.sum(axis=1) + sends_ccw.sum(axis=1)
        sends_cw[:] = 0
        sends_ccw[:] = 0
    ignored += int((pend_cw + pend_ccw)[terminated].sum())
    return (
        rho_cw,
        rho_ccw,
        out_leader,
        terminated,
        total,
        rounds,
        skips,
        ignored,
    )


def _py_terminating_one(ids, scheduler, seed, max_rounds, instance):
    """Scalar twin of :func:`_np_terminating` for one instance."""
    n = len(ids)
    rho_cw = [0] * n
    rho_ccw = [0] * n
    pend_cw = [0] * n
    pend_ccw = [0] * n
    term_sent = [False] * n
    terminated = [False] * n
    ccw_started = [False] * n
    out_leader = [False] * n
    cw_flight = [1] * n
    ccw_flight = [0] * n
    total = n
    sends_cw = [0] * n
    sends_ccw = [0] * n
    ignored = 0

    def drain_node(v):
        """Chunked listing loop for node v; pend/rho/send buffers only."""
        node_id = ids[v]
        while not terminated[v]:
            progressed = False
            if pend_cw[v]:
                take = pend_cw[v]
                if rho_cw[v] < node_id:
                    take = min(take, node_id - rho_cw[v])
                pend_cw[v] -= take
                start = rho_cw[v]
                rho_cw[v] += take
                sends_cw[v] += take - (1 if start < node_id <= rho_cw[v] else 0)
                progressed = True
            if rho_cw[v] >= node_id:
                if not ccw_started[v]:
                    ccw_started[v] = True
                    sends_ccw[v] += 1
                if pend_ccw[v]:
                    take = pend_ccw[v]
                    if rho_ccw[v] < node_id:
                        take = min(take, node_id - rho_ccw[v])
                    if rho_ccw[v] <= rho_cw[v]:
                        take = min(take, rho_cw[v] + 1 - rho_ccw[v])
                    pend_ccw[v] -= take
                    start = rho_ccw[v]
                    rho_ccw[v] += take
                    if not term_sent[v]:
                        sends_ccw[v] += take - (
                            1 if start < node_id <= rho_ccw[v] else 0
                        )
                    progressed = True
            if not term_sent[v] and rho_cw[v] == node_id == rho_ccw[v]:
                term_sent[v] = True
                sends_ccw[v] += 1
            if rho_ccw[v] > rho_cw[v]:
                terminated[v] = True
                out_leader[v] = rho_cw[v] == node_id
                return
            if not progressed:
                return

    rounds = 0
    skips = 0
    while True:
        k_cw = sum(cw_flight)
        k_ccw = sum(ccw_flight)
        if k_cw + k_ccw == 0:
            break
        rounds += 1
        _limit(rounds, max_rounds)
        if scheduler == "lockstep":
            skippable = not any(term_sent) and not any(terminated)
            if skippable and k_cw > 0:
                margin = min(
                    ids[v] - rho_cw[v] - 1 for v in range(n) if rho_cw[v] < ids[v]
                )
                laps = margin // k_cw
                if laps >= 1:
                    skips += 1
                    add = laps * k_cw
                    for v in range(n):
                        rho_cw[v] += add
                    total += add * n
            elif skippable and k_ccw > 0:
                margin = min(
                    min(
                        ids[v] - rho_ccw[v] - 1
                        if rho_ccw[v] < ids[v]
                        else rho_cw[v] - rho_ccw[v],
                        rho_cw[v] - rho_ccw[v],
                    )
                    for v in range(n)
                )
                laps = margin // k_ccw
                if laps >= 1:
                    skips += 1
                    add = laps * k_ccw
                    for v in range(n):
                        rho_ccw[v] += add
                    total += add * n
            deliver_cw = cw_flight
            cw_flight = [0] * n
            if k_cw > 0:
                deliver_ccw = [0] * n
            else:
                deliver_ccw = ccw_flight
                ccw_flight = [0] * n
        else:
            deliver_cw = [
                cw_flight[v] if schedule_bit(seed, instance, rounds, v) else 0
                for v in range(n)
            ]
            deliver_ccw = [
                ccw_flight[v] if schedule_bit(seed, instance, rounds, n + v) else 0
                for v in range(n)
            ]
            if sum(deliver_cw) + sum(deliver_ccw) == 0:
                deliver_cw, cw_flight = cw_flight, [0] * n
                deliver_ccw, ccw_flight = ccw_flight, [0] * n
            else:
                cw_flight = [cw_flight[v] - deliver_cw[v] for v in range(n)]
                ccw_flight = [ccw_flight[v] - deliver_ccw[v] for v in range(n)]
        for v in range(n):
            if terminated[v]:
                ignored += deliver_cw[v] + deliver_ccw[v]
            else:
                pend_cw[v] += deliver_cw[v]
                pend_ccw[v] += deliver_ccw[v]
        for v in range(n):
            drain_node(v)
        for v in range(n):
            if sends_cw[v]:
                cw_flight[(v + 1) % n] += sends_cw[v]
                total += sends_cw[v]
                sends_cw[v] = 0
            if sends_ccw[v]:
                ccw_flight[(v - 1) % n] += sends_ccw[v]
                total += sends_ccw[v]
                sends_ccw[v] = 0
    ignored += sum(
        pend_cw[v] + pend_ccw[v] for v in range(n) if terminated[v]
    )
    return rho_cw, rho_ccw, out_leader, terminated, total, rounds, skips, ignored


def run_terminating_fleet(
    id_lists: Sequence[Sequence[int]],
    backend: str = "auto",
    scheduler: str = "lockstep",
    seed: int = 0,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> FleetResult:
    """Run a fleet of independent Algorithm 2 executions.

    Per instance, the result matches :func:`run_terminating` exactly:
    the maximal-ID node is the unique leader, every node terminates, and
    the pulse count is exactly ``n(2*IDmax + 1)`` (Theorem 1).  See
    :func:`run_warmup_fleet` for the shared parameters.
    """
    from repro.core.common import LeaderState

    _check_scheduler(scheduler)
    resolved = _resolve_backend(backend)
    _check_fleet(id_lists, unique=True)
    if resolved == "numpy":
        ids_arr = _np.asarray(id_lists, dtype=_np.int64)
        (
            rho_cw,
            rho_ccw,
            out_leader,
            terminated,
            total,
            rounds,
            skips,
            ignored,
        ) = _np_terminating(ids_arr, scheduler, seed, max_rounds)
        rho_cw_rows = rho_cw.tolist()
        rho_ccw_rows = rho_ccw.tolist()
        leader_rows = out_leader.tolist()
        term_rows = terminated.tolist()
        totals = total.tolist()
    else:
        rho_cw_rows, rho_ccw_rows, leader_rows, term_rows, totals = [], [], [], [], []
        rounds = skips = ignored = 0
        for b, ids in enumerate(id_lists):
            (
                rho_cw_b,
                rho_ccw_b,
                out_b,
                term_b,
                total_b,
                rounds_b,
                skips_b,
                ignored_b,
            ) = _py_terminating_one(list(ids), scheduler, seed, max_rounds, b)
            rho_cw_rows.append(rho_cw_b)
            rho_ccw_rows.append(rho_ccw_b)
            leader_rows.append(out_b)
            term_rows.append(term_b)
            totals.append(total_b)
            rounds = max(rounds, rounds_b)
            skips += skips_b
            ignored += ignored_b
    states = [
        [
            LeaderState.LEADER if is_leader else LeaderState.NON_LEADER
            for is_leader in row
        ]
        for row in leader_rows
    ]
    return FleetResult(
        algorithm="terminating",
        backend=resolved,
        scheduler=scheduler,
        ids=[list(ids) for ids in id_lists],
        leaders=[[v for v, flag in enumerate(row) if flag] for row in leader_rows],
        states=states,
        total_pulses=totals,
        rho_cw=rho_cw_rows,
        rho_ccw=rho_ccw_rows,
        terminated=term_rows,
        rounds=rounds,
        lap_skips=skips,
        ignored_deliveries=ignored,
    )


# ---------------------------------------------------------------------------
# Algorithm 3 (non-oriented) — two independent directional warmup instances
# over per-direction virtual IDs; verdict/orientation are pure functions of
# the final counters (NonOrientedNode._update_output).
# ---------------------------------------------------------------------------


def _virtual_ids(node_id: int, scheme: str) -> Tuple[int, int]:
    if scheme == "doubled":
        return (2 * node_id - 1, 2 * node_id)
    return (node_id, node_id + 1)


def run_nonoriented_fleet(
    id_lists: Sequence[Sequence[int]],
    flip_lists: Optional[Sequence[Sequence[bool]]] = None,
    scheme: Any = "successor",
    require_unique_ids: bool = True,
    backend: str = "auto",
    scheduler: str = "lockstep",
    seed: int = 0,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> FleetResult:
    """Run a fleet of independent Algorithm 3 executions.

    Args:
        id_lists: Per-instance clockwise IDs (duplicates allowed when
            ``require_unique_ids=False``, as the Theorem 3 pipeline needs).
        flip_lists: Per-instance port flips; ``None`` means all-unflipped
            rings, matching :func:`run_nonoriented`.
        scheme: :class:`~repro.core.nonoriented.IdScheme` or its string
            value (``"successor"`` / ``"doubled"``).

    A pulse travelling clockwise arrives at node ``v``'s CCW port, so the
    governing virtual ID of the CW direction at ``v`` is
    ``virtual_ids[cw_port(v)]`` — the fleet keeps *directional* counters
    and maps them back to the port-indexed view at the end.
    """
    from repro.core.common import LeaderState

    _check_scheduler(scheduler)
    resolved = _resolve_backend(backend)
    B, n = _check_fleet(id_lists, unique=require_unique_ids)
    scheme_name = getattr(scheme, "value", scheme)
    if scheme_name not in ("successor", "doubled"):
        raise ConfigurationError(f"unknown virtual-ID scheme {scheme!r}")
    if flip_lists is None:
        flip_lists = [[False] * n for _ in range(B)]
    flips = [[bool(f) for f in row] for row in flip_lists]
    if len(flips) != B or any(len(row) != n for row in flips):
        raise ConfigurationError("flip_lists must match id_lists in shape")
    # Ground-truth ports: cw_port(v) = 0 if flipped else 1 (ring.py).
    cw_ports = [[0 if f else 1 for f in row] for row in flips]
    gov_cw = [
        [_virtual_ids(ids[v], scheme_name)[cw_ports[b][v]] for v in range(n)]
        for b, ids in enumerate(id_lists)
    ]
    gov_ccw = [
        [_virtual_ids(ids[v], scheme_name)[1 - cw_ports[b][v]] for v in range(n)]
        for b, ids in enumerate(id_lists)
    ]
    if resolved == "numpy":
        rho_cw, total_cw, rounds_cw, skips_cw = _np_warmup_direction(
            _np.asarray(gov_cw, dtype=_np.int64), +1, scheduler, seed, 0, max_rounds
        )
        rho_ccw, total_ccw, rounds_ccw, skips_ccw = _np_warmup_direction(
            _np.asarray(gov_ccw, dtype=_np.int64), -1, scheduler, seed, n, max_rounds
        )
        rho_cw_rows = rho_cw.tolist()
        rho_ccw_rows = rho_ccw.tolist()
        totals = (total_cw + total_ccw).tolist()
        rounds = rounds_cw + rounds_ccw
        skips = skips_cw + skips_ccw
    else:
        rho_cw_rows, rho_ccw_rows, totals = [], [], []
        rounds = skips = 0
        for b in range(B):
            rho_cw_b, total_cw_b, rounds_a, skips_a = _py_warmup_direction_one(
                gov_cw[b], +1, scheduler, seed, 0, max_rounds, b
            )
            rho_ccw_b, total_ccw_b, rounds_b, skips_b = _py_warmup_direction_one(
                gov_ccw[b], -1, scheduler, seed, n, max_rounds, b
            )
            rho_cw_rows.append(rho_cw_b)
            rho_ccw_rows.append(rho_ccw_b)
            totals.append(total_cw_b + total_ccw_b)
            rounds = max(rounds, rounds_a + rounds_b)
            skips += skips_a + skips_b
    # Port-indexed view + verdicts (NonOrientedNode._update_output).
    states: List[List[Any]] = []
    labels: List[List[Optional[int]]] = []
    consistent: List[bool] = []
    for b, ids in enumerate(id_lists):
        row_states: List[Any] = []
        row_labels: List[Optional[int]] = []
        for v in range(n):
            # CW pulses arrive at the CCW port; with cw_port==1 (unflipped)
            # that is Port_0, with cw_port==0 (flipped) it is Port_1.
            if flips[b][v]:
                rho0, rho1 = rho_ccw_rows[b][v], rho_cw_rows[b][v]
            else:
                rho0, rho1 = rho_cw_rows[b][v], rho_ccw_rows[b][v]
            id_one = _virtual_ids(ids[v], scheme_name)[1]
            if max(rho0, rho1) < id_one:
                row_states.append(LeaderState.UNDECIDED)
                row_labels.append(None)
                continue
            if rho0 == id_one and rho1 < id_one:
                row_states.append(LeaderState.LEADER)
            else:
                row_states.append(LeaderState.NON_LEADER)
            row_labels.append(1 if rho0 > rho1 else 0)
        states.append(row_states)
        labels.append(row_labels)
        if any(label is None for label in row_labels):
            consistent.append(False)
        else:
            consistent.append(
                all(row_labels[v] == cw_ports[b][v] for v in range(n))
                or all(row_labels[v] == 1 - cw_ports[b][v] for v in range(n))
            )
    return FleetResult(
        algorithm="nonoriented",
        backend=resolved,
        scheduler=scheduler,
        ids=[list(ids) for ids in id_lists],
        leaders=[
            [v for v, s in enumerate(row) if s is LeaderState.LEADER]
            for row in states
        ],
        states=states,
        total_pulses=totals,
        rho_cw=rho_cw_rows,
        rho_ccw=rho_ccw_rows,
        cw_port_labels=labels,
        orientation_consistent=consistent,
        flips=flips,
        rounds=rounds,
        lap_skips=skips,
    )


# ---------------------------------------------------------------------------
# Theorem 3 pipeline — Algorithm 4 sampling feeding Algorithm 3, one seeded
# attempt per instance.  The per-seed RNG protocol replicates run_anonymous
# exactly (sample IDs first, then the port flips, from one random.Random).
# ---------------------------------------------------------------------------


@dataclass
class AnonymousFleetResult:
    """A fleet of Theorem-3 attempts: per-seed samples plus the election."""

    seeds: List[int]
    sampled_ids: List[List[int]]
    max_unique: List[bool]
    election: FleetResult

    @property
    def succeeded(self) -> List[bool]:
        """Per instance: exactly one leader and a consistent orientation."""
        return [
            len(self.election.leaders[b]) == 1
            and bool(self.election.orientation_consistent[b])
            for b in range(self.election.size)
        ]


def run_anonymous_fleet(
    n: int,
    seeds: Sequence[int],
    c: float = 2.0,
    scheme: Any = "successor",
    backend: str = "auto",
    scheduler: str = "lockstep",
    sched_seed: int = 0,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> AnonymousFleetResult:
    """Run the Theorem-3 pipeline once per seed, as one fleet.

    Each seed drives its instance exactly like :func:`run_anonymous`:
    ``random.Random(seed)`` samples ``n`` IDs via Algorithm 4, then the
    ``n`` port flips — so per-seed samples (and hence outcomes) are
    identical between the scalar pipeline and the fleet.
    """
    from repro.ids.sampling import GeometricIdSampler, max_is_unique

    if n < 1:
        raise ConfigurationError(f"need at least one node, got n={n}")
    if not seeds:
        raise ConfigurationError("need at least one seed")
    sampler = GeometricIdSampler(c=c)
    sampled_lists: List[List[int]] = []
    flip_lists: List[List[bool]] = []
    for seed in seeds:
        rng = random.Random(seed)
        sampled_lists.append(sampler.sample_many(n, rng))
        flip_lists.append([rng.random() < 0.5 for _ in range(n)])
    election = run_nonoriented_fleet(
        sampled_lists,
        flip_lists=flip_lists,
        scheme=scheme,
        require_unique_ids=False,
        backend=backend,
        scheduler=scheduler,
        seed=sched_seed,
        max_rounds=max_rounds,
    )
    return AnonymousFleetResult(
        seeds=list(seeds),
        sampled_ids=sampled_lists,
        max_unique=[max_is_unique(ids) for ids in sampled_lists],
        election=election,
    )
