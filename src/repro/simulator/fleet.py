"""Vectorized fleet engine: lockstep struct-of-arrays simulation.

The paper's large-scale experiments — average-case pulse statistics over
random ID placements (Theorems 1–2) and w.h.p. validation of the
randomized sampler (Theorem 3 / Lemma 18) — run thousands of *independent*
ring executions.  Because pulses are contentless, the entire per-instance
state is a handful of small integers per node: receive counters
:math:`\\rho`, per-channel in-flight counts, and a few phase flags.  This
module batches ``B`` independent instances into struct-of-arrays (SoA)
state — ``rho[B, n]``, ``flight[B, n]``, ``terminated[B, n]`` — and
advances the whole fleet in lockstep *rounds*, so one scheduler step is a
few array operations across the fleet instead of ``B`` Python dispatches.

Semantics come from the transition kernels in :mod:`repro.core.kernels`
— this module owns *only* the round/flight/scheduler plumbing.  The
pure-Python backend runs actual kernel states (``make_state`` /
``step`` / ``drain``) per node; the NumPy backend runs the kernels'
column lowerings (``step_block_np`` / ``drain_block_np``) over the whole
fleet.  Neither backend re-implements a transition rule.

Legality (the lockstep-equivalence argument, docs/PERFORMANCE.md).  A
fleet round delivers, per instance, the entire round-start content of a
set of channels; sends produced during the round enter the channels for
the next round.  Within one instance this is a legal schedule of the
asynchronous adversary: order the delivered channels arbitrarily and
expand each into consecutive per-pulse deliveries — exactly the batched
engine's adversary-equivalence argument, applied per instance.  The fleet
therefore *is* one reference execution per instance, under a particular
adversary; every schedule-invariant claim (elected leader, final
counters, exact pulse counts) transfers verbatim, and the differential
tests check this bit-for-bit against the batched and unbatched engines.

Two fleet schedulers are provided:

* ``"lockstep"`` — every round delivers all round-start in-flight pulses
  of the phase-eligible direction(s), plus a **lap-skip** fast-forward:
  when ``k`` pulses circulate in one direction and no counter can cross a
  branch-relevant threshold (absorption ID, termination trigger, exit
  comparison) within ``L`` full laps, the laps collapse to closed-form
  counter arithmetic (``rho += L*k`` everywhere, ``L*k*n`` relays
  counted, in-flight population unchanged — after a full lap every pulse
  is back on its starting channel).  This bounds rounds by the number of
  threshold *crossings* (O(n) per instance) instead of ``IDmax``.  The
  skip margins are the kernels' ``skip_margin`` helpers, so the
  fast-forward legality argument lives next to the transition rules it
  fast-forwards.
* ``"seeded"`` — per-round, per-instance pseudo-random channel subsets
  drawn from a counter-based splitmix-style hash of
  ``(seed, instance, round, channel)``: reproducible per-instance RNG
  streams with no sequential RNG state, so the NumPy and pure-Python
  backends produce bit-identical schedules.

Statistical-checking hooks (:mod:`repro.verification.statistical`): the
terminating fleet accepts an ``observer`` called with a
:class:`FleetRoundView` after every round (post-drain, post-flight
update) and a :class:`FleetFault` that removes in-flight pulses at the
start of a chosen round — a seed-reproducible "lost pulse" whose
downstream invariant violations the checker must catch.

Backends.  ``backend="compiled"`` runs the numba-JIT per-instance loops
of :mod:`repro.core.kernels.compiled`; ``backend="numpy"`` runs the SoA
kernels on NumPy arrays; ``backend="python"`` runs the same per-instance
round/phase/skip logic with scalar kernel states (instances are
independent, so lockstep across the fleet and per-instance iteration
produce identical trajectories); ``backend="auto"`` resolves through
:func:`repro.accel.resolve_backend` (compiled → numpy → python,
``REPRO_BACKEND`` overrides).  Runs the JIT loop cannot host — per-round
observers, deterministic fault clauses — silently drop from compiled to
the numpy columns (the fallback seam, docs/PERFORMANCE.md); the
``backend`` field of the result records what actually ran.  NumPy and
numba are optional extras (``[perf]`` / ``[jit]``) — every result is
defined by the pure-Python semantics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.accel import HAVE_NUMPY
from repro.accel import np as _np
from repro.exceptions import ConfigurationError, SimulationLimitExceeded

#: Safety bound on fleet rounds; with lap-skips a run needs O(n) rounds
#: per instance, so hitting this means a livelocked kernel, not a big ID.
DEFAULT_MAX_ROUNDS = 1_000_000

_MASK64 = (1 << 64) - 1

# The counter-based hash machinery (murmur3 finalizer + odd key
# constants) is shared with the fault subsystem — one mix, one set of
# keys, so schedule streams and fault streams live in the same
# replayable universe (disjoint by their kind/usage coordinates).
from repro.faults.model import (  # noqa: E402
    _KEY_CHANNEL,
    _KEY_INSTANCE,
    _KEY_ROUND,
    _MIX_A,
    _MIX_B,
)
from repro.faults.model import mix64 as _mix64  # noqa: E402


def schedule_bit(seed: int, instance: int, round_index: int, channel: int) -> int:
    """The seeded fleet scheduler's delivery bit for one channel.

    A pure function of its arguments (counter-based, no sequential RNG
    state), so any backend — NumPy, pure Python, a future GPU port —
    reproduces the exact per-instance schedule stream.
    """
    key = (
        _mix64(seed)
        + instance * _KEY_INSTANCE
        + round_index * _KEY_ROUND
        + channel * _KEY_CHANNEL
    ) & _MASK64
    return (_mix64(key) >> 32) & 1


def _np_schedule_bits(seed_mixed: int, n_instances: int, round_index: int, channels: int):
    """Vectorized :func:`schedule_bit`: bool array ``[B, channels]``."""
    u64 = _np.uint64
    with _np.errstate(over="ignore"):
        b = _np.arange(n_instances, dtype=u64)[:, None]
        c = _np.arange(channels, dtype=u64)[None, :]
        x = (
            u64(seed_mixed)
            + b * u64(_KEY_INSTANCE)
            + u64(round_index % (1 << 64)) * u64(_KEY_ROUND)
            + c * u64(_KEY_CHANNEL)
        )
        x = (x ^ (x >> u64(33))) * u64(_MIX_A)
        x = (x ^ (x >> u64(33))) * u64(_MIX_B)
        x = x ^ (x >> u64(33))
    return ((x >> u64(32)) & u64(1)).astype(bool)


def _resolve_backend(backend: str) -> str:
    """Dispatch through the shared registry (:mod:`repro.accel`):
    ``"auto"`` prefers compiled → numpy → python by availability, and the
    ``REPRO_BACKEND`` environment variable can pin one tier."""
    from repro.accel import resolve_backend

    return resolve_backend(backend)


def _check_scheduler(scheduler: str) -> None:
    if scheduler not in ("lockstep", "seeded"):
        raise ConfigurationError(
            f"unknown fleet scheduler {scheduler!r}; choose 'lockstep' or 'seeded'"
        )


def _check_fleet(id_lists: Sequence[Sequence[int]], unique: bool) -> Tuple[int, int]:
    from repro.core.common import validate_positive_ids, validate_unique_ids

    if not id_lists:
        raise ConfigurationError("a fleet needs at least one instance")
    n = len(id_lists[0])
    for ids in id_lists:
        if len(ids) != n:
            raise ConfigurationError(
                "all fleet instances must have the same ring size; "
                f"got sizes {sorted({len(i) for i in id_lists})} "
                "(shard ragged sweeps by n)"
            )
        if unique:
            validate_unique_ids(ids)
        else:
            validate_positive_ids(ids)
    return len(id_lists), n


def _limit(rounds: int, max_rounds: int) -> None:
    if rounds > max_rounds:
        raise SimulationLimitExceeded(
            f"fleet exceeded {max_rounds} rounds before quiescence", steps=rounds
        )


@dataclass
class FleetResult:
    """Final snapshot of a fleet run — one entry per instance throughout.

    ``states`` holds final :class:`~repro.core.common.LeaderState` values
    (for Algorithm 2 these are the terminal *outputs*).  ``rho_cw`` /
    ``rho_ccw`` are directional receive counters, ``sigma_cw`` /
    ``sigma_ccw`` the matching send counters; ``cw_port_labels`` is the
    port-indexed view Algorithm 3 exposes.  ``rounds`` / ``lap_skips``
    are whole-fleet diagnostics (they depend on the batching, unlike the
    per-instance outcomes, which are schedule-invariant).
    """

    algorithm: str
    backend: str
    scheduler: str
    ids: List[List[int]]
    leaders: List[List[int]]
    states: List[List[Any]]
    total_pulses: List[int]
    rho_cw: List[List[int]]
    rho_ccw: Optional[List[List[int]]] = None
    terminated: Optional[List[List[bool]]] = None
    cw_port_labels: Optional[List[List[Optional[int]]]] = None
    orientation_consistent: Optional[List[bool]] = None
    flips: Optional[List[List[bool]]] = None
    rounds: int = 0
    lap_skips: int = 0
    ignored_deliveries: int = 0
    sigma_cw: Optional[List[List[int]]] = None
    sigma_ccw: Optional[List[List[int]]] = None
    term_pulse_sent: Optional[List[List[bool]]] = None
    #: Per-instance True when the run was cut off by the stuck-run
    #: watchdog or the livelock guard instead of reaching quiescence
    #: (only possible under fault injection).
    unfinished: Optional[List[bool]] = None
    #: Per-kind totals of applied fault events (see
    #: :data:`repro.faults.fleet.EVENT_KEYS`), None for fault-free runs.
    fault_events: Optional[dict] = None

    @property
    def size(self) -> int:
        """Number of instances in the fleet."""
        return len(self.ids)

    @property
    def expected_leaders(self) -> List[int]:
        """Per instance, the index of the maximal-ID node."""
        return [
            max(range(len(ids)), key=lambda v: ids[v]) for ids in self.ids
        ]


# The deterministic in-flight pulse loss moved into the unified fault
# model; ``FleetFault`` remains the fleet's historical name for it.
from repro.faults.fleet import merge_events as _merge_fault_events  # noqa: E402
from repro.faults.model import FaultModel  # noqa: E402
from repro.faults.model import PulseDrop as FleetFault  # noqa: E402


def _fault_adapters(fault, n, algorithm):
    """Normalize the ``fault`` argument of the fleet entry points.

    Accepts None, a single :class:`FleetFault` (historical), or a full
    :class:`~repro.faults.model.FaultModel`; returns the per-direction
    compiler(s) for ``algorithm`` or None for a no-op.
    """
    from repro.faults.fleet import DirectionFaults, TerminatingFaults

    if fault is None:
        return None
    model = (
        fault
        if isinstance(fault, FaultModel)
        else FaultModel(drops=(fault,))
    )
    if model.is_noop:
        return None
    if algorithm == "terminating":
        return TerminatingFaults(model, n)
    if algorithm == "warmup":
        return DirectionFaults(model, n, "cw", +1, 0, "warmup")
    if algorithm == "nonoriented":
        return (
            DirectionFaults(model, n, "cw", +1, 0, "nonoriented"),
            DirectionFaults(model, n, "ccw", -1, n, "nonoriented"),
        )
    raise ConfigurationError(f"no fleet fault lowering for {algorithm!r}")


def _auto_watchdog(watchdog_rounds, faults, n):
    """Resolve the stuck-run watchdog: explicit value, or a generous
    default whenever faults are injected (faulted runs may never
    quiesce — spurious pulses can circulate forever)."""
    if watchdog_rounds is not None:
        return watchdog_rounds
    return 1024 + 128 * n if faults is not None else None


def _compiled_downgrade(resolved, observer, adapter):
    """The compiled tier's documented fallback seam.

    Per-round observers and deterministic fault clauses (pulse drops,
    crashes, corruptions) need Python callbacks *inside* the round loop,
    which the JIT functions cannot host — those runs drop to the NumPy
    columns (always importable when the compiled tier resolved, since
    numba rides on numpy).  Rate-based channel faults stay compiled: the
    counter hash is reimplemented in the JIT loop and cross-checked
    value-for-value by the differential battery.
    """
    if resolved != "compiled":
        return resolved
    if observer is not None:
        return "numpy"
    if adapter is not None:
        model = (adapter[0] if isinstance(adapter, tuple) else adapter).model
        if (
            model.drops
            or model.crashes
            or model.corruptions
            or model.crash_rate
            or model.groups
        ):
            return "numpy"
    return resolved


def _merge_compiled_events(adapter, events) -> None:
    """Fold the JIT loop's random-fault counters (dropped / duplicated /
    injected) into the adapter's event dict."""
    if adapter is None:
        return
    for key, value in events.items():
        adapter.events[key] += value


def _compiled_warmup_direction(
    gov_lists, shift, scheduler, seed, chan_offset, max_rounds,
    adapter, instance_offset, watchdog,
):
    """Run one directional warmup block on the JIT tier; list-of-rows
    outputs matching the pure-Python aggregation shape."""
    # Direct module import (not accel.load_compiled) so tests can force
    # this path and exercise the loop bodies interpreted, without numba.
    from repro.core.kernels import compiled as jit

    model = adapter.model if adapter is not None else None
    rho, sigma, total, rounds, skips, stuck, events = jit.warmup_fleet(
        gov_lists, shift, scheduler, seed, chan_offset, max_rounds,
        model=model, instance_offset=instance_offset, watchdog=watchdog,
    )
    _merge_compiled_events(adapter, events)
    # rounds/skips come back per instance so callers can aggregate them
    # exactly like the per-instance python backend (max / sum — and, for
    # the nonoriented pairing, max over per-instance direction sums).
    return (
        rho.tolist(), sigma.tolist(), total.tolist(),
        rounds.tolist(), skips.tolist(), stuck.tolist(),
    )


@dataclass
class FleetRoundView:
    """Read-only per-round snapshot handed to fleet observers.

    Column fields are ``[B, n]`` arrays on the NumPy backend and
    single-row lists-of-lists (``B == 1``) on the pure-Python backend;
    ``instance_offset`` maps row ``b`` to global instance index
    ``instance_offset + b`` so sharded statistical runs can report
    absolute counterexample coordinates.  ``flight_cw[b][v]`` counts
    pulses in transit *toward* node ``v``.  Observers must not mutate
    the columns.
    """

    algorithm: str
    backend: str
    round_index: int
    instance_offset: int
    ids: Any
    rho_cw: Any
    sigma_cw: Any
    pend_cw: Any
    flight_cw: Any
    rho_ccw: Any
    sigma_ccw: Any
    pend_ccw: Any
    flight_ccw: Any
    term_sent: Any
    terminated: Any


#: Per-round statistical-checking hook (see :class:`FleetRoundView`).
FleetObserver = Callable[[FleetRoundView], None]


# ---------------------------------------------------------------------------
# Algorithm 1 (warmup) — one directional instance; also Algorithm 3's halves.
#
# The round body is the warmup kernel: `step_block_np` (NumPy) or
# per-node `kernel.step` (Python) consume each node's delivered run in
# O(1); the lap-skip margins are the kernel's `skip_margin` helpers.
# ---------------------------------------------------------------------------


def _np_warmup_direction(
    gov,
    shift,
    scheduler,
    seed,
    chan_offset,
    max_rounds,
    faults=None,
    observer=None,
    instance_offset=0,
    watchdog=None,
    algorithm="warmup",
):
    """Advance a fleet of directional Algorithm-1 instances to quiescence.

    Args:
        gov: int64 ``[B, n]`` governing thresholds (real IDs for
            Algorithm 1, per-direction virtual IDs for Algorithm 3).
        shift: +1 when sends from node ``v`` fly toward ``v+1`` (the CW
            travel direction), -1 for CCW.
        chan_offset: Base channel index for the seeded schedule hash (the
            two directions of Algorithm 3 draw from disjoint streams).
        faults: Optional :class:`repro.faults.fleet.DirectionFaults`
            applied at the start of every round.
        watchdog: Round bound after which still-active instances are
            marked stuck instead of raising (the recovery harness's
            deadlock detector); None disables.

    Returns:
        ``(rho, sigma, total_sent, rounds, lap_skips, stuck)``.
    """
    from repro.core.kernels import warmup as kernel

    B, n = gov.shape
    rho = _np.zeros((B, n), _np.int64)
    sigma = _np.ones((B, n), _np.int64)  # kernel.init: one pulse sent each
    flight = _np.ones((B, n), _np.int64)  # ... and one in flight toward each
    total = _np.full(B, n, _np.int64)
    seed_mixed = _mix64(seed)
    margin_inf = _np.iinfo(_np.int64).max
    stuck = _np.zeros(B, bool)
    # A row whose flight hit zero after fault application has quiesced:
    # its pure-Python twin's per-instance loop exits there, so faults must
    # never touch it again (batch composition must not alter per-instance
    # fault streams).
    done = _np.zeros(B, bool)
    if observer is not None:
        zeros = _np.zeros((B, n), _np.int64)
        falses = _np.zeros((B, n), bool)
    rounds = 0
    skips = 0
    while True:
        if faults is not None:
            total += faults.apply_np(
                _np, rounds + 1, rho, sigma, flight, instance_offset,
                live=~done,
            )
        k = flight.sum(axis=1)
        done |= k == 0
        active = ~done
        if not active.any():
            break
        if watchdog is not None and rounds >= watchdog:
            # Deadlock/livelock watchdog: whatever is still circulating
            # will never quiesce within budget — report, don't raise.
            stuck |= active
            break
        rounds += 1
        _limit(rounds, max_rounds)
        if scheduler == "lockstep":
            # Lap-skip: L full laps are uniform as long as no node's rho
            # crosses its threshold; whenever k > 0 some node is still
            # below threshold, so the margin minimum is finite.  Fault
            # injection voids that guarantee: a row whose every node is
            # past threshold relays forever (an infinite loop the
            # watchdog will cut); suppress its skip so the int64 margin
            # sentinel cannot overflow into the counters.
            margin = kernel.skip_margins_np(_np, gov, rho)
            mmin = margin.min(axis=1)
            if faults is not None:
                mmin = _np.where(mmin == margin_inf, 0, mmin)
            if faults is None or faults.allow_skips:
                laps = _np.where(active, mmin // _np.maximum(k, 1), 0)
                do = laps >= 1
                if do.any():
                    skips += 1
                    add = (laps * k)[:, None] * do[:, None]
                    rho += add
                    sigma += add
                    total += do * (laps * k * n)
            delivered = flight
            flight = _np.zeros_like(flight)
        else:
            mask = _np_schedule_bits(seed_mixed, B, rounds, chan_offset + n)[
                :, chan_offset:
            ]
            delivered = flight * mask
            # Progress guarantee: an active instance whose drawn subset
            # holds no pulse delivers everything this round instead.
            starved = active & (delivered.sum(axis=1) == 0)
            delivered = _np.where(starved[:, None], flight, delivered)
            flight = flight - delivered
        rho, relays = kernel.step_block_np(_np, gov, rho, delivered)
        sigma += relays
        flight += _np.roll(relays, shift, axis=1)
        total += relays.sum(axis=1)
        if observer is not None:
            observer(
                FleetRoundView(
                    algorithm=algorithm,
                    backend="numpy",
                    round_index=rounds,
                    instance_offset=instance_offset,
                    ids=gov,
                    rho_cw=rho,
                    sigma_cw=sigma,
                    pend_cw=zeros,
                    flight_cw=flight,
                    rho_ccw=zeros,
                    sigma_ccw=zeros,
                    pend_ccw=zeros,
                    flight_ccw=zeros,
                    term_sent=falses,
                    terminated=falses,
                )
            )
    return rho, sigma, total, rounds, skips, stuck


def _py_warmup_direction_one(
    gov,
    shift,
    scheduler,
    seed,
    chan_offset,
    max_rounds,
    instance,
    faults=None,
    observer=None,
    instance_offset=0,
    watchdog=None,
    algorithm="warmup",
):
    """Scalar twin of :func:`_np_warmup_direction` for one instance,
    driving per-node warmup kernel states.  ``instance`` is the local
    row (the seeded scheduler's historical keying); fault rolls use the
    global index ``instance_offset + instance``."""
    from repro.core.common import CW_ARRIVAL_PORT
    from repro.core.kernels import warmup as kernel

    n = len(gov)
    states = [kernel.make_state(g) for g in gov]
    flight = [0] * n
    total = 0
    for v, st in enumerate(states):
        _, emissions, _ = kernel.init(st)
        for _port, cnt in emissions:
            flight[(v + shift) % n] += cnt
            total += cnt
    stuck = False
    rounds = 0
    skips = 0
    while True:
        if faults is not None:
            total += faults.apply_py(
                rounds + 1, instance_offset + instance, gov, states, flight, kernel
            )
        k = sum(flight)
        if k == 0:
            break
        if watchdog is not None and rounds >= watchdog:
            stuck = True
            break
        rounds += 1
        _limit(rounds, max_rounds)
        if scheduler == "lockstep":
            finite = [
                m
                for m in (kernel.skip_margin(st.node_id, st.rho_cw) for st in states)
                if m is not None
            ]
            # Empty only under faults: every node past threshold relays
            # forever (the watchdog cuts the loop); no skip to take.
            margin = min(finite) if finite else 0
            laps = margin // k
            if laps >= 1 and (faults is None or faults.allow_skips):
                skips += 1
                add = laps * k
                for st in states:
                    kernel.apply_laps(st, add)
                total += add * n
            delivered = flight
            flight = [0] * n
        else:
            delivered = [
                flight[v]
                if schedule_bit(seed, instance, rounds, chan_offset + v)
                else 0
                for v in range(n)
            ]
            if sum(delivered) == 0:
                delivered = flight
                flight = [0] * n
            else:
                flight = [flight[v] - delivered[v] for v in range(n)]
        # Sends enter the flight array directly: `delivered` is a
        # round-start snapshot, so nothing lands before the next round.
        for v in range(n):
            count = delivered[v]
            if not count:
                continue
            _, emissions, _ = kernel.step(states[v], CW_ARRIVAL_PORT, count)
            for _port, cnt in emissions:
                flight[(v + shift) % n] += cnt
                total += cnt
        if observer is not None:
            zeros = [[0] * n]
            falses = [[False] * n]
            observer(
                FleetRoundView(
                    algorithm=algorithm,
                    backend="python",
                    round_index=rounds,
                    instance_offset=instance_offset + instance,
                    ids=[list(gov)],
                    rho_cw=[[st.rho_cw for st in states]],
                    sigma_cw=[[st.sigma_cw for st in states]],
                    pend_cw=zeros,
                    flight_cw=[list(flight)],
                    rho_ccw=zeros,
                    sigma_ccw=zeros,
                    pend_ccw=zeros,
                    flight_ccw=zeros,
                    term_sent=falses,
                    terminated=falses,
                )
            )
    rho = [st.rho_cw for st in states]
    sigma = [st.sigma_cw for st in states]
    return rho, sigma, total, rounds, skips, stuck


def run_warmup_fleet(
    id_lists: Sequence[Sequence[int]],
    backend: str = "auto",
    scheduler: str = "lockstep",
    seed: int = 0,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    faults: Optional[FaultModel] = None,
    observer: Optional[FleetObserver] = None,
    instance_offset: int = 0,
    watchdog_rounds: Optional[int] = None,
) -> FleetResult:
    """Run a fleet of independent Algorithm 1 executions.

    Args:
        id_lists: One clockwise ID assignment per instance; all instances
            must share the same ring size (shard ragged sweeps by ``n``).
            Duplicates are allowed (Lemma 16), as in :func:`run_warmup`.
        backend: ``"auto"`` (compiled → numpy → python by availability),
            ``"compiled"``, ``"numpy"``, or ``"python"`` — identical
            results by construction.
        scheduler: ``"lockstep"`` (all-deliver rounds + lap-skip) or
            ``"seeded"`` (per-instance pseudo-random channel subsets).
        seed: Stream seed for the seeded scheduler.
        max_rounds: Safety bound on fleet rounds.
        faults: Optional :class:`~repro.faults.model.FaultModel` (or a
            single :class:`FleetFault`) applied at the start of every
            round; fault rolls key on the global instance index.
        observer: Per-round statistical hook (direction data appears in
            the CW slots of the view; ``ids`` are governing thresholds).
        instance_offset: Global index of the first instance (sharding).
        watchdog_rounds: Stuck-run bound; defaults to ``1024 + 128 n``
            whenever faults are injected, None (disabled) otherwise.
    """
    from repro.core.kernels import warmup as kernel

    _check_scheduler(scheduler)
    resolved = _resolve_backend(backend)
    _, n = _check_fleet(id_lists, unique=False)
    adapter = _fault_adapters(faults, n, "warmup")
    watchdog = _auto_watchdog(watchdog_rounds, adapter, n)
    resolved = _compiled_downgrade(resolved, observer, adapter)
    if resolved == "compiled":
        rho_rows, sigma_rows, totals, round_list, skip_list, unfinished = (
            _compiled_warmup_direction(
                id_lists, +1, scheduler, seed, 0, max_rounds,
                adapter, instance_offset, watchdog,
            )
        )
        rounds = max(round_list)
        skips = sum(skip_list)
    elif resolved == "numpy":
        gov = _np.asarray(id_lists, dtype=_np.int64)
        rho, sigma, total, rounds, skips, stuck = _np_warmup_direction(
            gov, +1, scheduler, seed, 0, max_rounds,
            faults=adapter, observer=observer,
            instance_offset=instance_offset, watchdog=watchdog,
        )
        rho_rows = rho.tolist()
        sigma_rows = sigma.tolist()
        totals = total.tolist()
        unfinished = stuck.tolist()
    else:
        rho_rows, sigma_rows, totals, unfinished = [], [], [], []
        rounds = skips = 0
        for b, ids in enumerate(id_lists):
            rho_b, sigma_b, total_b, rounds_b, skips_b, stuck_b = (
                _py_warmup_direction_one(
                    list(ids), +1, scheduler, seed, 0, max_rounds, b,
                    faults=adapter, observer=observer,
                    instance_offset=instance_offset, watchdog=watchdog,
                )
            )
            rho_rows.append(rho_b)
            sigma_rows.append(sigma_b)
            totals.append(total_b)
            unfinished.append(stuck_b)
            rounds = max(rounds, rounds_b)
            skips += skips_b
    states = [
        [
            kernel.stabilized_state(node_id, rho_v)
            for rho_v, node_id in zip(rho_b, ids)
        ]
        for rho_b, ids in zip(rho_rows, id_lists)
    ]
    from repro.core.common import LeaderState

    return FleetResult(
        algorithm="warmup",
        backend=resolved,
        scheduler=scheduler,
        ids=[list(ids) for ids in id_lists],
        leaders=[
            [v for v, s in enumerate(row) if s is LeaderState.LEADER]
            for row in states
        ],
        states=states,
        total_pulses=totals,
        rho_cw=rho_rows,
        sigma_cw=sigma_rows,
        rounds=rounds,
        lap_skips=skips,
        unfinished=unfinished,
        fault_events=dict(adapter.events) if adapter is not None else None,
    )


# ---------------------------------------------------------------------------
# Algorithm 2 (terminating) — CW warmup + lagged CCW instance + termination.
#
# Lockstep schedule: each instance delivers only CW pulses until its CW
# instance completes (CCW pulses stall in their channels — a legal
# adversary), then delivers CCW.  This keeps the lap-skip applicable in
# both halves: during the CW half the stalled CCW population is constant,
# and during the CCW half every gate is open (k_cw == 0 means all n CW
# absorptions happened, so rho_cw >= ID everywhere) and the exit
# threshold rho_cw is static.  The margins are the terminating kernel's
# `cw_skip_margin` / `ccw_skip_margin` (the CCW one keeps rho_ccw <=
# rho_cw so neither the line-14 trigger nor the line-18 exit can fire
# mid-skip); skips are disabled once any term pulse is sent.
#
# Both directions' deliveries are buffered into the kernel pendings and
# then drained ONCE per round: draining between the directions would be
# a different legal schedule, and the differential tests pin this one.
# ---------------------------------------------------------------------------


def _np_hop_skip(np_mod, flight, margins, cand, backward):
    """Intra-lap fast-forward: collapse the largest crossing-free hop run.

    The whole-lap skip above jumps ``L`` full laps but still pays up to a
    full lap of rounds (``n`` hops) to reach the next threshold crossing
    — that residual is what makes lockstep rounds scale like ``n^2`` per
    instance.  This helper removes it: after ``H < n`` consecutive
    all-deliver rounds with no branch crossing, node ``v`` has received
    the window sum of ``flight`` over the ``H`` channels upstream of it
    (``backward=True`` when sends roll ``+1``, i.e. CW travel; ``False``
    for CCW) and the flight array is the original rolled by ``H`` — so
    those rounds are one closed-form update.  ``H`` is the largest value
    whose window sums stay within ``margins`` at every node; window sums
    are nondecreasing in ``H``, so per-instance bisection over prefix
    sums of the doubled flight array finds it.  Rows outside ``cand``
    get ``H = 0``.  Returns ``(H, gains, flight_after)`` or ``None``
    when no row can advance.
    """
    B, n = flight.shape
    if n < 2:
        return None
    doubled = np_mod.concatenate([flight, flight], axis=1)
    csum = np_mod.concatenate(
        [np_mod.zeros((B, 1), np_mod.int64), np_mod.cumsum(doubled, axis=1)],
        axis=1,
    )
    pos = np_mod.arange(n)
    if backward:
        window_end = csum[:, n + 1 : 2 * n + 1]  # C[v + n + 1], fixed per v

    def window_gains(hops):
        if backward:
            idx = pos[None, :] + (n + 1) - hops[:, None]
            return window_end - np_mod.take_along_axis(csum, idx, axis=1)
        idx = pos[None, :] + hops[:, None]
        return np_mod.take_along_axis(csum, idx, axis=1) - csum[:, :n]

    lo = np_mod.zeros(B, np_mod.int64)
    hi = np_mod.where(cand, n - 1, 0)
    for _ in range(int(n - 1).bit_length()):
        mid = np_mod.maximum((lo + hi + 1) // 2, 0)
        ok = (mid >= 1) & (window_gains(mid) <= margins).all(axis=1)
        lo = np_mod.where(ok, mid, lo)
        hi = np_mod.where(ok, hi, mid - 1)
    if not (lo > 0).any():
        return None
    gains = window_gains(lo)
    shift = -lo[:, None] if backward else lo[:, None]
    flight_after = np_mod.take_along_axis(flight, (pos[None, :] + shift) % n, axis=1)
    return lo, gains, flight_after


def _np_terminating(
    ids,
    scheduler,
    seed,
    max_rounds,
    observer=None,
    fault=None,
    instance_offset=0,
    watchdog=None,
):
    from repro.core.kernels import terminating as kernel

    B, n = ids.shape
    cols = kernel.TerminatingColumns.fresh(_np, ids)
    cw_flight = _np.ones((B, n), _np.int64)  # on_init: one CW pulse toward each
    ccw_flight = _np.zeros((B, n), _np.int64)
    total = _np.full(B, n, _np.int64)
    ignored = 0
    seed_mixed = _mix64(seed)
    margin_inf = _np.iinfo(_np.int64).max
    stuck = _np.zeros(B, bool)
    # Quiesced rows are frozen for fault purposes — see _np_warmup_direction.
    done = _np.zeros(B, bool)

    rounds = 0
    skips = 0
    while True:
        if fault is not None:
            total += fault.apply_np(
                _np, rounds + 1, cols, cw_flight, ccw_flight, instance_offset,
                live=~done,
            )
        k_cw = cw_flight.sum(axis=1)
        k_ccw = ccw_flight.sum(axis=1)
        done |= (k_cw + k_ccw) == 0
        active = ~done
        if not active.any():
            break
        if watchdog is not None and rounds >= watchdog:
            stuck |= active
            break
        rounds += 1
        _limit(rounds, max_rounds)
        if scheduler == "lockstep":
            skippable = ~cols.term_sent.any(axis=1) & ~cols.terminated.any(axis=1)
            if fault is not None and not fault.allow_skips:
                skippable &= False
            phase_cw = k_cw > 0
            phase_ccw = ~phase_cw & (k_ccw > 0)
            cand = phase_cw & skippable
            if cand.any():
                margin = kernel.cw_skip_margins_np(_np, ids, cols.rho_cw)
                mmin = margin.min(axis=1)
                if fault is not None:
                    # Under injection every node may sit past threshold
                    # (infinite relay; the watchdog cuts it) — suppress
                    # the skip so the sentinel cannot overflow.
                    mmin = _np.where(mmin == margin_inf, 0, mmin)
                laps = _np.where(cand, mmin // _np.maximum(k_cw, 1), 0)
                do = laps >= 1
                if do.any():
                    skips += 1
                    add = (laps * k_cw)[:, None] * do[:, None]
                    cols.rho_cw += add
                    cols.sigma_cw += add
                    total += do * (laps * k_cw * n)
                    margin = margin - add
                hop = _np_hop_skip(_np, cw_flight, margin, cand, backward=True)
                if hop is not None:
                    skips += 1
                    _, gains, cw_flight = hop
                    cols.rho_cw += gains
                    cols.sigma_cw += gains
                    total += gains.sum(axis=1)
            cand = phase_ccw & skippable
            if cand.any():
                margin = kernel.ccw_skip_margins_np(_np, ids, cols.rho_cw, cols.rho_ccw)
                laps = _np.where(cand, margin.min(axis=1) // _np.maximum(k_ccw, 1), 0)
                do = laps >= 1
                if do.any():
                    skips += 1
                    add = (laps * k_ccw)[:, None] * do[:, None]
                    cols.rho_ccw += add
                    cols.sigma_ccw += add
                    total += do * (laps * k_ccw * n)
                    margin = margin - add
                hop = _np_hop_skip(_np, ccw_flight, margin, cand, backward=False)
                if hop is not None:
                    skips += 1
                    _, gains, ccw_flight = hop
                    cols.rho_ccw += gains
                    cols.sigma_ccw += gains
                    total += gains.sum(axis=1)
            deliver_cw = cw_flight
            cw_flight = _np.zeros_like(cw_flight)
            deliver_ccw = ccw_flight * phase_ccw[:, None]
            ccw_flight = ccw_flight * ~phase_ccw[:, None]
        else:
            mask = _np_schedule_bits(seed_mixed, B, rounds, 2 * n)
            deliver_cw = cw_flight * mask[:, :n]
            deliver_ccw = ccw_flight * mask[:, n:]
            forced = active & ((deliver_cw.sum(axis=1) + deliver_ccw.sum(axis=1)) == 0)
            deliver_cw = _np.where(forced[:, None], cw_flight, deliver_cw)
            deliver_ccw = _np.where(forced[:, None], ccw_flight, deliver_ccw)
            cw_flight = cw_flight - deliver_cw
            ccw_flight = ccw_flight - deliver_ccw
        # Deliveries to terminated nodes are ignored (the model: a
        # terminated node reacts to nothing); Algorithm 2's quiescent
        # termination guarantees this count stays zero.
        dropped = (deliver_cw + deliver_ccw) * cols.terminated
        if dropped.any():
            ignored += int(dropped.sum())
            deliver_cw = deliver_cw * ~cols.terminated
            deliver_ccw = deliver_ccw * ~cols.terminated
        cols.pend_cw += deliver_cw
        cols.pend_ccw += deliver_ccw
        kernel.drain_block_np(_np, cols)
        cw_flight += _np.roll(cols.sends_cw, 1, axis=1)
        ccw_flight += _np.roll(cols.sends_ccw, -1, axis=1)
        total += cols.sends_cw.sum(axis=1) + cols.sends_ccw.sum(axis=1)
        cols.sends_cw[:] = 0
        cols.sends_ccw[:] = 0
        if observer is not None:
            observer(
                FleetRoundView(
                    algorithm="terminating",
                    backend="numpy",
                    round_index=rounds,
                    instance_offset=instance_offset,
                    ids=ids,
                    rho_cw=cols.rho_cw,
                    sigma_cw=cols.sigma_cw,
                    pend_cw=cols.pend_cw,
                    flight_cw=cw_flight,
                    rho_ccw=cols.rho_ccw,
                    sigma_ccw=cols.sigma_ccw,
                    pend_ccw=cols.pend_ccw,
                    flight_ccw=ccw_flight,
                    term_sent=cols.term_sent,
                    terminated=cols.terminated,
                )
            )
    ignored += int((cols.pend_cw + cols.pend_ccw)[cols.terminated].sum())
    return cols, total, rounds, skips, ignored, stuck


#: Scalar stand-in for the NumPy path's int64-max margin sentinel; only
#: its "larger than any reachable window sum" property is observable.
_MARGIN_INF = 1 << 62


def _py_hop_skip(flight, margins, backward):
    """Scalar twin of :func:`_np_hop_skip` for one instance.

    Same contract: the largest ``H < n`` whose window sums stay within
    the per-node margins, found by extending the windows one hop at a
    time (the predicate is monotone, so the incremental scan and the
    NumPy bisection agree exactly).  Returns ``(H, gains, flight_after)``
    with ``gains`` ``None`` when ``H == 0``.
    """
    n = len(flight)
    gains = [0] * n
    hops = 0
    while hops < n - 1:
        nxt = hops + 1
        trial = []
        for v in range(n):
            src = (v - nxt + 1) % n if backward else (v + nxt - 1) % n
            g = gains[v] + flight[src]
            if g > margins[v]:
                trial = None
                break
            trial.append(g)
        if trial is None:
            break
        gains = trial
        hops = nxt
    if hops == 0:
        return 0, None, flight
    if backward:
        flight_after = [flight[(v - hops) % n] for v in range(n)]
    else:
        flight_after = [flight[(v + hops) % n] for v in range(n)]
    return hops, gains, flight_after


def _py_terminating_one(
    ids,
    scheduler,
    seed,
    max_rounds,
    instance,
    observer=None,
    fault=None,
    instance_offset=0,
    watchdog=None,
):
    """Scalar twin of :func:`_np_terminating` for one instance, driving
    per-node terminating kernel states."""
    from repro.core.common import CW_SEND_PORT, LeaderState
    from repro.core.kernels import terminating as kernel

    n = len(ids)
    states = [kernel.make_state(node_id) for node_id in ids]
    cw_flight = [0] * n
    ccw_flight = [0] * n
    sends_cw = [0] * n
    sends_ccw = [0] * n
    out_leader = [False] * n
    total = 0
    ignored = 0

    def buffer_emissions(v, emissions):
        for port, cnt in emissions:
            if port == CW_SEND_PORT:
                sends_cw[v] += cnt
            else:
                sends_ccw[v] += cnt

    for v, st in enumerate(states):
        _, emissions, _ = kernel.init(st)
        buffer_emissions(v, emissions)

    def flush_sends():
        nonlocal total
        for v in range(n):
            if sends_cw[v]:
                cw_flight[(v + 1) % n] += sends_cw[v]
                total += sends_cw[v]
                sends_cw[v] = 0
            if sends_ccw[v]:
                ccw_flight[(v - 1) % n] += sends_ccw[v]
                total += sends_ccw[v]
                sends_ccw[v] = 0

    flush_sends()

    stuck = False
    rounds = 0
    skips = 0
    while True:
        if fault is not None:
            total += fault.apply_py(
                rounds + 1,
                instance_offset + instance,
                ids,
                states,
                out_leader,
                cw_flight,
                ccw_flight,
                kernel,
            )
        k_cw = sum(cw_flight)
        k_ccw = sum(ccw_flight)
        if k_cw + k_ccw == 0:
            break
        if watchdog is not None and rounds >= watchdog:
            stuck = True
            break
        rounds += 1
        _limit(rounds, max_rounds)
        if scheduler == "lockstep":
            skippable = not any(st.term_pulse_sent for st in states) and not any(
                st.terminated for st in states
            )
            if fault is not None and not fault.allow_skips:
                skippable = False
            if skippable and k_cw > 0:
                margins = [
                    kernel.cw_skip_margin(st.node_id, st.rho_cw) for st in states
                ]
                margins = [_MARGIN_INF if m is None else m for m in margins]
                mmin = min(margins)
                if fault is not None and mmin >= _MARGIN_INF:
                    # All nodes past threshold: infinite relay loop (the
                    # watchdog cuts it); no legal skip (NumPy twin).
                    mmin = 0
                laps = mmin // k_cw
                if laps >= 1:
                    skips += 1
                    add = laps * k_cw
                    for st in states:
                        kernel.apply_cw_laps(st, add)
                    total += add * n
                    margins = [m - add for m in margins]
                hops, gains, cw_flight = _py_hop_skip(
                    cw_flight, margins, backward=True
                )
                if hops:
                    skips += 1
                    for v, st in enumerate(states):
                        kernel.apply_cw_laps(st, gains[v])
                    total += sum(gains)
            elif skippable and k_ccw > 0:
                margins = [
                    kernel.ccw_skip_margin(st.node_id, st.rho_cw, st.rho_ccw)
                    for st in states
                ]
                laps = min(margins) // k_ccw
                if laps >= 1:
                    skips += 1
                    add = laps * k_ccw
                    for st in states:
                        kernel.apply_ccw_laps(st, add)
                    total += add * n
                    margins = [m - add for m in margins]
                hops, gains, ccw_flight = _py_hop_skip(
                    ccw_flight, margins, backward=False
                )
                if hops:
                    skips += 1
                    for v, st in enumerate(states):
                        kernel.apply_ccw_laps(st, gains[v])
                    total += sum(gains)
            deliver_cw = cw_flight
            cw_flight = [0] * n
            if k_cw > 0:
                deliver_ccw = [0] * n
            else:
                deliver_ccw = ccw_flight
                ccw_flight = [0] * n
        else:
            deliver_cw = [
                cw_flight[v] if schedule_bit(seed, instance, rounds, v) else 0
                for v in range(n)
            ]
            deliver_ccw = [
                ccw_flight[v] if schedule_bit(seed, instance, rounds, n + v) else 0
                for v in range(n)
            ]
            if sum(deliver_cw) + sum(deliver_ccw) == 0:
                deliver_cw, cw_flight = cw_flight, [0] * n
                deliver_ccw, ccw_flight = ccw_flight, [0] * n
            else:
                cw_flight = [cw_flight[v] - deliver_cw[v] for v in range(n)]
                ccw_flight = [ccw_flight[v] - deliver_ccw[v] for v in range(n)]
        # Buffer both directions, then drain once per node (see the
        # section comment); drains without fresh deliveries are no-ops.
        for v, st in enumerate(states):
            if st.terminated:
                ignored += deliver_cw[v] + deliver_ccw[v]
                continue
            st.pending_cw += deliver_cw[v]
            st.pending_ccw += deliver_ccw[v]
        for v, st in enumerate(states):
            if st.terminated:
                continue
            emissions, verdict = kernel.drain(st)
            buffer_emissions(v, emissions)
            if verdict is not None:
                st.terminated = True
                out_leader[v] = verdict is LeaderState.LEADER
        flush_sends()
        if observer is not None:
            observer(
                FleetRoundView(
                    algorithm="terminating",
                    backend="python",
                    round_index=rounds,
                    instance_offset=instance_offset + instance,
                    ids=[list(ids)],
                    rho_cw=[[st.rho_cw for st in states]],
                    sigma_cw=[[st.sigma_cw for st in states]],
                    pend_cw=[[st.pending_cw for st in states]],
                    flight_cw=[list(cw_flight)],
                    rho_ccw=[[st.rho_ccw for st in states]],
                    sigma_ccw=[[st.sigma_ccw for st in states]],
                    pend_ccw=[[st.pending_ccw for st in states]],
                    flight_ccw=[list(ccw_flight)],
                    term_sent=[[st.term_pulse_sent for st in states]],
                    terminated=[[st.terminated for st in states]],
                )
            )
    ignored += sum(
        st.pending_cw + st.pending_ccw for st in states if st.terminated
    )
    return states, out_leader, total, rounds, skips, ignored, stuck


def run_terminating_fleet(
    id_lists: Sequence[Sequence[int]],
    backend: str = "auto",
    scheduler: str = "lockstep",
    seed: int = 0,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    observer: Optional[FleetObserver] = None,
    fault: Optional[Any] = None,
    instance_offset: int = 0,
    watchdog_rounds: Optional[int] = None,
) -> FleetResult:
    """Run a fleet of independent Algorithm 2 executions.

    Per instance, the result matches :func:`run_terminating` exactly:
    the maximal-ID node is the unique leader, every node terminates, and
    the pulse count is exactly ``n(2*IDmax + 1)`` (Theorem 1).  See
    :func:`run_warmup_fleet` for the shared parameters.

    Statistical-checking hooks: ``observer`` is called with a
    :class:`FleetRoundView` after every round; ``fault`` accepts a full
    :class:`~repro.faults.model.FaultModel` or a single
    :class:`FleetFault` (historical); ``instance_offset`` shifts the
    global instance indices reported to both (sharded runs);
    ``watchdog_rounds`` bounds stuck runs (see :func:`run_warmup_fleet`).
    """
    from repro.core.common import LeaderState

    _check_scheduler(scheduler)
    resolved = _resolve_backend(backend)
    _, n = _check_fleet(id_lists, unique=True)
    adapter = _fault_adapters(fault, n, "terminating")
    watchdog = _auto_watchdog(watchdog_rounds, adapter, n)
    resolved = _compiled_downgrade(resolved, observer, adapter)
    if resolved == "compiled":
        from repro.core.kernels import compiled as jit

        model = adapter.model if adapter is not None else None
        cols, round_arr, skip_arr, ignored, stuck, events = (
            jit.terminating_fleet(
                list(id_lists), scheduler, seed, max_rounds,
                model=model, instance_offset=instance_offset,
                watchdog=watchdog,
            )
        )
        rounds = int(round_arr.max())
        skips = int(skip_arr.sum())
        _merge_compiled_events(adapter, events)
        rho_cw_rows = cols["rho_cw"].tolist()
        rho_ccw_rows = cols["rho_ccw"].tolist()
        sigma_cw_rows = cols["sigma_cw"].tolist()
        sigma_ccw_rows = cols["sigma_ccw"].tolist()
        leader_rows = cols["out_leader"].tolist()
        term_rows = cols["terminated"].tolist()
        term_sent_rows = cols["term_sent"].tolist()
        totals = cols["total"].tolist()
        unfinished = stuck.tolist()
    elif resolved == "numpy":
        ids_arr = _np.asarray(id_lists, dtype=_np.int64)
        cols, total, rounds, skips, ignored, stuck = _np_terminating(
            ids_arr,
            scheduler,
            seed,
            max_rounds,
            observer=observer,
            fault=adapter,
            instance_offset=instance_offset,
            watchdog=watchdog,
        )
        rho_cw_rows = cols.rho_cw.tolist()
        rho_ccw_rows = cols.rho_ccw.tolist()
        sigma_cw_rows = cols.sigma_cw.tolist()
        sigma_ccw_rows = cols.sigma_ccw.tolist()
        leader_rows = cols.out_leader.tolist()
        term_rows = cols.terminated.tolist()
        term_sent_rows = cols.term_sent.tolist()
        totals = total.tolist()
        unfinished = stuck.tolist()
    else:
        rho_cw_rows, rho_ccw_rows, leader_rows, term_rows, totals = [], [], [], [], []
        sigma_cw_rows, sigma_ccw_rows, term_sent_rows = [], [], []
        unfinished = []
        rounds = skips = ignored = 0
        for b, ids in enumerate(id_lists):
            states, out_b, total_b, rounds_b, skips_b, ignored_b, stuck_b = (
                _py_terminating_one(
                    list(ids),
                    scheduler,
                    seed,
                    max_rounds,
                    b,
                    observer=observer,
                    fault=adapter,
                    instance_offset=instance_offset,
                    watchdog=watchdog,
                )
            )
            rho_cw_rows.append([st.rho_cw for st in states])
            rho_ccw_rows.append([st.rho_ccw for st in states])
            sigma_cw_rows.append([st.sigma_cw for st in states])
            sigma_ccw_rows.append([st.sigma_ccw for st in states])
            term_sent_rows.append([st.term_pulse_sent for st in states])
            leader_rows.append(out_b)
            term_rows.append([st.terminated for st in states])
            totals.append(total_b)
            unfinished.append(stuck_b)
            rounds = max(rounds, rounds_b)
            skips += skips_b
            ignored += ignored_b
    states_rows = [
        [
            LeaderState.LEADER if is_leader else LeaderState.NON_LEADER
            for is_leader in row
        ]
        for row in leader_rows
    ]
    return FleetResult(
        algorithm="terminating",
        backend=resolved,
        scheduler=scheduler,
        ids=[list(ids) for ids in id_lists],
        leaders=[[v for v, flag in enumerate(row) if flag] for row in leader_rows],
        states=states_rows,
        total_pulses=totals,
        rho_cw=rho_cw_rows,
        rho_ccw=rho_ccw_rows,
        terminated=term_rows,
        rounds=rounds,
        lap_skips=skips,
        ignored_deliveries=ignored,
        sigma_cw=sigma_cw_rows,
        sigma_ccw=sigma_ccw_rows,
        term_pulse_sent=term_sent_rows,
        unfinished=unfinished,
        fault_events=dict(adapter.events) if adapter is not None else None,
    )


# ---------------------------------------------------------------------------
# Algorithm 3 (non-oriented) — two independent directional warmup-kernel
# instances over per-direction virtual IDs; verdict/orientation are the
# kernel's `stabilized_verdict`, a pure function of the final counters.
# ---------------------------------------------------------------------------


def run_nonoriented_fleet(
    id_lists: Sequence[Sequence[int]],
    flip_lists: Optional[Sequence[Sequence[bool]]] = None,
    scheme: Any = "successor",
    require_unique_ids: bool = True,
    backend: str = "auto",
    scheduler: str = "lockstep",
    seed: int = 0,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    faults: Optional[FaultModel] = None,
    observer: Optional[FleetObserver] = None,
    instance_offset: int = 0,
    watchdog_rounds: Optional[int] = None,
) -> FleetResult:
    """Run a fleet of independent Algorithm 3 executions.

    Args:
        id_lists: Per-instance clockwise IDs (duplicates allowed when
            ``require_unique_ids=False``, as the Theorem 3 pipeline needs).
        flip_lists: Per-instance port flips; ``None`` means all-unflipped
            rings, matching :func:`run_nonoriented`.
        scheme: :class:`~repro.core.kernels.nonoriented.IdScheme` or its
            string value (``"successor"`` / ``"doubled"``).
        faults: Optional :class:`~repro.faults.model.FaultModel` compiled
            onto both directional runs (CW channels key at base 0, CCW
            at base ``n``, matching the seeded scheduler's layout).
        observer / instance_offset / watchdog_rounds: As in
            :func:`run_warmup_fleet`; the observer sees each directional
            run separately, with direction data in the CW view slots.

    A pulse travelling clockwise arrives at node ``v``'s CCW port, so the
    governing virtual ID of the CW direction at ``v`` is
    ``virtual_ids[cw_port(v)]`` — the fleet keeps *directional* counters
    and maps them back to the port-indexed view at the end.
    """
    from repro.core.common import LeaderState
    from repro.core.kernels import nonoriented as kernel

    _check_scheduler(scheduler)
    resolved = _resolve_backend(backend)
    B, n = _check_fleet(id_lists, unique=require_unique_ids)
    adapters = _fault_adapters(faults, n, "nonoriented")
    adapter_cw, adapter_ccw = adapters if adapters is not None else (None, None)
    watchdog = _auto_watchdog(watchdog_rounds, adapters, n)
    scheme_name = getattr(scheme, "value", scheme)
    if scheme_name not in ("successor", "doubled"):
        raise ConfigurationError(f"unknown virtual-ID scheme {scheme!r}")
    id_scheme = kernel.coerce_scheme(scheme_name)
    if flip_lists is None:
        flip_lists = [[False] * n for _ in range(B)]
    flips = [[bool(f) for f in row] for row in flip_lists]
    if len(flips) != B or any(len(row) != n for row in flips):
        raise ConfigurationError("flip_lists must match id_lists in shape")
    # Ground-truth ports: cw_port(v) = 0 if flipped else 1 (ring.py).
    cw_ports = [[0 if f else 1 for f in row] for row in flips]
    gov_cw = [
        [id_scheme.virtual_ids(ids[v])[cw_ports[b][v]] for v in range(n)]
        for b, ids in enumerate(id_lists)
    ]
    gov_ccw = [
        [id_scheme.virtual_ids(ids[v])[1 - cw_ports[b][v]] for v in range(n)]
        for b, ids in enumerate(id_lists)
    ]
    resolved = _compiled_downgrade(resolved, observer, adapters)
    if resolved == "compiled":
        rho_cw_rows, sigma_cw_rows, totals_cw, rounds_cw, skips_cw, stuck_cw = (
            _compiled_warmup_direction(
                gov_cw, +1, scheduler, seed, 0, max_rounds,
                adapter_cw, instance_offset, watchdog,
            )
        )
        rho_ccw_rows, sigma_ccw_rows, totals_ccw, rounds_ccw, skips_ccw, stuck_ccw = (
            _compiled_warmup_direction(
                gov_ccw, -1, scheduler, seed, n, max_rounds,
                adapter_ccw, instance_offset, watchdog,
            )
        )
        totals = [a + b for a, b in zip(totals_cw, totals_ccw)]
        # Per-instance pairing like the python backend: each instance's
        # two directional runs are sequential, so its round count is the
        # sum, and the fleet count is the max over instances.
        rounds = max(a + b for a, b in zip(rounds_cw, rounds_ccw))
        skips = sum(skips_cw) + sum(skips_ccw)
        unfinished = [a or b for a, b in zip(stuck_cw, stuck_ccw)]
    elif resolved == "numpy":
        rho_cw, sigma_cw, total_cw, rounds_cw, skips_cw, stuck_cw = (
            _np_warmup_direction(
                _np.asarray(gov_cw, dtype=_np.int64), +1, scheduler, seed, 0,
                max_rounds, faults=adapter_cw, observer=observer,
                instance_offset=instance_offset, watchdog=watchdog,
                algorithm="nonoriented",
            )
        )
        rho_ccw, sigma_ccw, total_ccw, rounds_ccw, skips_ccw, stuck_ccw = (
            _np_warmup_direction(
                _np.asarray(gov_ccw, dtype=_np.int64), -1, scheduler, seed, n,
                max_rounds, faults=adapter_ccw, observer=observer,
                instance_offset=instance_offset, watchdog=watchdog,
                algorithm="nonoriented",
            )
        )
        rho_cw_rows = rho_cw.tolist()
        rho_ccw_rows = rho_ccw.tolist()
        sigma_cw_rows = sigma_cw.tolist()
        sigma_ccw_rows = sigma_ccw.tolist()
        totals = (total_cw + total_ccw).tolist()
        rounds = rounds_cw + rounds_ccw
        skips = skips_cw + skips_ccw
        unfinished = (stuck_cw | stuck_ccw).tolist()
    else:
        rho_cw_rows, rho_ccw_rows, totals = [], [], []
        sigma_cw_rows, sigma_ccw_rows = [], []
        unfinished = []
        rounds = skips = 0
        for b in range(B):
            rho_cw_b, sigma_cw_b, total_cw_b, rounds_a, skips_a, stuck_a = (
                _py_warmup_direction_one(
                    gov_cw[b], +1, scheduler, seed, 0, max_rounds, b,
                    faults=adapter_cw, observer=observer,
                    instance_offset=instance_offset, watchdog=watchdog,
                    algorithm="nonoriented",
                )
            )
            rho_ccw_b, sigma_ccw_b, total_ccw_b, rounds_b, skips_b, stuck_b = (
                _py_warmup_direction_one(
                    gov_ccw[b], -1, scheduler, seed, n, max_rounds, b,
                    faults=adapter_ccw, observer=observer,
                    instance_offset=instance_offset, watchdog=watchdog,
                    algorithm="nonoriented",
                )
            )
            rho_cw_rows.append(rho_cw_b)
            rho_ccw_rows.append(rho_ccw_b)
            sigma_cw_rows.append(sigma_cw_b)
            sigma_ccw_rows.append(sigma_ccw_b)
            totals.append(total_cw_b + total_ccw_b)
            unfinished.append(stuck_a or stuck_b)
            rounds = max(rounds, rounds_a + rounds_b)
            skips += skips_a + skips_b
    # Port-indexed view + verdicts (the kernel's stabilized_verdict).
    states: List[List[Any]] = []
    labels: List[List[Optional[int]]] = []
    consistent: List[bool] = []
    for b, ids in enumerate(id_lists):
        row_states: List[Any] = []
        row_labels: List[Optional[int]] = []
        for v in range(n):
            # CW pulses arrive at the CCW port; with cw_port==1 (unflipped)
            # that is Port_0, with cw_port==0 (flipped) it is Port_1.
            if flips[b][v]:
                rho0, rho1 = rho_ccw_rows[b][v], rho_cw_rows[b][v]
            else:
                rho0, rho1 = rho_cw_rows[b][v], rho_ccw_rows[b][v]
            id_one = id_scheme.virtual_ids(ids[v])[1]
            verdict, label = kernel.stabilized_verdict(rho0, rho1, id_one)
            row_states.append(verdict)
            row_labels.append(label)
        states.append(row_states)
        labels.append(row_labels)
        if any(label is None for label in row_labels):
            consistent.append(False)
        else:
            consistent.append(
                all(row_labels[v] == cw_ports[b][v] for v in range(n))
                or all(row_labels[v] == 1 - cw_ports[b][v] for v in range(n))
            )
    return FleetResult(
        algorithm="nonoriented",
        backend=resolved,
        scheduler=scheduler,
        ids=[list(ids) for ids in id_lists],
        leaders=[
            [v for v, s in enumerate(row) if s is LeaderState.LEADER]
            for row in states
        ],
        states=states,
        total_pulses=totals,
        rho_cw=rho_cw_rows,
        rho_ccw=rho_ccw_rows,
        cw_port_labels=labels,
        orientation_consistent=consistent,
        flips=flips,
        rounds=rounds,
        lap_skips=skips,
        sigma_cw=sigma_cw_rows,
        sigma_ccw=sigma_ccw_rows,
        unfinished=unfinished,
        fault_events=(
            None
            if adapters is None
            else _merge_fault_events(adapter_cw.events, adapter_ccw.events)
        ),
    )


# ---------------------------------------------------------------------------
# Theorem 3 pipeline — Algorithm 4 sampling feeding Algorithm 3, one seeded
# attempt per instance.  The per-seed RNG protocol replicates run_anonymous
# exactly (sample IDs first, then the port flips, from one random.Random).
# ---------------------------------------------------------------------------


@dataclass
class AnonymousFleetResult:
    """A fleet of Theorem-3 attempts: per-seed samples plus the election."""

    seeds: List[int]
    sampled_ids: List[List[int]]
    max_unique: List[bool]
    election: FleetResult

    @property
    def succeeded(self) -> List[bool]:
        """Per instance: exactly one leader and a consistent orientation."""
        return [
            len(self.election.leaders[b]) == 1
            and bool(self.election.orientation_consistent[b])
            for b in range(self.election.size)
        ]


def run_anonymous_fleet(
    n: int,
    seeds: Sequence[int],
    c: float = 2.0,
    scheme: Any = "successor",
    backend: str = "auto",
    scheduler: str = "lockstep",
    sched_seed: int = 0,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> AnonymousFleetResult:
    """Run the Theorem-3 pipeline once per seed, as one fleet.

    Each seed drives its instance exactly like :func:`run_anonymous`:
    ``random.Random(seed)`` samples ``n`` IDs via Algorithm 4, then the
    ``n`` port flips — so per-seed samples (and hence outcomes) are
    identical between the scalar pipeline and the fleet.
    """
    from repro.ids.sampling import GeometricIdSampler, max_is_unique

    if n < 1:
        raise ConfigurationError(f"need at least one node, got n={n}")
    if not seeds:
        raise ConfigurationError("need at least one seed")
    sampler = GeometricIdSampler(c=c)
    sampled_lists: List[List[int]] = []
    flip_lists: List[List[bool]] = []
    for seed in seeds:
        rng = random.Random(seed)
        sampled_lists.append(sampler.sample_many(n, rng))
        flip_lists.append([rng.random() < 0.5 for _ in range(n)])
    election = run_nonoriented_fleet(
        sampled_lists,
        flip_lists=flip_lists,
        scheme=scheme,
        require_unique_ids=False,
        backend=backend,
        scheduler=scheduler,
        seed=sched_seed,
        max_rounds=max_rounds,
    )
    return AnonymousFleetResult(
        seeds=list(seeds),
        sampled_ids=sampled_lists,
        max_unique=[max_is_unique(ids) for ids in sampled_lists],
        election=election,
    )


@dataclass
class EarFleetResult:
    """A fleet of ear-walk elections: virtual-ring rows plus the physical view.

    The fleet simulates the graph's *oriented virtual ring* (one warm-up
    row of length ``L`` per instance — the ear kernel is Algorithm 1 over
    virtual IDs, so the whole compiled/numpy/python tier applies
    unchanged).  The physical view is reconstructed through the routing:
    per-vertex verdicts, and per-*port* pulse counters laid out in the
    topology's CSR port-offset table (``port_offsets[v] + p`` indexes
    vertex ``v``'s port ``p``).
    """

    routing: Any  # repro.core.kernels.ear.EarRouting
    virtual: FleetResult
    leaders: List[Optional[int]]
    port_rho: List[List[int]]
    port_sigma: List[List[int]]

    @property
    def size(self) -> int:
        return self.virtual.size

    @property
    def expected_leaders(self) -> List[int]:
        """Physical argmax vertex per instance (the contract's winner)."""
        return [
            max(range(len(ids)), key=lambda v: ids[v])
            for ids in self.physical_ids
        ]

    @property
    def physical_ids(self) -> List[List[int]]:
        """Recover each instance's per-vertex IDs from occurrence-0 vids."""
        stride = self.routing.stride
        firsts = [positions[0] for positions in self.routing.occurrences]
        # Occurrence 0 of vertex v carries vid = ID_v * stride exactly.
        return [[vids[j] // stride for j in firsts] for vids in self.virtual.ids]


def run_ear_fleet(
    graph: Any,
    id_lists: Sequence[Sequence[int]],
    backend: str = "auto",
    scheduler: str = "lockstep",
    seed: int = 0,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    faults: Optional[FaultModel] = None,
    observer: Optional[FleetObserver] = None,
    instance_offset: int = 0,
    watchdog_rounds: Optional[int] = None,
) -> EarFleetResult:
    """Run a fleet of ear-walk elections on one 2-edge-connected graph.

    All instances share the graph (hence the walk and the routing); each
    row supplies its own per-vertex IDs.  Refuses bridge-containing
    graphs with the bridge edge as witness, exactly like the engine path.

    Delegation is the whole implementation: the ear kernel *is* the
    warm-up kernel over virtual IDs, so this wires
    :func:`repro.core.kernels.ear.virtual_ids` rows into
    :func:`run_warmup_fleet` and folds the virtual outcome back through
    the routing (physical leaders, CSR per-port counters).
    """
    from repro.core.common import validate_positive_ids, validate_unique_ids
    from repro.core.kernels import ear as ear_kernel
    from repro.graphs.connectivity import require_two_edge_connected

    if not id_lists:
        raise ConfigurationError("need at least one instance")
    for ids in id_lists:
        validate_positive_ids(ids)
        validate_unique_ids(ids)
        if len(ids) != graph.n:
            raise ConfigurationError(
                f"graph has {graph.n} vertices but {len(ids)} IDs were given"
            )
    require_two_edge_connected(graph)
    routing = ear_kernel.build_routing(graph)
    vid_lists = [ear_kernel.virtual_ids(ids, routing) for ids in id_lists]
    virtual = run_warmup_fleet(
        vid_lists,
        backend=backend,
        scheduler=scheduler,
        seed=seed,
        max_rounds=max_rounds,
        faults=faults,
        observer=observer,
        instance_offset=instance_offset,
        watchdog_rounds=watchdog_rounds,
    )
    walk = routing.walk
    topology = routing.topology
    leaders: List[Optional[int]] = []
    for virtual_leaders in virtual.leaders:
        vertices = sorted({walk[j] for j in virtual_leaders})
        leaders.append(vertices[0] if len(vertices) == 1 else None)
    total_ports = topology.total_ports
    port_rho: List[List[int]] = []
    port_sigma: List[List[int]] = []
    in_slots = [
        topology.port_slot(walk[j], routing.in_ports[j])
        for j in range(routing.length)
    ]
    out_slots = [
        topology.port_slot(walk[j], routing.out_ports[j])
        for j in range(routing.length)
    ]
    sigma_rows = virtual.sigma_cw or [[0] * routing.length] * virtual.size
    for b in range(virtual.size):
        rho_row = [0] * total_ports
        sigma_row = [0] * total_ports
        for j in range(routing.length):
            rho_row[in_slots[j]] += virtual.rho_cw[b][j]
            sigma_row[out_slots[j]] += sigma_rows[b][j]
        port_rho.append(rho_row)
        port_sigma.append(sigma_row)
    return EarFleetResult(
        routing=routing,
        virtual=virtual,
        leaders=leaders,
        port_rho=port_rho,
        port_sigma=port_sigma,
    )
