"""Schedulers: the asynchronous adversary.

In the asynchronous model, message delays are arbitrary but finite and the
only hard guarantee is per-channel FIFO order.  The engine realizes the
adversary as a *scheduler*: whenever at least one channel has an in-flight
message, the scheduler picks which channel delivers next.  Quantified over
all schedulers, this enumerates exactly the executions the model allows
(any interleaving across channels, FIFO within each channel, no message
delayed forever).

The paper's correctness statements are universally quantified over
schedules; the test-suite therefore sweeps every algorithm across the
schedulers here plus hypothesis-generated :class:`ChoiceSequenceScheduler`
instances.

A scheduler instance is **stateful and single-use**: construct a fresh one
per engine run (or call :func:`all_standard_schedulers` again).
"""

from __future__ import annotations

import abc
import random
from typing import Callable, Dict, Iterable, Iterator, List, Sequence

from repro.simulator.channel import Channel


class Scheduler(abc.ABC):
    """Chooses which non-empty channel delivers its next (FIFO-head) message."""

    @abc.abstractmethod
    def choose(self, candidates: Sequence[Channel]) -> int:
        """Return an index into ``candidates`` (all guaranteed non-empty).

        The engine delivers the FIFO head of the chosen channel.  The
        candidate list is ordered by ``channel_id`` and always non-empty.
        """


class GlobalFifoScheduler(Scheduler):
    """Deliver pulses one by one in the global order they were sent.

    This is the scheduler of the paper's Definition 21 (solitude patterns):
    pulses are delivered in send order, with ties — which cannot occur, as
    send sequence numbers are unique — notionally broken in favour of CW
    channels (even channel ids in our ring wiring).
    """

    def choose(self, candidates: Sequence[Channel]) -> int:
        best = 0
        best_key = (candidates[0].peek_send_seq(), candidates[0].channel_id)
        for i, channel in enumerate(candidates[1:], start=1):
            key = (channel.peek_send_seq(), channel.channel_id)
            if key < best_key:
                best, best_key = i, key
        return best


class LifoScheduler(Scheduler):
    """Deliver the *most recently sent* available message first.

    Per-channel FIFO is still enforced (the engine only ever delivers
    channel heads); this adversary maximally reorders *across* channels.
    """

    def choose(self, candidates: Sequence[Channel]) -> int:
        best = 0
        best_key = (-candidates[0].peek_send_seq(), candidates[0].channel_id)
        for i, channel in enumerate(candidates[1:], start=1):
            key = (-channel.peek_send_seq(), channel.channel_id)
            if key < best_key:
                best, best_key = i, key
        return best


class RandomScheduler(Scheduler):
    """Pick a uniformly random non-empty channel; seeded for reproducibility."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def choose(self, candidates: Sequence[Channel]) -> int:
        return self._rng.randrange(len(candidates))


class RoundRobinScheduler(Scheduler):
    """Rotate across channel ids, delivering from the next non-empty one."""

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, candidates: Sequence[Channel]) -> int:
        ids = [channel.channel_id for channel in candidates]
        for offset in range(max(ids) + 1):
            wanted = (self._cursor + offset) % (max(ids) + 1)
            if wanted in ids:
                self._cursor = wanted + 1
                return ids.index(wanted)
        return 0  # unreachable: candidates is non-empty


class AdversarialLagScheduler(Scheduler):
    """Starve a chosen set of channels for as long as legally possible.

    Channels matching ``lag_predicate`` are only delivered from when *no*
    other channel has messages in flight.  With the ring wiring's
    convention (CW channels have even ids), lagging all CCW channels
    stresses Algorithm 2's requirement that the CCW instance trail the CW
    instance; lagging CW channels is the opposite extreme.

    Note this adversary is legal: no message is delayed forever, because a
    starved channel is eventually the only non-empty one (quiescence of the
    favoured direction forces progress).
    """

    def __init__(
        self,
        lag_predicate: Callable[[Channel], bool],
        tie_breaker: "Scheduler | None" = None,
    ) -> None:
        self._lag = lag_predicate
        self._tie_breaker = tie_breaker or GlobalFifoScheduler()

    @classmethod
    def lagging_ccw(cls) -> "AdversarialLagScheduler":
        """Starve CCW channels (odd channel ids in the ring wiring)."""
        return cls(lambda channel: channel.channel_id % 2 == 1)

    @classmethod
    def lagging_cw(cls) -> "AdversarialLagScheduler":
        """Starve CW channels (even channel ids in the ring wiring)."""
        return cls(lambda channel: channel.channel_id % 2 == 0)

    def choose(self, candidates: Sequence[Channel]) -> int:
        favoured = [
            (i, channel)
            for i, channel in enumerate(candidates)
            if not self._lag(channel)
        ]
        pool = favoured if favoured else list(enumerate(candidates))
        sub_choice = self._tie_breaker.choose([channel for _, channel in pool])
        return pool[sub_choice][0]


class LongestRunScheduler(Scheduler):
    """Deliver from the channel holding the most in-flight pulses.

    Ties break towards the lowest channel id, keeping the scheduler fully
    deterministic.  It is a legal adversary like any other (runs are
    finite, so no pulse is delayed forever), but its purpose is
    throughput: paired with the batched engine it *snowballs* FIFO runs —
    delivering the fullest channel hands the receiver a maximal run, whose
    relays land as one even larger run on the next channel — so each
    scheduler step moves a block of up to ``n`` pulses instead of one.
    """

    def choose(self, candidates: Sequence[Channel]) -> int:
        best = 0
        best_key = (-candidates[0].pending, candidates[0].channel_id)
        for i, channel in enumerate(candidates[1:], start=1):
            key = (-channel.pending, channel.channel_id)
            if key < best_key:
                best, best_key = i, key
        return best


class ChoiceSequenceScheduler(Scheduler):
    """Drive scheduling from an explicit integer sequence (replay / fuzzing).

    Each decision consumes the next integer ``c`` and picks
    ``candidates[c % len(candidates)]``.  When the sequence is exhausted the
    scheduler falls back to global-FIFO, guaranteeing runs always finish.
    Hypothesis generates the sequences in the property-based tests, which
    lets shrinking find minimal adversarial schedules.
    """

    def __init__(self, choices: Iterable[int]) -> None:
        self._choices: Iterator[int] = iter(choices)
        self._fallback = GlobalFifoScheduler()
        self.decisions_used = 0

    def choose(self, candidates: Sequence[Channel]) -> int:
        try:
            choice = next(self._choices)
        except StopIteration:
            return self._fallback.choose(candidates)
        self.decisions_used += 1
        return choice % len(candidates)


def all_standard_schedulers(seed: int = 0) -> Dict[str, Scheduler]:
    """Fresh instances of every deterministic-adversary scheduler family.

    Returns a name->scheduler mapping convenient for parametrized sweeps.
    """
    return {
        "global_fifo": GlobalFifoScheduler(),
        "lifo": LifoScheduler(),
        "random": RandomScheduler(seed=seed),
        "round_robin": RoundRobinScheduler(),
        "lag_ccw": AdversarialLagScheduler.lagging_ccw(),
        "lag_cw": AdversarialLagScheduler.lagging_cw(),
        "longest_run": LongestRunScheduler(),
    }
