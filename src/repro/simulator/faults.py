"""Fault injection beyond the model: dropping and duplicating channels.

The content-oblivious model (paper, Section 2) is precise about what the
noise may do: corrupt *content* only — "pulses cannot be dropped or
injected by the channel."  This module deliberately violates those two
assumptions so the test-suite can demonstrate they are load-bearing:

* with **pulse loss**, Algorithm 1/2's conservation invariants (Lemma 6)
  collapse — executions end in wrong leaders, missing terminations, or
  nodes stuck forever awaiting pulses that no longer exist;
* with **pulse injection** (spontaneous duplication), received counts
  overshoot IDs and multiple or zero leaders emerge.

These are *negative* experiments: they reproduce the paper's modelling
discussion, not its theorems.  The faulty channels still honour FIFO
order for the pulses they do deliver.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.simulator.channel import Channel
from repro.simulator.network import Network


@dataclass
class FaultPlan:
    """A seeded, reproducible description of which sends go wrong.

    Each send is independently dropped with probability ``drop_rate`` or
    duplicated with probability ``duplicate_rate`` (drop wins if both
    fire).  Determinism comes from the seed, so a failing ring is exactly
    replayable.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name, rate in (("drop_rate", self.drop_rate), ("duplicate_rate", self.duplicate_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")
        if self.drop_rate == 0.0 and self.duplicate_rate == 0.0:
            raise ConfigurationError("a FaultPlan must inject at least one fault kind")


class FaultyChannel(Channel):
    """A channel that violates the model per a :class:`FaultPlan`.

    Attributes:
        dropped: Number of messages silently destroyed so far.
        duplicated: Number of messages delivered twice so far.
    """

    def __init__(self, base: Channel, plan: FaultPlan) -> None:
        super().__init__(
            channel_id=base.channel_id,
            src=base.src,
            dst=base.dst,
            defective=base.defective,
        )
        self._plan = plan
        self._rng = random.Random((plan.seed << 16) ^ base.channel_id)
        self.dropped = 0
        self.duplicated = 0

    def enqueue(self, send_seq: int, content: Any = None) -> None:
        roll = self._rng.random()
        if roll < self._plan.drop_rate:
            self.dropped += 1
            return  # the pulse evaporates: model violation #1
        if roll < self._plan.drop_rate + self._plan.duplicate_rate:
            self.duplicated += 1
            super().enqueue(send_seq, content)  # injected twin: violation #2
        super().enqueue(send_seq, content)


def apply_fault_plan(network: Network, plan: FaultPlan) -> Network:
    """Replace every channel of ``network`` with a faulty twin, in place.

    Must be called before the engine run starts (queues must be empty).
    Returns the same network for chaining.
    """
    for channel in network.channels:
        if channel.pending:
            raise ConfigurationError(
                "fault plans must be applied before any message is sent"
            )
    network.channels = [
        FaultyChannel(channel, plan) for channel in network.channels
    ]
    return network


def total_faults(network: Network) -> tuple:
    """(dropped, duplicated) across all channels of a faulted network."""
    dropped = sum(
        channel.dropped
        for channel in network.channels
        if isinstance(channel, FaultyChannel)
    )
    duplicated = sum(
        channel.duplicated
        for channel in network.channels
        if isinstance(channel, FaultyChannel)
    )
    return dropped, duplicated
