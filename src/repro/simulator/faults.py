"""Deprecated location: fault injection moved to :mod:`repro.faults`.

This module used to own the event-channel fault mechanism (a seeded
``random.Random`` stream per channel).  PR 5 unified all fault semantics
behind the declarative :class:`~repro.faults.model.FaultModel`; this
shim keeps the historical import path and names working:

* ``FaultPlan`` *is* :class:`~repro.faults.model.FaultModel` — the old
  ``(drop_rate, duplicate_rate, seed)`` constructor is a subset of the
  model's fields.  Note the old class rejected the all-zero plan; the
  model accepts it as the explicit no-op (``FaultPlan.none()``), and the
  CLI downgrades "no faults requested" to a warning.
* ``FaultyChannel`` / ``apply_fault_plan`` / ``total_faults`` are the
  event-backend compiler from :mod:`repro.faults.channel`.

The negative-experiment framing (drops/injection demonstrate the
paper's Section 2 assumptions are load-bearing) now lives in
``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

from repro.faults.channel import (  # noqa: F401  (re-exported)
    FAULT_SPURIOUS_BIT,
    FAULT_TWIN_BIT,
    FaultyChannel,
    apply_fault_model,
    fault_counts,
    is_fault_seq,
    total_faults,
)
from repro.faults.model import FaultModel
from repro.simulator.network import Network

#: Historical name: a fault plan is now the unified declarative model.
FaultPlan = FaultModel


def apply_fault_plan(network: Network, plan: FaultModel) -> Network:
    """Deprecated alias for :func:`repro.faults.channel.apply_fault_model`."""
    return apply_fault_model(network, plan)


__all__ = [
    "FAULT_SPURIOUS_BIT",
    "FAULT_TWIN_BIT",
    "FaultPlan",
    "FaultyChannel",
    "apply_fault_model",
    "apply_fault_plan",
    "fault_counts",
    "is_fault_seq",
    "total_faults",
]
