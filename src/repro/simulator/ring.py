"""Ring topologies: oriented and non-oriented, including n=1 and n=2.

Terminology (paper, Section 2).  In a ring, each node talks to its two
neighbors through ``Port_0`` and ``Port_1``.  Fix a global clockwise (CW)
walk ``0 -> 1 -> ... -> n-1 -> 0``.  A node's *CW port* is the one leading
to its CW neighbor; a pulse repeatedly forwarded out of CW ports travels
clockwise.  Note that CW pulses are **sent from CW ports but arrive at CCW
ports** and vice versa.

* In an *oriented* ring, ``Port_1`` of every node is its CW port.
* In a *non-oriented* ring, each node's ports may be flipped arbitrarily;
  the per-node flip bits are adversarial inputs.

Degenerate rings are first-class citizens because the paper's lower bound
needs them: ``n == 1`` wires a node's CW port to its own CCW port, and
``n == 2`` uses two parallel edges (a 2-cycle multigraph).

Wiring.  For each edge ``i -- i+1 (mod n)`` we create two directed
channels: the CW channel ``i -> i+1`` and the CCW channel ``i+1 -> i``.
With flips, node ``v``'s CW port is ``Port_1`` if ``flips[v]`` is False and
``Port_0`` otherwise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.simulator.network import Network
from repro.simulator.node import Node, PORT_ONE, PORT_ZERO
from repro.topology import Topology, ring_convention


@dataclass(frozen=True)
class RingTopology:
    """A constructed ring: the network plus ground-truth orientation data.

    Attributes:
        network: The wired :class:`~repro.simulator.network.Network`.
        flips: Per-node port flips. ``flips[v]`` False means ``Port_1`` is
            node ``v``'s CW port (the oriented-ring convention).
        defective: Whether the ring's channels erase content.
    """

    network: Network
    flips: Tuple[bool, ...]
    defective: bool

    @property
    def n(self) -> int:
        """Number of nodes on the ring."""
        return len(self.network.nodes)

    def cw_port(self, node: int) -> int:
        """Ground-truth CW port of ``node`` (the port towards ``node+1``).

        This is *analysis-only* information: algorithm code on a
        non-oriented ring must never consult it.  Tests use it to check
        that Algorithm 3's computed orientation matches reality.
        """
        return PORT_ZERO if self.flips[node] else PORT_ONE

    def ccw_port(self, node: int) -> int:
        """Ground-truth CCW port of ``node`` (the port towards ``node-1``)."""
        return PORT_ONE if self.flips[node] else PORT_ZERO

    def cw_neighbor(self, node: int) -> int:
        """Index of the clockwise neighbor."""
        return (node + 1) % self.n

    def ccw_neighbor(self, node: int) -> int:
        """Index of the counterclockwise neighbor."""
        return (node - 1) % self.n

    @property
    def topology(self) -> Topology:
        """The abstract :class:`~repro.topology.Topology` of this ring."""
        return ring_convention(self.flips)


def _build_ring(
    nodes: Sequence[Node],
    flips: Sequence[bool],
    defective: bool,
) -> RingTopology:
    """Wire ``2n`` directed channels realizing the (possibly flipped) ring.

    The channel table (CW channel ``2i``, CCW channel ``2i+1`` per ring
    edge) comes from :func:`repro.topology.ring_convention` — the single
    wiring seam — so its byte-identity pins cover every ring built here.
    """
    n = len(nodes)
    if len(flips) != n:
        raise ConfigurationError(
            f"got {len(flips)} flips for {n} nodes; need exactly one each"
        )
    topology = ring_convention(flips)
    network = topology.wire(nodes, defective=defective)
    return RingTopology(network=network, flips=topology.flips, defective=defective)


def build_oriented_ring(
    nodes: Sequence[Node], defective: bool = True
) -> RingTopology:
    """Build an oriented ring: every node's ``Port_1`` leads clockwise.

    Args:
        nodes: Node objects in clockwise order.
        defective: Erase message content (the content-oblivious model).
    """
    return _build_ring(nodes, [False] * len(nodes), defective)


def build_nonoriented_ring(
    nodes: Sequence[Node],
    flips: Optional[Sequence[bool]] = None,
    rng: Optional[random.Random] = None,
    defective: bool = True,
) -> RingTopology:
    """Build a ring with arbitrary (given or random) per-node port flips.

    Args:
        nodes: Node objects in clockwise order.
        flips: Optional explicit flip bits; ``flips[v]`` True swaps node
            ``v``'s ports so ``Port_0`` leads clockwise.
        rng: Source of randomness for flips when ``flips`` is None;
            defaults to the :data:`~repro.determinism.STREAM_RING_FLIPS`
            counter stream (deterministic per call, per process — never
            ``os.urandom``).
        defective: Erase message content (the content-oblivious model).
    """
    if flips is None:
        if rng is None:
            from repro.determinism import STREAM_RING_FLIPS, counter_rng

            rng = counter_rng(STREAM_RING_FLIPS)
        flips = [rng.random() < 0.5 for _ in nodes]
    return _build_ring(nodes, flips, defective)


def all_flip_patterns(n: int) -> List[Tuple[bool, ...]]:
    """Enumerate all ``2**n`` port-flip patterns (for exhaustive small-n tests)."""
    patterns: List[Tuple[bool, ...]] = []
    for mask in range(1 << n):
        patterns.append(tuple(bool((mask >> v) & 1) for v in range(n)))
    return patterns
