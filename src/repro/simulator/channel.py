"""Directed FIFO channels, optionally fully defective.

A :class:`Channel` connects one (node, port) endpoint to another and
delivers messages in FIFO order.  In the paper's model (Section 2) every
channel is *fully defective*: the content of each message is erased by
noise, leaving an empty message called a *pulse*.  Pulses can be neither
dropped nor injected by the channel.

The same channel class, with ``defective=False``, carries content intact;
the baseline (content-carrying) leader-election algorithms run on such
channels so that both worlds share one engine.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Tuple

# In-flight messages are stored as plain (send_seq, content) tuples: the
# channel queue is the hottest data structure in the simulator and object
# wrappers measurably slow multi-million-pulse runs.


@dataclass
class Channel:
    """A directed, FIFO, loss-free channel between two node ports.

    Attributes:
        channel_id: Unique identifier within a :class:`~repro.simulator.network.Network`.
        src: ``(node_index, port)`` of the sending endpoint.
        dst: ``(node_index, port)`` of the receiving endpoint.
        defective: When True (the content-oblivious model), the content of
            every message is erased on delivery and receivers observe only
            a pulse (``None``).
    """

    channel_id: int
    src: Tuple[int, int]
    dst: Tuple[int, int]
    defective: bool = True
    _queue: Deque[Tuple[int, Any]] = field(default_factory=deque, repr=False)

    def enqueue(self, send_seq: int, content: Any = None) -> None:
        """Accept a message from the source endpoint."""
        # Defective channels erase content at the boundary (the paper's
        # noise model corrupts content, never existence or order).
        self._queue.append((send_seq, None if self.defective else content))

    def dequeue(self) -> Tuple[int, Any]:
        """Remove and return the oldest message as ``(send_seq, content)``."""
        return self._queue.popleft()

    def peek_send_seq(self) -> int:
        """Sequence number of the oldest in-flight message (FIFO head)."""
        return self._queue[0][0]

    @property
    def pending(self) -> int:
        """Number of messages currently in flight on this channel."""
        return len(self._queue)

    def __bool__(self) -> bool:  # truthy iff it has something to deliver
        return bool(self._queue)
