"""Directed FIFO channels, optionally fully defective.

A :class:`Channel` connects one (node, port) endpoint to another and
delivers messages in FIFO order.  In the paper's model (Section 2) every
channel is *fully defective*: the content of each message is erased by
noise, leaving an empty message called a *pulse*.  Pulses can be neither
dropped nor injected by the channel.

The same channel class, with ``defective=False``, carries content intact;
the baseline (content-carrying) leader-election algorithms run on such
channels so that both worlds share one engine.

Counting mode
-------------

A fully defective channel carries no information beyond *how many* pulses
are in flight and their send order, so its queue admits a compressed
representation: a deque of ``[first_seq, count]`` *runs*, where each run is
a block of pulses with contiguous send sequence numbers.  The batched
engine (``Engine(batched=True)``) switches eligible channels into this
*counting mode* via :meth:`Channel.enable_counting`, which makes
``enqueue_many``/``drain`` O(1) per call regardless of how many pulses
they move.  The representation is exact — ``dequeue`` and
``peek_send_seq`` return the same sequence numbers a tuple-queue would —
so schedulers cannot tell the two modes apart (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, List, Tuple

from repro.exceptions import ConfigurationError

# In-flight messages are stored as plain (send_seq, content) tuples: the
# channel queue is the hottest data structure in the simulator and object
# wrappers measurably slow multi-million-pulse runs.


@dataclass(slots=True)
class Channel:
    """A directed, FIFO, loss-free channel between two node ports.

    Attributes:
        channel_id: Unique identifier within a :class:`~repro.simulator.network.Network`.
        src: ``(node_index, port)`` of the sending endpoint.
        dst: ``(node_index, port)`` of the receiving endpoint.
        defective: When True (the content-oblivious model), the content of
            every message is erased on delivery and receivers observe only
            a pulse (``None``).
        counting: True once :meth:`enable_counting` switched this channel
            to the run-compressed queue representation.
    """

    channel_id: int
    src: Tuple[int, int]
    dst: Tuple[int, int]
    defective: bool = True
    _queue: Deque[Tuple[int, Any]] = field(default_factory=deque, repr=False)
    counting: bool = field(default=False, init=False)
    _runs: Deque[List[int]] = field(default_factory=deque, init=False, repr=False)
    _count: int = field(default=0, init=False, repr=False)

    @property
    def src_node(self) -> int:
        """Index of the node this channel's messages are sent from."""
        return self.src[0]

    @property
    def src_port(self) -> int:
        """Local port of the sending endpoint."""
        return self.src[1]

    @property
    def dst_node(self) -> int:
        """Index of the node this channel delivers to."""
        return self.dst[0]

    @property
    def dst_port(self) -> int:
        """Local port of the receiving endpoint."""
        return self.dst[1]

    def enable_counting(self) -> None:
        """Switch to the run-compressed representation (defective only).

        Only an empty, fully defective channel may switch: content-carrying
        channels need the per-message payloads and a non-empty queue would
        have to be converted in place.
        """
        if not self.defective:
            raise ConfigurationError(
                f"channel {self.channel_id} carries content; counting mode "
                "only represents contentless pulses"
            )
        if self._queue:
            raise ConfigurationError(
                f"channel {self.channel_id} has in-flight messages; enable "
                "counting before the run starts"
            )
        self.counting = True

    def enqueue(self, send_seq: int, content: Any = None) -> None:
        """Accept a message from the source endpoint."""
        if self.counting:
            self._push_run(send_seq, 1)
            return
        # Defective channels erase content at the boundary (the paper's
        # noise model corrupts content, never existence or order).
        self._queue.append((send_seq, None if self.defective else content))

    def enqueue_many(self, first_seq: int, count: int) -> None:
        """Accept ``count`` pulses with contiguous send sequence numbers.

        The batch front door for counting channels (O(1) there); on a
        queue-backed channel it degrades to ``count`` single enqueues.
        Only contentless pulses can be sent in bulk.
        """
        if count < 0:
            raise ConfigurationError(f"cannot enqueue {count} pulses")
        if count == 0:
            return
        if self.counting:
            self._push_run(first_seq, count)
            return
        for offset in range(count):
            self.enqueue(first_seq + offset)

    def _push_run(self, first_seq: int, count: int) -> None:
        runs = self._runs
        if runs:
            last = runs[-1]
            if last[0] + last[1] == first_seq:  # contiguous: extend in place
                last[1] += count
                self._count += count
                return
        runs.append([first_seq, count])
        self._count += count

    def dequeue(self) -> Tuple[int, Any]:
        """Remove and return the oldest message as ``(send_seq, content)``."""
        if not self.counting:
            return self._queue.popleft()
        head = self._runs[0]
        seq = head[0]
        head[0] += 1
        head[1] -= 1
        self._count -= 1
        if not head[1]:
            self._runs.popleft()
        return (seq, None)

    def drain(self) -> int:
        """Remove the entire FIFO run; return how many pulses it held.

        Only meaningful on defective channels (the delivered pulses carry
        no content, so the count is the whole observation).
        """
        if not self.defective:
            raise ConfigurationError(
                f"channel {self.channel_id} carries content; drain() would "
                "discard payloads"
            )
        if self.counting:
            count = self._count
            self._runs.clear()
            self._count = 0
            return count
        count = len(self._queue)
        self._queue.clear()
        return count

    def peek_send_seq(self) -> int:
        """Sequence number of the oldest in-flight message (FIFO head)."""
        if self.counting:
            return self._runs[0][0]
        return self._queue[0][0]

    @property
    def pending(self) -> int:
        """Number of messages currently in flight on this channel."""
        return self._count if self.counting else len(self._queue)

    def __bool__(self) -> bool:  # truthy iff it has something to deliver
        return bool(self._count) if self.counting else bool(self._queue)
