"""The discrete-event engine: runs a network to quiescence.

One engine run is one *execution* in the paper's sense.  The run proceeds
as follows:

1. Every node's ``on_init`` fires (a node "acts once right in the
   beginning").  Because nodes react only to deliveries and initial sends
   depend on no input, initializing all nodes before the first delivery
   loses no generality: an execution where some node starts "late" is
   indistinguishable from one where the scheduler merely postpones all
   deliveries to that node.
2. While any channel holds an in-flight message, the
   :class:`~repro.simulator.scheduler.Scheduler` (the asynchronous
   adversary) picks a non-empty channel and its FIFO head is delivered.
3. When no message is in flight, the network is **quiescent** and the run
   ends.

The engine distinguishes the paper's two end-of-computation notions:

* *termination* — a node explicitly entered a terminating state (it then
  ignores all further pulses and may not send);
* *quiescence* — no pulses in transit anywhere.

*Quiescent termination* (Theorem 1's guarantee) is both at once, with no
pulse ever delivered to a terminated node; the engine records any
violation and can be asked to raise on it (``strict_quiescence=True``).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.exceptions import (
    ProtocolViolation,
    QuiescentTerminationViolation,
    SimulationLimitExceeded,
)
from repro.simulator.channel import Channel
from repro.simulator.events import DeliveryRecord, SendRecord, TerminationRecord
from repro.simulator.network import Network
from repro.simulator.node import Node, NodeAPI, check_port
from repro.simulator.scheduler import GlobalFifoScheduler, Scheduler
from repro.simulator.trace import Trace

InvariantHook = Callable[["Engine"], None]


@dataclass
class RunResult:
    """Outcome of one engine run.

    Attributes:
        quiescent: True iff the run ended with no message in flight (as
            opposed to hitting the step limit, which raises instead).
        steps: Number of deliveries performed.
        total_sent: Total messages sent — the paper's message complexity.
        outputs: Per-node ``output`` values (None if the node never set one).
        terminated: Per-node termination flags.
        termination_order: Node indices in the order they terminated.
        quiescence_violations: Human-readable records of pulses delivered
            to, or left queued for, terminated nodes.
        trace: The full :class:`~repro.simulator.trace.Trace` ledger.
    """

    quiescent: bool
    steps: int
    total_sent: int
    outputs: List[Any]
    terminated: List[bool]
    termination_order: List[int]
    quiescence_violations: List[str]
    trace: Trace

    @property
    def all_terminated(self) -> bool:
        """True iff every node entered a terminating state."""
        return all(self.terminated)

    @property
    def quiescently_terminated(self) -> bool:
        """Theorem 1's guarantee: all terminated, quiescent, no violations."""
        return (
            self.quiescent
            and self.all_terminated
            and not self.quiescence_violations
        )


class _EngineNodeAPI(NodeAPI):
    """Engine-backed capabilities for a single node."""

    __slots__ = ("_engine", "_node_index")

    def __init__(self, engine: "Engine", node_index: int) -> None:
        self._engine = engine
        self._node_index = node_index

    def send(self, port: int, content: Any = None) -> None:
        num_ports = self._engine._num_ports[self._node_index]
        self._engine._do_send(self._node_index, check_port(port, num_ports), content)

    def send_many(self, port: int, count: int) -> None:
        num_ports = self._engine._num_ports[self._node_index]
        self._engine._do_send_many(self._node_index, check_port(port, num_ports), count)

    def terminate(self, output: Any = None) -> None:
        self._engine._do_terminate(self._node_index, output)


class Engine:
    """Runs a :class:`~repro.simulator.network.Network` to quiescence.

    Args:
        network: The wired topology with its node objects.
        scheduler: The asynchronous adversary; defaults to global-FIFO.
            Scheduler instances are stateful — use a fresh one per run.
        max_steps: Safety bound on deliveries; exceeding it raises
            :class:`~repro.exceptions.SimulationLimitExceeded` (livelock guard).
        strict_quiescence: Raise the moment a quiescent-termination
            violation is observed instead of merely recording it.
        record_events: Keep full per-event logs in the trace (needed by the
            solitude-pattern machinery; off by default to save memory).
            Event recording is per-pulse by definition, so it disables the
            batched fast path.
        invariant_hooks: Callables invoked after every scheduler step with
            the engine; they should raise ``AssertionError`` on violation.
        batched: Deliver a channel's entire FIFO run in one scheduler step
            wherever that is observably safe — the channel is fully
            defective, unfaulted, and events are not being recorded.  Such
            channels are switched to counting mode and their runs reach
            receivers through :meth:`~repro.simulator.node.Node.on_pulses`.
            Every batched execution corresponds pulse-for-pulse to a legal
            unbatched schedule (see docs/PERFORMANCE.md), so results agree
            with the slow path on everything the model can observe.
    """

    def __init__(
        self,
        network: Network,
        scheduler: Optional[Scheduler] = None,
        max_steps: int = 10_000_000,
        strict_quiescence: bool = False,
        record_events: bool = False,
        invariant_hooks: Sequence[InvariantHook] = (),
        batched: bool = False,
    ) -> None:
        self.network = network
        self.scheduler = scheduler if scheduler is not None else GlobalFifoScheduler()
        self.max_steps = max_steps
        self.strict_quiescence = strict_quiescence
        self.trace = Trace(record_events=record_events)
        self.invariant_hooks = list(invariant_hooks)
        self.batched = batched
        self._seq = 0
        self._steps = 0
        self._violations: List[str] = []
        self._apis = [
            _EngineNodeAPI(self, index) for index in range(len(network.nodes))
        ]
        self._ran = False
        if batched and not record_events:
            for channel in network.channels:
                # Only plain defective channels may coalesce: faulty
                # subclasses keep per-pulse enqueue semantics (they fall
                # back to the slow path), content channels need payloads.
                if type(channel) is Channel and channel.defective:
                    channel.enable_counting()
        # Inbound-channel index per node: _do_terminate's in-transit check
        # must not rescan every channel on each termination.
        self._in_channels: List[List[Channel]] = [[] for _ in network.nodes]
        for channel in network.channels:
            self._in_channels[channel.dst_node].append(channel)
        # Per-node port counts for send-path validation: rings keep their
        # two ports; variable-degree topologies extend to the highest
        # wired port.  (Minimum 2 so ring error messages stay stable.)
        self._num_ports: List[int] = [2] * len(network.nodes)
        for (node, port) in network.out_channel:
            if port + 1 > self._num_ports[node]:
                self._num_ports[node] = port + 1
        for channel in network.channels:
            if channel.dst_port + 1 > self._num_ports[channel.dst_node]:
                self._num_ports[channel.dst_node] = channel.dst_port + 1
        # Channels with in-flight messages, maintained incrementally as a
        # channel-id-sorted list (plus a membership set): gives schedulers
        # the same deterministic candidate order as the previous
        # sort-per-delivery without the O(C log C) per-step cost.
        self._active_set = {
            channel.channel_id for channel in network.channels if channel
        }
        self._active_ids: List[int] = sorted(self._active_set)

    # -- node-facing plumbing ------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _activate(self, channel: Channel) -> None:
        channel_id = channel.channel_id
        if channel_id not in self._active_set:
            self._active_set.add(channel_id)
            insort(self._active_ids, channel_id)

    def _deactivate(self, channel: Channel) -> None:
        channel_id = channel.channel_id
        self._active_set.discard(channel_id)
        self._active_ids.pop(bisect_left(self._active_ids, channel_id))

    def _do_send(self, node_index: int, port: int, content: Any) -> None:
        node = self.network.nodes[node_index]
        if node.terminated:
            raise ProtocolViolation(
                f"node {node_index} attempted to send after terminating"
            )
        channel = self.network.channel_for_send(node_index, port)
        seq = self._next_seq()
        channel.enqueue(send_seq=seq, content=content)
        if channel.pending:  # fault-injecting channels may drop the message
            self._activate(channel)
        if self.trace.record_events:
            self.trace.note_send(
                SendRecord(
                    seq=seq,
                    sender=node_index,
                    port=port,
                    channel_id=channel.channel_id,
                    content=content,
                )
            )
        else:
            self.trace.count_send(node_index, port)

    def _do_send_many(self, node_index: int, port: int, count: int) -> None:
        """Bulk-send ``count`` pulses: one enqueue on counting channels."""
        if count <= 0:
            if count == 0:
                return
            raise ProtocolViolation(f"cannot send {count} pulses")
        channel = self.network.channel_for_send(node_index, port)
        if not channel.counting:
            for _ in range(count):
                self._do_send(node_index, port, None)
            return
        node = self.network.nodes[node_index]
        if node.terminated:
            raise ProtocolViolation(
                f"node {node_index} attempted to send after terminating"
            )
        first_seq = self._seq + 1
        self._seq += count
        channel.enqueue_many(first_seq, count)
        self._activate(channel)
        self.trace.count_send(node_index, port, count)

    def _do_terminate(self, node_index: int, output: Any) -> None:
        node = self.network.nodes[node_index]
        node._mark_terminated(output)
        self.trace.note_termination(
            TerminationRecord(seq=self._next_seq(), node=node_index, output=output)
        )
        # Quiescent termination also forbids pulses already in transit
        # towards the terminating node at the moment it terminates.
        in_transit = sum(
            channel.pending for channel in self._in_channels[node_index]
        )
        if in_transit:
            self._note_violation(
                f"node {node_index} terminated with {in_transit} pulse(s) "
                "still in transit towards it"
            )

    def _note_violation(self, description: str) -> None:
        self._violations.append(description)
        if self.strict_quiescence:
            raise QuiescentTerminationViolation(description)

    # -- the run loop ---------------------------------------------------------

    def run(self) -> RunResult:
        """Execute to quiescence and return the :class:`RunResult`.

        Raises:
            SimulationLimitExceeded: If ``max_steps`` deliveries happen
                without reaching quiescence.
            QuiescentTerminationViolation: In strict mode, on the first
                pulse delivered to (or stranded at) a terminated node.
        """
        if self._ran:
            raise ProtocolViolation("an Engine instance is single-use; build a new one")
        self._ran = True

        for index, node in enumerate(self.network.nodes):
            node.on_init(self._apis[index])

        active_ids = self._active_ids
        channels = self.network.channels
        scheduler_choose = self.scheduler.choose
        hooks = self.invariant_hooks
        max_steps = self.max_steps
        deliver = self._deliver
        deliver_batch = self._deliver_batch
        while active_ids:
            if self._steps >= max_steps:
                raise SimulationLimitExceeded(
                    f"no quiescence after {self._steps} deliveries "
                    f"({self.network.pending_messages()} still in flight)",
                    steps=self._steps,
                )
            if len(active_ids) == 1:
                chosen = channels[active_ids[0]]
            else:
                candidates = [channels[cid] for cid in active_ids]
                chosen = candidates[scheduler_choose(candidates)]
            if chosen.counting:
                deliver_batch(chosen)
            else:
                deliver(chosen)
            self._steps += 1
            if hooks:
                for hook in hooks:
                    hook(self)

        return RunResult(
            quiescent=True,
            steps=self._steps,
            total_sent=self.trace.total_sent,
            outputs=[node.output for node in self.network.nodes],
            terminated=[node.terminated for node in self.network.nodes],
            termination_order=list(self.trace.termination_order),
            quiescence_violations=list(self._violations),
            trace=self.trace,
        )

    def _deliver(self, channel) -> None:
        send_seq, content = channel.dequeue()
        if not channel.pending:
            self._deactivate(channel)
        receiver_index, receiver_port = channel.dst
        receiver = self.network.nodes[receiver_index]
        ignored = receiver.terminated
        if self.trace.record_events:
            self.trace.note_delivery(
                DeliveryRecord(
                    seq=self._next_seq(),
                    send_seq=send_seq,
                    receiver=receiver_index,
                    port=receiver_port,
                    channel_id=channel.channel_id,
                    content=content,
                    ignored=ignored,
                )
            )
        else:
            self._seq += 1
            self.trace.count_delivery(receiver_index, receiver_port, ignored)
        if ignored:
            self._note_violation(
                f"pulse delivered to terminated node {receiver_index} "
                f"(port {receiver_port})"
            )
            return
        receiver.on_message(self._apis[receiver_index], receiver_port, content)

    def _deliver_batch(self, channel) -> None:
        """Deliver a counting channel's whole FIFO run in one step.

        Equivalent to the adversary picking the same channel ``count``
        times in a row — a legal unbatched schedule — so nothing the model
        can observe distinguishes the two (docs/PERFORMANCE.md spells the
        argument out).
        """
        count = channel.drain()
        self._deactivate(channel)
        receiver_index, receiver_port = channel.dst
        receiver = self.network.nodes[receiver_index]
        self._seq += count
        if receiver.terminated:
            self.trace.count_delivery(receiver_index, receiver_port, True, count)
            self._note_violation(
                f"{count} pulse(s) delivered to terminated node "
                f"{receiver_index} (port {receiver_port})"
            )
            return
        self.trace.count_delivery(receiver_index, receiver_port, False, count)
        receiver.on_pulses(self._apis[receiver_index], receiver_port, count)


def run_to_quiescence(
    network: Network,
    scheduler: Optional[Scheduler] = None,
    **engine_kwargs: Any,
) -> RunResult:
    """Convenience one-shot: build an engine, run it, return the result."""
    return Engine(network, scheduler=scheduler, **engine_kwargs).run()
