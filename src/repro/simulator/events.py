"""Event records produced by the engine.

The engine logs two kinds of events:

* :class:`SendRecord` — a node enqueued a message into a channel.
* :class:`DeliveryRecord` — the scheduler delivered a message to a node.

Both carry a globally monotone sequence number (``seq``) so that a full
execution can be reconstructed, replayed, or checked against invariants.
Records are immutable; traces hold lists of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


@dataclass(frozen=True, slots=True)
class SendRecord:
    """A message was enqueued into a channel.

    Attributes:
        seq: Global event sequence number (shared counter with deliveries).
        sender: Index of the sending node.
        port: Local port (0 or 1) the sender used.
        channel_id: Identifier of the directed channel the message entered.
        content: Payload as handed to ``send``; ``None`` for a bare pulse.
            Note the *channel* may still erase this before delivery.
    """

    seq: int
    sender: int
    port: int
    channel_id: int
    content: Any = None


@dataclass(frozen=True, slots=True)
class DeliveryRecord:
    """A message was delivered to (received by) a node.

    Attributes:
        seq: Global event sequence number.
        send_seq: ``seq`` of the matching :class:`SendRecord`.
        receiver: Index of the receiving node.
        port: Local port (0 or 1) at which the message arrived.
        channel_id: Identifier of the directed channel it travelled.
        content: Payload after channel processing (``None`` if erased).
        ignored: True when the receiver had already terminated and, per the
            model, ignored the pulse.  Such deliveries are recorded because
            they witness a quiescent-termination violation.
    """

    seq: int
    send_seq: int
    receiver: int
    port: int
    channel_id: int
    content: Any = None
    ignored: bool = False


@dataclass(frozen=True, slots=True)
class TerminationRecord:
    """A node entered its terminating state.

    Attributes:
        seq: Global event sequence number.
        node: Index of the terminating node.
        output: The output the node terminated with (algorithm-specific).
    """

    seq: int
    node: int
    output: Optional[Any] = None
