"""Execution traces: independent accounting of everything that happened.

Algorithm nodes keep their own counters (the paper's ``rho``/``sigma``);
the :class:`Trace` maintained by the engine is an *independent* ledger of
sends, deliveries, and terminations.  Tests cross-check the two, so a
bookkeeping bug in an algorithm cannot silently validate itself.

Counters are always maintained; full per-event records are kept only when
the engine is constructed with ``record_events=True`` (they are the basis
of the lower-bound solitude patterns and of failure forensics).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.simulator.events import DeliveryRecord, SendRecord, TerminationRecord


@dataclass
class Trace:
    """Ledger of one engine run.

    Attributes:
        sends_by_port: ``(node, port) -> count`` of messages sent.
        recvs_by_port: ``(node, port) -> count`` of messages delivered
            (including ones ignored by terminated nodes).
        ignored_deliveries: Count of deliveries to already-terminated nodes.
        termination_order: Node indices in the order they terminated.
        send_records / delivery_records / termination_records: Full event
            logs (populated only when event recording is enabled).
    """

    record_events: bool = False
    sends_by_port: Dict[Tuple[int, int], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    recvs_by_port: Dict[Tuple[int, int], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    ignored_deliveries: int = 0
    termination_order: List[int] = field(default_factory=list)
    send_records: List[SendRecord] = field(default_factory=list)
    delivery_records: List[DeliveryRecord] = field(default_factory=list)
    termination_records: List[TerminationRecord] = field(default_factory=list)

    # -- recording (engine-facing) ------------------------------------------
    #
    # The engine calls the fast counter methods on every event and only
    # materializes record objects when event recording is on; this keeps
    # the per-pulse cost low on multi-million-pulse runs.

    def count_send(self, sender: int, port: int, count: int = 1) -> None:
        self.sends_by_port[(sender, port)] += count

    def count_delivery(
        self, receiver: int, port: int, ignored: bool, count: int = 1
    ) -> None:
        self.recvs_by_port[(receiver, port)] += count
        if ignored:
            self.ignored_deliveries += count

    def note_send(self, record: SendRecord) -> None:
        self.count_send(record.sender, record.port)
        if self.record_events:
            self.send_records.append(record)

    def note_delivery(self, record: DeliveryRecord) -> None:
        self.count_delivery(record.receiver, record.port, record.ignored)
        if self.record_events:
            self.delivery_records.append(record)

    def note_termination(self, record: TerminationRecord) -> None:
        self.termination_order.append(record.node)
        if self.record_events:
            self.termination_records.append(record)

    # -- queries (test-facing) ----------------------------------------------

    @property
    def total_sent(self) -> int:
        """Total messages sent — the paper's *message complexity* measure."""
        return sum(self.sends_by_port.values())

    @property
    def total_received(self) -> int:
        """Total messages delivered (ignored ones included)."""
        return sum(self.recvs_by_port.values())

    def sent_by(self, node: int) -> int:
        """Messages sent by one node across both ports."""
        return sum(
            count
            for (sender, _port), count in self.sends_by_port.items()
            if sender == node
        )

    def received_by(self, node: int) -> int:
        """Messages delivered to one node across both ports."""
        return sum(
            count
            for (receiver, _port), count in self.recvs_by_port.items()
            if receiver == node
        )
