"""Network wiring: nodes, channels, and the port map.

A :class:`Network` owns the directed channels of a topology and the mapping
from local ``(node, port)`` endpoints to outgoing channels.  It is a passive
data structure; the :class:`~repro.simulator.engine.Engine` drives it.

The ring builders in :mod:`repro.simulator.ring` produce networks with two
ports per node; nothing in this module is ring-specific, so richer
topologies (used by the defective transport tests) can reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.simulator.channel import Channel
from repro.simulator.node import Node


@dataclass
class Network:
    """A set of nodes joined by directed FIFO channels.

    Attributes:
        nodes: The node objects, indexed by position.
        channels: All directed channels, indexed by ``channel_id``.
        out_channel: Maps ``(node_index, port)`` to the channel id a send on
            that port enters.
    """

    nodes: List[Node]
    channels: List[Channel] = field(default_factory=list)
    out_channel: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def add_channel(
        self,
        src: Tuple[int, int],
        dst: Tuple[int, int],
        defective: bool = True,
    ) -> Channel:
        """Create a directed channel ``src -> dst`` and register its port map.

        Args:
            src: ``(node, port)`` endpoint messages are sent from.
            dst: ``(node, port)`` endpoint messages arrive at.
            defective: Whether the channel erases content (the paper's
                model); pass False for content-carrying baselines.

        Raises:
            ConfigurationError: If ``src`` already has an outgoing channel
                or either endpoint references an unknown node.
        """
        for endpoint in (src, dst):
            if not 0 <= endpoint[0] < len(self.nodes):
                raise ConfigurationError(
                    f"endpoint {endpoint} references unknown node"
                )
        if src in self.out_channel:
            raise ConfigurationError(f"port {src} already wired")
        channel = Channel(
            channel_id=len(self.channels), src=src, dst=dst, defective=defective
        )
        self.channels.append(channel)
        self.out_channel[src] = channel.channel_id
        return channel

    def channel_for_send(self, node: int, port: int) -> Channel:
        """The channel a send from ``(node, port)`` enters."""
        try:
            return self.channels[self.out_channel[(node, port)]]
        except KeyError:
            raise ConfigurationError(
                f"node {node} has no outgoing channel on port {port}"
            ) from None

    def pending_messages(self) -> int:
        """Total number of in-flight messages across all channels."""
        return sum(channel.pending for channel in self.channels)

    def nonempty_channels(self) -> Sequence[Channel]:
        """Channels that currently have at least one message to deliver."""
        return [channel for channel in self.channels if channel]

    def validate(self) -> None:
        """Check that every node port that can receive is also wired to send.

        Ring networks wire both ports of every node; partial wirings are
        legal for special topologies but each declared outgoing port must
        map to an existing channel.
        """
        for (node, port), channel_id in self.out_channel.items():
            channel = self.channels[channel_id]
            if channel.src != (node, port):
                raise ConfigurationError(
                    f"port map for {(node, port)} points at channel "
                    f"{channel_id} whose src is {channel.src}"
                )
