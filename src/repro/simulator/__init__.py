"""Discrete-event simulator for asynchronous (fully defective) networks.

This subpackage is the substrate on which every algorithm in the
reproduction runs.  It models the content-oblivious computation model of
the paper (Section 2):

* **Asynchrony** — message delays are arbitrary but finite.  The engine
  realizes this by letting a pluggable :class:`~repro.simulator.scheduler.Scheduler`
  choose, at every step, which non-empty channel delivers its next message.
  Quantified over all schedulers, the engine enumerates exactly the
  executions the asynchronous model allows.
* **FIFO channels** — pulses on a single channel are delivered in the order
  they were sent and are never dropped, duplicated, or injected.
* **Full defectiveness** — a :class:`~repro.simulator.channel.Channel` may
  erase message content, turning every message into a contentless *pulse*.
  Baseline (content-carrying) algorithms run on the same engine with
  non-defective channels.
* **Event-driven nodes** — a node acts once at initialization and then only
  in reaction to message deliveries (:class:`~repro.simulator.node.Node`).

The central entry point is :class:`~repro.simulator.engine.Engine`; ring
construction helpers live in :mod:`~repro.simulator.ring`.
"""

from repro.simulator.channel import Channel
from repro.simulator.engine import Engine, RunResult, run_to_quiescence
from repro.simulator.events import DeliveryRecord, SendRecord
from repro.simulator.network import Network
from repro.simulator.node import Node, NodeAPI, PORT_ZERO, PORT_ONE
from repro.simulator.ring import (
    RingTopology,
    all_flip_patterns,
    build_oriented_ring,
    build_nonoriented_ring,
)
from repro.simulator.scheduler import (
    AdversarialLagScheduler,
    ChoiceSequenceScheduler,
    GlobalFifoScheduler,
    LifoScheduler,
    LongestRunScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    all_standard_schedulers,
)
from repro.simulator.timeline import (
    render_event_log,
    render_space_time,
    summarize_counters,
)
from repro.simulator.trace import Trace

# fleet imports repro.core lazily (inside functions); importing it last keeps
# the simulator package import-order-independent of the core package.
from repro.simulator.fleet import (
    HAVE_NUMPY,
    AnonymousFleetResult,
    FleetFault,
    FleetResult,
    FleetRoundView,
    run_anonymous_fleet,
    run_nonoriented_fleet,
    run_terminating_fleet,
    run_warmup_fleet,
    schedule_bit,
)


def __getattr__(name: str):
    # Lazy so that `import repro.faults` (whose channel compiler imports
    # repro.simulator.channel, triggering this package's init) never hits
    # a half-initialized repro.faults.channel through the legacy
    # repro.simulator.faults shim.
    if name in ("FaultPlan", "FaultyChannel", "apply_fault_plan"):
        from repro.simulator import faults as _faults

        return getattr(_faults, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "HAVE_NUMPY",
    "AnonymousFleetResult",
    "FleetFault",
    "FleetResult",
    "FleetRoundView",
    "run_anonymous_fleet",
    "run_nonoriented_fleet",
    "run_terminating_fleet",
    "run_warmup_fleet",
    "schedule_bit",
    "Channel",
    "Engine",
    "RunResult",
    "run_to_quiescence",
    "all_flip_patterns",
    "DeliveryRecord",
    "SendRecord",
    "Network",
    "Node",
    "NodeAPI",
    "PORT_ZERO",
    "PORT_ONE",
    "RingTopology",
    "build_oriented_ring",
    "build_nonoriented_ring",
    "AdversarialLagScheduler",
    "ChoiceSequenceScheduler",
    "GlobalFifoScheduler",
    "LifoScheduler",
    "LongestRunScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "all_standard_schedulers",
    "Trace",
    "FaultPlan",
    "FaultyChannel",
    "apply_fault_plan",
    "render_event_log",
    "render_space_time",
    "summarize_counters",
]
