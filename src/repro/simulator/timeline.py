"""Human-readable renderings of recorded executions.

Given a run performed with ``record_events=True``, these helpers produce
deterministic text artifacts:

* :func:`render_event_log` — a flat, numbered ledger of sends,
  deliveries, and terminations;
* :func:`render_space_time` — an ASCII space-time diagram: one column
  per node, one row per delivery, showing where each pulse landed and
  how node verdicts evolve.

They exist for debugging, documentation, and the examples; being pure
functions of the trace, they are also regression-testable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.simulator.engine import RunResult
from repro.simulator.trace import Trace


def render_event_log(result: RunResult, max_events: Optional[int] = None) -> str:
    """A numbered, merged ledger of everything that happened.

    Args:
        result: A run executed with ``record_events=True``.
        max_events: Truncate to this many lines (None = all).

    Raises:
        ValueError: If the run did not record events.
    """
    trace = result.trace
    _require_events(trace)
    events = []
    for record in trace.send_records:
        events.append(
            (record.seq, f"send     node{record.sender} port{record.port} "
                         f"-> channel{record.channel_id}")
        )
    for record in trace.delivery_records:
        suffix = "  [ignored: terminated]" if record.ignored else ""
        events.append(
            (record.seq, f"deliver  channel{record.channel_id} -> "
                         f"node{record.receiver} port{record.port}{suffix}")
        )
    for record in trace.termination_records:
        events.append(
            (record.seq, f"halt     node{record.node} output={record.output}")
        )
    events.sort(key=lambda pair: pair[0])
    if max_events is not None:
        events = events[:max_events]
    width = len(str(events[-1][0])) if events else 1
    return "\n".join(f"{seq:>{width}}  {text}" for seq, text in events)


def render_space_time(
    result: RunResult,
    n: int,
    labels: Optional[Sequence[str]] = None,
    max_rows: Optional[int] = None,
) -> str:
    """An ASCII space-time diagram of deliveries.

    One column per node; each row is one delivery, marking the receiving
    node with the arrival port (``*0`` / ``*1``).  Terminations appear as
    ``##`` rows.

    Args:
        result: A run executed with ``record_events=True``.
        n: Number of nodes (column count).
        labels: Optional column headers (defaults to node indices).
        max_rows: Truncate the diagram (None = all rows).
    """
    trace = result.trace
    _require_events(trace)
    headers = list(labels) if labels is not None else [f"n{i}" for i in range(n)]
    col_width = max(4, max(len(header) for header in headers) + 1)

    def row(cells: Dict[int, str]) -> str:
        return "".join(
            (cells.get(i, "") or ".").center(col_width) for i in range(n)
        )

    lines = [row({i: headers[i] for i in range(n)})]
    events = sorted(
        [("d", record.seq, record.receiver, record.port, record.ignored)
         for record in trace.delivery_records]
        + [("t", record.seq, record.node, None, None)
           for record in trace.termination_records],
        key=lambda event: event[1],
    )
    for kind, _seq, node, port, ignored in events:
        if kind == "d":
            mark = f"*{port}" + ("!" if ignored else "")
        else:
            mark = "##"
        lines.append(row({node: mark}))
        if max_rows is not None and len(lines) - 1 >= max_rows:
            lines.append("... (truncated)")
            break
    return "\n".join(lines)


def summarize_counters(result: RunResult, n: int) -> str:
    """Per-node sent/received table (works without event recording)."""
    trace = result.trace
    rows = ["node  sent  received  terminated"]
    for node in range(n):
        rows.append(
            f"{node:>4}  {trace.sent_by(node):>4}  {trace.received_by(node):>8}  "
            f"{str(result.terminated[node]).lower():>10}"
        )
    rows.append(f"total sent: {trace.total_sent}")
    return "\n".join(rows)


def _require_events(trace: Trace) -> None:
    if not trace.record_events:
        raise ValueError(
            "timeline rendering needs a run with record_events=True"
        )
