"""The event-driven node protocol.

Nodes in the content-oblivious model (paper, Section 2) are *event-driven*:
a node may act once at the very beginning of the computation and from then
on only upon receiving a pulse.  Its reaction may change local state and
send any number of pulses on either of its two ports.

This module defines:

* :data:`PORT_ZERO` / :data:`PORT_ONE` — the two local port labels of a
  ring node.  In an *oriented* ring, ``PORT_ONE`` is the clockwise port of
  every node; in a non-oriented ring the mapping is arbitrary per node.
* :class:`NodeAPI` — the capability object handed to node callbacks.  It is
  the only way a node can affect the network (send / terminate), which
  keeps algorithm classes pure state machines and makes them reusable
  across the discrete-event engine and the asyncio runtime.
* :class:`Node` — the abstract base class algorithms subclass.
"""

from __future__ import annotations

import abc
from typing import Any, Optional

from repro.exceptions import ProtocolViolation

PORT_ZERO: int = 0
PORT_ONE: int = 1

VALID_PORTS = (PORT_ZERO, PORT_ONE)


class NodeAPI(abc.ABC):
    """Capabilities a node may use while handling an event.

    Concrete implementations are provided by the discrete-event engine and
    by the asyncio runtime.  Algorithm code must interact with the network
    exclusively through this interface.
    """

    @abc.abstractmethod
    def send(self, port: int, content: Any = None) -> None:
        """Send one message out of local ``port``.

        Ring nodes have ports 0 and 1; general-topology nodes (degree
        ``d``) have ports ``0..d-1`` per the
        :mod:`repro.topology` port convention.

        On defective channels the content is erased in transit, so
        content-oblivious algorithms always call ``send(port)`` with no
        content.  Content-carrying baselines pass payloads.
        """

    @abc.abstractmethod
    def terminate(self, output: Any = None) -> None:
        """Enter the terminating state with the given output.

        Per the model, a terminated node ignores all later pulses and sends
        none.  Calling :meth:`send` after termination raises
        :class:`~repro.exceptions.ProtocolViolation`.
        """

    def send_many(self, port: int, count: int) -> None:
        """Send ``count`` contentless pulses out of local ``port``.

        Semantically identical to ``count`` calls to ``send(port)``; batch
        engines override this with an O(1) bulk enqueue so batch handlers
        can relay whole pulse runs without a per-pulse round trip.
        """
        for _ in range(count):
            self.send(port)


class Node(abc.ABC):
    """Abstract event-driven node.

    Subclasses implement the two callbacks and keep all algorithm state on
    ``self``.  A node instance must not be shared between runs: construct
    fresh nodes per execution (the algorithm front doors in
    :mod:`repro.core` do this for you).

    ``SILENT_SEND_PORTS`` declares ports this node class *never* sends on
    in any execution — a static property of the algorithm (e.g. Algorithm 1
    uses the CW channel only).  The schedule explorers consume the
    declaration: a channel whose source port is silent can never carry a
    message, which the partial-order reduction turns into large prunings
    (see ``docs/VERIFICATION.md``).  The declaration is enforced at
    runtime: an explorer raises
    :class:`~repro.exceptions.ProtocolViolation` on any send that
    contradicts it.
    """

    #: Ports this node class provably never sends on (static algorithm fact).
    SILENT_SEND_PORTS: "tuple[int, ...]" = ()

    # Millions of short-lived node objects are built per sweep; slotted
    # layouts shave per-instance memory and attribute-access time.
    # Subclasses that declare new attributes must extend __slots__ (or
    # accept a __dict__, as the content-carrying baselines do).
    __slots__ = ("terminated", "output")

    def __init__(self) -> None:
        self.terminated: bool = False
        self.output: Optional[Any] = None

    @abc.abstractmethod
    def on_init(self, api: NodeAPI) -> None:
        """Called exactly once, before any delivery, at computation start."""

    @abc.abstractmethod
    def on_message(self, api: NodeAPI, port: int, content: Any) -> None:
        """Called for every message delivered to this node.

        Args:
            api: Capability object for sending / terminating.
            port: Local port (0 or 1) the message arrived at.
            content: Message payload; always ``None`` on defective channels.
        """

    def on_pulses(self, api: NodeAPI, port: int, count: int) -> None:
        """Consume a FIFO run of ``count`` contentless pulses at ``port``.

        Called by the batched engine in place of ``count`` separate
        :meth:`on_message` deliveries.  The default processes the run pulse
        by pulse, stopping early if a pulse terminates the node (the slow
        path would likewise never invoke ``on_message`` on a terminated
        node; the stragglers count as ignored deliveries either way).
        Algorithm nodes whose per-pulse reaction has a closed form override
        this to consume the whole run in O(1) — see
        :class:`~repro.core.warmup.WarmupNode` for the canonical example.
        """
        for _ in range(count):
            if self.terminated:
                break
            self.on_message(api, port, None)

    # -- helpers shared by all node implementations -------------------------

    def _mark_terminated(self, output: Any) -> None:
        """Record terminal state; engines call this via their NodeAPI."""
        if self.terminated:
            raise ProtocolViolation("node terminated twice")
        self.terminated = True
        self.output = output


def check_port(port: int, num_ports: int = 2) -> int:
    """Validate a port label, returning it for fluent use.

    ``num_ports`` defaults to the ring's two ports; variable-degree
    runtimes (the general-topology engine paths) pass the receiver's
    actual port count.
    """
    if num_ports == 2:
        if port not in VALID_PORTS:
            raise ProtocolViolation(f"invalid port {port!r}; must be 0 or 1")
    elif not (isinstance(port, int) and 0 <= port < num_ports):
        raise ProtocolViolation(
            f"invalid port {port!r}; node has ports 0..{num_ports - 1}"
        )
    return port
