"""Ear decompositions of 2-edge-connected graphs.

An *ear decomposition* writes a graph as a cycle :math:`P_0` plus ears
:math:`P_1, ..., P_k`, where each ear is a path (or cycle) whose
endpoints lie on earlier ears but whose interior vertices are new.
Whitney/Robbins: a graph has such a decomposition iff it is
2-edge-connected — and the CCGS compiler [8], which Corollary 5 composes
the paper's election with, is structured exactly along these ears
(pulses travel "down" an ear and return along the rest of the cycle
structure, which is what makes out-of-band delimiting possible).

We derive the decomposition from Schmidt's chain decomposition: the
chains, in discovery order, *are* an ear decomposition whenever the
graph is 2-edge-connected (the first chain is the initial cycle; each
later chain's interior vertices are fresh while its endpoints are
marked).  :func:`verify_ear_decomposition` independently checks the
defining properties, so tests do not have to trust the construction.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.exceptions import ConfigurationError
from repro.graphs.connectivity import Graph, chain_decomposition, is_two_edge_connected


def ear_decomposition(graph: Graph) -> List[List[int]]:
    """An ear decomposition of a 2-edge-connected graph.

    Returns a list of vertex paths: the first is a cycle (first == last
    vertex); each subsequent ear's endpoints already appeared, and its
    interior vertices are new.  Every edge of the graph appears in
    exactly one ear.

    Raises:
        ConfigurationError: If the graph is not 2-edge-connected (no ear
            decomposition exists — Whitney/Robbins).
    """
    if graph.n < 3:
        raise ConfigurationError(
            "ear decompositions need a simple cycle, hence n >= 3"
        )
    if not is_two_edge_connected(graph):
        raise ConfigurationError(
            "ear decompositions exist exactly for 2-edge-connected graphs"
        )
    return chain_decomposition(graph)


def verify_ear_decomposition(graph: Graph, ears: Sequence[Sequence[int]]) -> None:
    """Check the defining properties of an ear decomposition.

    Raises ``AssertionError`` with a specific message on the first
    violated property:

    1. the first ear is a cycle;
    2. each later ear has both endpoints on earlier ears and all
       interior vertices fresh;
    3. the ears' edges partition the graph's edge set exactly.
    """
    assert ears, "decomposition is empty"
    first = ears[0]
    assert len(first) >= 3 and first[0] == first[-1], "first ear is not a cycle"

    seen_vertices: Set[int] = set(first)
    seen_edges: Set[Tuple[int, int]] = set()

    def norm(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    for a, b in zip(first, first[1:]):
        edge = norm(a, b)
        assert edge not in seen_edges, f"edge {edge} repeated"
        assert edge in graph.edges, f"edge {edge} not in graph"
        seen_edges.add(edge)

    for ear in ears[1:]:
        assert len(ear) >= 2, f"ear {ear} too short"
        head, tail = ear[0], ear[-1]
        assert head in seen_vertices, f"ear start {head} not on earlier ears"
        assert tail in seen_vertices, f"ear end {tail} not on earlier ears"
        for vertex in ear[1:-1]:
            assert vertex not in seen_vertices, (
                f"interior vertex {vertex} of ear {ear} already used"
            )
        seen_vertices.update(ear)
        for a, b in zip(ear, ear[1:]):
            edge = norm(a, b)
            assert edge not in seen_edges, f"edge {edge} repeated"
            assert edge in graph.edges, f"edge {edge} not in graph"
            seen_edges.add(edge)

    assert seen_vertices == set(range(graph.n)), "vertices not all covered"
    assert seen_edges == set(graph.edges), (
        f"edges not partitioned: missing {set(graph.edges) - seen_edges}"
    )
