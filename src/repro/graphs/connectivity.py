"""Connectivity structure: bridges, 2-edge connectivity, rings.

Implementation notes.  Everything is built on one pass of Schmidt's
*chain decomposition* (Jens M. Schmidt, "A simple test on 2-vertex- and
2-edge-connectivity", IPL 2013):

1. run a DFS, recording parent edges and discovery order;
2. for each vertex in discovery order, walk each back edge (u, v) from
   ``v`` upward along parent links until hitting an already-marked
   vertex — each walk emits one *chain* (the first chain is a cycle);
3. an edge belongs to at most one chain; the **bridges are exactly the
   edges in no chain**, so a connected graph is 2-edge-connected iff the
   chains cover every edge.

The chains double as an (open) ear decomposition skeleton — see
:mod:`repro.graphs.ears` — which is the object the CCGS compiler [8]
builds its content-oblivious simulation on.

Graphs are simple and undirected: ``Graph(n, edges)`` with vertices
``0..n-1`` and unordered edge pairs.  (The ring *multigraph* on two
vertices is handled specially where relevant: the simulator's 2-node
ring uses parallel channels, which as a multigraph is 2-edge-connected;
as a *simple* graph K2 is a single bridge.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.exceptions import ConfigurationError

Edge = Tuple[int, int]


def _norm(edge: Edge) -> Edge:
    a, b = edge
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class Graph:
    """A simple undirected graph on vertices ``0..n-1``."""

    n: int
    edges: FrozenSet[Edge]

    @classmethod
    def from_edges(cls, n: int, edges: Sequence[Edge]) -> "Graph":
        """Build a graph, validating vertex ranges and simplicity."""
        if n < 1:
            raise ConfigurationError(f"need at least one vertex, got n={n}")
        normalized: Set[Edge] = set()
        for edge in edges:
            a, b = edge
            if not (0 <= a < n and 0 <= b < n):
                raise ConfigurationError(f"edge {edge} out of range for n={n}")
            if a == b:
                raise ConfigurationError(f"self-loop {edge} not allowed")
            normalized.add(_norm(edge))
        return cls(n=n, edges=frozenset(normalized))

    @classmethod
    def ring(cls, n: int) -> "Graph":
        """The cycle C_n (requires n >= 3 to be simple)."""
        if n < 3:
            raise ConfigurationError(
                f"a simple cycle needs n >= 3, got {n} "
                "(the simulator's 2-ring is a multigraph)"
            )
        return cls.from_edges(n, [(i, (i + 1) % n) for i in range(n)])

    def adjacency(self) -> List[List[int]]:
        """Adjacency lists (sorted, deterministic)."""
        adj: List[List[int]] = [[] for _ in range(self.n)]
        for a, b in sorted(self.edges):
            adj[a].append(b)
            adj[b].append(a)
        return adj

    def degree(self, vertex: int) -> int:
        return sum(1 for edge in self.edges if vertex in edge)


def is_connected(graph: Graph) -> bool:
    """Is the graph connected?  (Trivially true for n == 1.)"""
    if graph.n == 1:
        return True
    adj = graph.adjacency()
    seen = {0}
    stack = [0]
    while stack:
        vertex = stack.pop()
        for neighbor in adj[vertex]:
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return len(seen) == graph.n


def chain_decomposition(graph: Graph) -> List[List[int]]:
    """Schmidt's chain decomposition of a connected graph.

    Returns the chains as vertex paths (the first chain returned from
    each DFS root's first back edge is a cycle: it starts and ends at the
    same vertex).  Chains partition the non-tree-bridge edges.

    Raises:
        ConfigurationError: If the graph is not connected (the
            decomposition is defined per component; we require one).
    """
    if not is_connected(graph):
        raise ConfigurationError("chain decomposition requires a connected graph")
    adj = graph.adjacency()
    parent: List[Optional[int]] = [None] * graph.n
    order: List[int] = []  # vertices in DFS discovery order
    discovered = [False] * graph.n
    # Iterative DFS keeping discovery order.
    stack: List[Tuple[int, Optional[int]]] = [(0, None)]
    while stack:
        vertex, from_vertex = stack.pop()
        if discovered[vertex]:
            continue
        discovered[vertex] = True
        parent[vertex] = from_vertex
        order.append(vertex)
        for neighbor in reversed(adj[vertex]):
            if not discovered[neighbor]:
                stack.append((neighbor, vertex))

    index = {vertex: i for i, vertex in enumerate(order)}
    tree_edges = {
        _norm((vertex, parent[vertex]))
        for vertex in range(graph.n)
        if parent[vertex] is not None
    }
    back_edges_of: Dict[int, List[int]] = {vertex: [] for vertex in range(graph.n)}
    for a, b in graph.edges:
        if _norm((a, b)) in tree_edges:
            continue
        # orient the back edge from the earlier-discovered endpoint
        u, v = (a, b) if index[a] < index[b] else (b, a)
        back_edges_of[u].append(v)

    marked = [False] * graph.n
    chains: List[List[int]] = []
    for u in order:
        for v in sorted(back_edges_of[u], key=index.get):
            chain = [u]
            marked[u] = True
            walker = v
            while not marked[walker]:
                chain.append(walker)
                marked[walker] = True
                walker = parent[walker]  # type: ignore[assignment]
            chain.append(walker)
            chains.append(chain)
    return chains


def find_bridges(graph: Graph) -> Set[Edge]:
    """Edges whose removal disconnects the graph.

    Via Schmidt's characterization: the bridges of a connected graph are
    exactly the edges contained in no chain.
    """
    chains = chain_decomposition(graph)
    covered: Set[Edge] = set()
    for chain in chains:
        for a, b in zip(chain, chain[1:]):
            covered.add(_norm((a, b)))
    return {edge for edge in graph.edges if edge not in covered}


def is_two_edge_connected(graph: Graph) -> bool:
    """The computability frontier of fully defective networks [8].

    A graph is 2-edge-connected iff it is connected, has at least two
    vertices... and no bridges.  (We treat the single vertex as
    trivially 2-edge-connected, matching the paper's n=1 ring.)
    """
    if graph.n == 1:
        return True
    return is_connected(graph) and not find_bridges(graph)


def is_ring(graph: Graph) -> bool:
    """Is this exactly a ring — the paper's topology class?

    Rings are the connected graphs in which every vertex has degree 2
    (paper, Section 2).  For simple graphs this needs n >= 3.
    """
    return (
        graph.n >= 3
        and is_connected(graph)
        and all(graph.degree(vertex) == 2 for vertex in range(graph.n))
    )
