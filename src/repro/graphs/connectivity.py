"""Connectivity structure: bridges, 2-edge connectivity, rings.

Implementation notes.  Everything is built on one pass of Schmidt's
*chain decomposition* (Jens M. Schmidt, "A simple test on 2-vertex- and
2-edge-connectivity", IPL 2013):

1. run a DFS, recording parent edges and discovery order;
2. for each vertex in discovery order, walk each back edge (u, v) from
   ``v`` upward along parent links until hitting an already-marked
   vertex — each walk emits one *chain* (the first chain is a cycle);
3. an edge belongs to at most one chain; the **bridges are exactly the
   edges in no chain**, so a connected graph is 2-edge-connected iff the
   chains cover every edge.

The chains double as an (open) ear decomposition skeleton — see
:mod:`repro.graphs.ears` — which is the object the CCGS compiler [8]
builds its content-oblivious simulation on.

Graphs come in two flavors.  :class:`Graph` is simple and undirected:
``Graph(n, edges)`` with vertices ``0..n-1`` and unordered edge pairs.
:class:`MultiGraph` additionally admits parallel edges and self-loops —
the simulator's 2-node ring *is* the 2-cycle multigraph (two parallel
channels), which is 2-edge-connected even though K2 as a simple graph is
a single bridge.

Verdict functions (:func:`find_bridges`, :func:`is_two_edge_connected`,
:func:`is_connected`) accept either flavor and are total: parallel edges
are never bridges, self-loops are never bridges (and do not affect any
other edge's verdict), and disconnected inputs yield per-component
bridges / a False connectivity verdict instead of an exception.  Only
:func:`chain_decomposition` keeps its connected-simple-graph
precondition — the decomposition itself is defined per component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.exceptions import BridgeWitnessError, ConfigurationError

Edge = Tuple[int, int]


def _norm(edge: Edge) -> Edge:
    a, b = edge
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class Graph:
    """A simple undirected graph on vertices ``0..n-1``."""

    n: int
    edges: FrozenSet[Edge]

    @classmethod
    def from_edges(cls, n: int, edges: Sequence[Edge]) -> "Graph":
        """Build a graph, validating vertex ranges and simplicity."""
        if n < 1:
            raise ConfigurationError(f"need at least one vertex, got n={n}")
        normalized: Set[Edge] = set()
        for edge in edges:
            a, b = edge
            if not (0 <= a < n and 0 <= b < n):
                raise ConfigurationError(f"edge {edge} out of range for n={n}")
            if a == b:
                raise ConfigurationError(f"self-loop {edge} not allowed")
            normalized.add(_norm(edge))
        return cls(n=n, edges=frozenset(normalized))

    @classmethod
    def ring(cls, n: int) -> "Graph":
        """The cycle C_n (requires n >= 3 to be simple)."""
        if n < 3:
            raise ConfigurationError(
                f"a simple cycle needs n >= 3, got {n} "
                "(the simulator's 2-ring is a multigraph)"
            )
        return cls.from_edges(n, [(i, (i + 1) % n) for i in range(n)])

    def adjacency(self) -> List[List[int]]:
        """Adjacency lists (sorted, deterministic)."""
        adj: List[List[int]] = [[] for _ in range(self.n)]
        for a, b in sorted(self.edges):
            adj[a].append(b)
            adj[b].append(a)
        return adj

    def degree(self, vertex: int) -> int:
        return sum(1 for edge in self.edges if vertex in edge)


@dataclass(frozen=True)
class MultiGraph:
    """An undirected multigraph: parallel edges and self-loops allowed.

    ``edges`` is a sorted tuple of normalized pairs *with multiplicity* —
    the tuple order is the canonical edge numbering (used by topology
    descriptors), and repeated pairs are distinct physical edges.
    """

    n: int
    edges: Tuple[Edge, ...]

    @classmethod
    def from_edges(cls, n: int, edges: Sequence[Edge]) -> "MultiGraph":
        """Build a multigraph, validating only vertex ranges."""
        if n < 1:
            raise ConfigurationError(f"need at least one vertex, got n={n}")
        normalized: List[Edge] = []
        for edge in edges:
            a, b = edge
            if not (0 <= a < n and 0 <= b < n):
                raise ConfigurationError(f"edge {edge} out of range for n={n}")
            normalized.append(_norm(edge))
        return cls(n=n, edges=tuple(sorted(normalized)))

    @classmethod
    def ring(cls, n: int) -> "MultiGraph":
        """The cycle on ``n`` vertices, including the simulator's
        degenerate rings: ``n == 2`` is two parallel edges, ``n == 1`` a
        single self-loop."""
        if n < 1:
            raise ConfigurationError(f"a ring needs n >= 1, got {n}")
        if n == 1:
            return cls.from_edges(1, [(0, 0)])
        if n == 2:
            return cls.from_edges(2, [(0, 1), (0, 1)])
        return cls.from_edges(n, [(i, (i + 1) % n) for i in range(n)])

    def degree(self, vertex: int) -> int:
        """Degree with multiplicity; a self-loop contributes 2."""
        return sum(
            (a == vertex) + (b == vertex) for a, b in self.edges
        )


def _edge_list(graph: "Graph | MultiGraph") -> List[Edge]:
    """Physical edge list of either graph flavor, deterministically ordered."""
    if isinstance(graph, MultiGraph):
        return list(graph.edges)
    return sorted(graph.edges)


def is_connected(graph: "Graph | MultiGraph") -> bool:
    """Is the graph connected?  (Trivially true for n == 1.)"""
    if graph.n == 1:
        return True
    adj: List[List[int]] = [[] for _ in range(graph.n)]
    for a, b in _edge_list(graph):
        if a != b:
            adj[a].append(b)
            adj[b].append(a)
    seen = {0}
    stack = [0]
    while stack:
        vertex = stack.pop()
        for neighbor in adj[vertex]:
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return len(seen) == graph.n


def chain_decomposition(graph: Graph) -> List[List[int]]:
    """Schmidt's chain decomposition of a connected graph.

    Returns the chains as vertex paths (the first chain returned from
    each DFS root's first back edge is a cycle: it starts and ends at the
    same vertex).  Chains partition the non-tree-bridge edges.

    Raises:
        ConfigurationError: If the graph is not connected (the
            decomposition is defined per component; we require one).
    """
    if not is_connected(graph):
        raise ConfigurationError("chain decomposition requires a connected graph")
    adj = graph.adjacency()
    parent: List[Optional[int]] = [None] * graph.n
    order: List[int] = []  # vertices in DFS discovery order
    discovered = [False] * graph.n
    # Iterative DFS keeping discovery order.
    stack: List[Tuple[int, Optional[int]]] = [(0, None)]
    while stack:
        vertex, from_vertex = stack.pop()
        if discovered[vertex]:
            continue
        discovered[vertex] = True
        parent[vertex] = from_vertex
        order.append(vertex)
        for neighbor in reversed(adj[vertex]):
            if not discovered[neighbor]:
                stack.append((neighbor, vertex))

    index = {vertex: i for i, vertex in enumerate(order)}
    tree_edges = {
        _norm((vertex, parent[vertex]))
        for vertex in range(graph.n)
        if parent[vertex] is not None
    }
    back_edges_of: Dict[int, List[int]] = {vertex: [] for vertex in range(graph.n)}
    for a, b in graph.edges:
        if _norm((a, b)) in tree_edges:
            continue
        # orient the back edge from the earlier-discovered endpoint
        u, v = (a, b) if index[a] < index[b] else (b, a)
        back_edges_of[u].append(v)

    marked = [False] * graph.n
    chains: List[List[int]] = []
    for u in order:
        for v in sorted(back_edges_of[u], key=index.get):
            chain = [u]
            marked[u] = True
            walker = v
            while not marked[walker]:
                chain.append(walker)
                marked[walker] = True
                walker = parent[walker]  # type: ignore[assignment]
            chain.append(walker)
            chains.append(chain)
    return chains


def _bridge_indices(n: int, edge_list: Sequence[Edge]) -> Set[int]:
    """Indices of the bridge edges of an arbitrary multigraph.

    Iterative Tarjan lowpoint search over edge *ids* (not vertex pairs),
    which is what makes parallel edges correct: the DFS refuses to
    re-walk only the one physical edge it entered on, so the second copy
    of a parallel pair acts as a back edge and protects both copies.
    Self-loops join no DFS tree and are never bridges; disconnected
    inputs are handled by restarting from every unvisited root.
    """
    adj: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    for eid, (a, b) in enumerate(edge_list):
        if a == b:
            continue
        adj[a].append((b, eid))
        adj[b].append((a, eid))
    disc = [-1] * n
    low = [0] * n
    timer = 0
    bridges: Set[int] = set()
    for root in range(n):
        if disc[root] != -1:
            continue
        disc[root] = low[root] = timer
        timer += 1
        stack = [(root, -1, iter(adj[root]))]
        while stack:
            vertex, entry_eid, neighbors = stack[-1]
            advanced = False
            for neighbor, eid in neighbors:
                if eid == entry_eid:
                    continue
                if disc[neighbor] == -1:
                    disc[neighbor] = low[neighbor] = timer
                    timer += 1
                    stack.append((neighbor, eid, iter(adj[neighbor])))
                    advanced = True
                    break
                low[vertex] = min(low[vertex], disc[neighbor])
            if not advanced:
                stack.pop()
                if stack:
                    parent = stack[-1][0]
                    low[parent] = min(low[parent], low[vertex])
                    if low[vertex] > disc[parent]:
                        bridges.add(entry_eid)
    return bridges


def find_bridges(graph: "Graph | MultiGraph") -> Set[Edge]:
    """Edges whose removal disconnects their component.

    Total over both graph flavors: parallel edges and self-loops are
    never bridges, and disconnected inputs yield the union of each
    component's bridges.  On connected simple graphs this agrees with
    Schmidt's characterization (the bridges are exactly the edges in no
    chain of :func:`chain_decomposition`) — pinned by a differential
    test.
    """
    edge_list = _edge_list(graph)
    return {edge_list[eid] for eid in _bridge_indices(graph.n, edge_list)}


def is_two_edge_connected(graph: "Graph | MultiGraph") -> bool:
    """The computability frontier of fully defective networks [8].

    A graph is 2-edge-connected iff it is connected and has no bridges.
    (We treat the single vertex as trivially 2-edge-connected, matching
    the paper's n=1 ring.)  Accepts multigraphs: the simulator's 2-node
    ring — two parallel edges — correctly verdicts True.
    """
    if graph.n == 1:
        return True
    return is_connected(graph) and not find_bridges(graph)


def require_two_edge_connected(graph: "Graph | MultiGraph") -> None:
    """Refuse graphs below the computability frontier, with a witness.

    Raises :class:`~repro.exceptions.BridgeWitnessError` naming the
    smallest bridge edge (the machine-readable impossibility witness) or
    reporting disconnection.  The witness is what ``repro verify
    --topology`` and ``repro elect --topology`` surface to the user.
    """
    if graph.n == 1:
        return
    if not is_connected(graph):
        raise BridgeWitnessError(
            "graph is disconnected: content-oblivious election needs a "
            "2-edge-connected topology",
            bridge=None,
        )
    bridges = find_bridges(graph)
    if bridges:
        witness = min(bridges)
        raise BridgeWitnessError(
            f"graph has a bridge: edge {witness} — content-oblivious "
            "computation is impossible below 2-edge-connectivity "
            "(impossibility witness)",
            bridge=witness,
        )


def is_ring(graph: Graph) -> bool:
    """Is this exactly a ring — the paper's topology class?

    Rings are the connected graphs in which every vertex has degree 2
    (paper, Section 2).  For simple graphs this needs n >= 3.
    """
    return (
        graph.n >= 3
        and is_connected(graph)
        and all(graph.degree(vertex) == 2 for vertex in range(graph.n))
    )
