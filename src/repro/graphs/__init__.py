"""Graph structure underlying the fully defective computability frontier.

Censor-Hillel et al. [8] proved that **2-edge connectivity** is exactly
the frontier of nontrivial content-oblivious computation: one bridge and
nothing can be computed; 2-edge-connected and (with a root) everything
can.  Rings — "the simplest 2-edge connected graphs" — are this paper's
setting, and [8]'s compiler is built on **ear decompositions** of
2-edge-connected graphs.

This subpackage provides those structural tools from scratch:

* :func:`~repro.graphs.connectivity.find_bridges` — Tarjan-style bridge
  finding via chain decomposition (Schmidt 2013);
* :func:`~repro.graphs.connectivity.is_two_edge_connected` — the
  computability-frontier test;
* :func:`~repro.graphs.connectivity.chain_decomposition` /
  :func:`~repro.graphs.ears.ear_decomposition` — the objects [8]'s
  compiler consumes;
* :func:`~repro.graphs.connectivity.is_ring` — validates that a topology
  is a ring (connected, every degree exactly 2), used to delimit where
  this paper's algorithms apply.
"""

from repro.graphs.connectivity import (
    Graph,
    MultiGraph,
    chain_decomposition,
    find_bridges,
    is_connected,
    is_ring,
    is_two_edge_connected,
    require_two_edge_connected,
)
from repro.graphs.ears import ear_decomposition, verify_ear_decomposition
from repro.graphs.samples import (
    SAMPLE_TOPOLOGIES,
    bridge_graph,
    nested_ears,
    random_ear_composition,
    theta_graph,
)
from repro.graphs.walks import ear_walk, verify_ear_walk, walk_occurrences

__all__ = [
    "Graph",
    "MultiGraph",
    "SAMPLE_TOPOLOGIES",
    "bridge_graph",
    "chain_decomposition",
    "ear_decomposition",
    "ear_walk",
    "find_bridges",
    "is_connected",
    "is_ring",
    "is_two_edge_connected",
    "nested_ears",
    "random_ear_composition",
    "require_two_edge_connected",
    "theta_graph",
    "verify_ear_decomposition",
    "verify_ear_walk",
    "walk_occurrences",
]
