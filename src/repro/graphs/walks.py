"""Closed ear walks: the virtual ring inside a 2-edge-connected graph.

The general-graph election (Chang–Chen–Zhou line, arXiv:2507.08348)
needs a way to run the paper's ring algorithms on a graph that is not a
ring.  The structural device is a **closed walk** derived from an ear
decomposition:

* traverse the initial cycle forward;
* at the first visit of each ear's near endpoint, detour along the ear
  to its far endpoint and back (ears that are themselves cycles are
  traversed forward only);
* continue the interrupted traversal.

The resulting walk (a) visits every vertex, and (b) uses every
*directed* edge at most once — cycle arcs appear forward only, path-ear
arcs once in each direction.  Property (b) is what makes the walk usable
with contentless pulses: each physical directed channel carries at most
one virtual ring edge, so a pulse's arrival port identifies its position
on the virtual ring unambiguously, with no content needed to
demultiplex.  The walk therefore defines an **oriented virtual ring** of
length ``len(walk)`` whose virtual node ``j`` lives at physical vertex
``walk[j]`` and whose CW edge ``j -> j+1`` rides the physical channel
``walk[j] -> walk[j+1]``.

:func:`verify_ear_walk` independently checks both properties, so tests
do not have to trust the construction.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.graphs.connectivity import Graph
from repro.graphs.ears import ear_decomposition


def ear_walk(graph: Graph) -> List[int]:
    """A closed walk covering all vertices, each directed edge used <= once.

    Returns the walk as a vertex list ``w`` of length ``L``; the walk
    steps are ``w[j] -> w[(j+1) % L]``.  Deterministic: built from
    :func:`~repro.graphs.ears.ear_decomposition` with detours inserted
    at each ear's first-visited endpoint.

    Raises:
        ConfigurationError: If the graph is not 2-edge-connected
            (inherited from the ear decomposition — Whitney/Robbins).
    """
    ears = ear_decomposition(graph)
    cycle = ears[0]
    walk: List[int] = list(cycle[:-1])  # drop the repeated closing vertex
    for ear in ears[1:]:
        head, tail = ear[0], ear[-1]
        if head == tail:
            # Cycle ear: forward traversal alone returns to the anchor
            # (ear[1:] ends with the anchor itself).
            detour = list(ear[1:])
        else:
            # Path ear: out to the far endpoint and straight back to the
            # anchor, so the interrupted traversal resumes from it.
            detour = list(ear[1:]) + list(ear[-2::-1])
        anchor = walk.index(head)
        walk[anchor + 1 : anchor + 1] = detour
    return walk


def verify_ear_walk(graph: Graph, walk: Sequence[int]) -> None:
    """Check the walk's defining properties, raising ``AssertionError``:

    1. every step is an edge of the graph;
    2. no directed edge is used twice;
    3. every vertex is visited.
    """
    assert walk, "walk is empty"
    length = len(walk)
    arcs: Set[Tuple[int, int]] = set()
    for j, vertex in enumerate(walk):
        successor = walk[(j + 1) % length]
        edge = (vertex, successor) if vertex <= successor else (successor, vertex)
        assert edge in graph.edges, f"walk step {vertex}->{successor} is not an edge"
        arc = (vertex, successor)
        assert arc not in arcs, f"directed edge {arc} used twice"
        arcs.add(arc)
    assert set(walk) == set(range(graph.n)), (
        f"vertices not covered: missing {set(range(graph.n)) - set(walk)}"
    )


def walk_occurrences(walk: Sequence[int], n: int) -> List[List[int]]:
    """Per-vertex walk positions, in walk order.

    ``walk_occurrences(walk, n)[v]`` lists the virtual ring positions
    hosted by physical vertex ``v`` (every vertex has at least one).
    """
    occurrences: List[List[int]] = [[] for _ in range(n)]
    for position, vertex in enumerate(walk):
        occurrences[vertex].append(position)
    return occurrences
