"""Named 2-edge-connected sample topologies (and one bridge witness).

The CLI (``repro elect --topology theta``), the statistical battery, and
the CI smoke job all draw from this catalog, so the constructions are
deterministic: :func:`random_ear_composition` samples from the
counter-based stream discipline (:mod:`repro.determinism`), never
``os.urandom``.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.exceptions import ConfigurationError
from repro.graphs.connectivity import Graph


def theta_graph(a: int = 1, b: int = 2, c: int = 3) -> Graph:
    """The theta graph: two hubs joined by three internally disjoint paths.

    ``a``, ``b``, ``c`` are the interior vertex counts of the paths; at
    most one may be zero (two direct hub-hub paths would be parallel
    edges, outside the simple-graph domain).  The smallest
    2-edge-connected non-ring graph family — every vertex has degree 2
    except the two degree-3 hubs.
    """
    if min(a, b, c) < 0 or sorted((a, b, c))[1] == 0:
        raise ConfigurationError(
            "theta graph needs interior counts >= 0 with at most one zero, "
            f"got {(a, b, c)}"
        )
    edges: List[Tuple[int, int]] = []
    next_vertex = 2  # vertices 0 and 1 are the hubs
    for interior in (a, b, c):
        previous = 0
        for _ in range(interior):
            edges.append((previous, next_vertex))
            previous = next_vertex
            next_vertex += 1
        edges.append((previous, 1))
    return Graph.from_edges(next_vertex, edges)


def nested_ears(depth: int = 2, cycle: int = 4) -> Graph:
    """A cycle with ``depth`` ears, each anchored on the previous ear.

    Ear ``k`` runs from a vertex of ear ``k-1`` (the initial cycle for
    ``k = 1``) through two fresh interior vertices back to another
    vertex of ear ``k-1`` — a ladder of nested 2-connected layers.
    """
    if cycle < 3 or depth < 0:
        raise ConfigurationError(
            f"nested_ears needs cycle >= 3 and depth >= 0, got {(depth, cycle)}"
        )
    edges: List[Tuple[int, int]] = [(i, (i + 1) % cycle) for i in range(cycle)]
    anchor_a, anchor_b = 0, cycle // 2
    next_vertex = cycle
    for _ in range(depth):
        first, second = next_vertex, next_vertex + 1
        edges.extend([(anchor_a, first), (first, second), (second, anchor_b)])
        anchor_a, anchor_b = first, second
        next_vertex += 2
    return Graph.from_edges(next_vertex, edges)


def random_ear_composition(
    seed: int, target: int = 8, rng: "random.Random | None" = None
) -> Graph:
    """A random 2-edge-connected graph grown ear by ear.

    Starts from a random cycle (3–5 vertices) and adds random ears —
    fresh interior paths between existing vertices, or direct chords —
    until at least ``target`` vertices exist.  Construction-correct:
    every step preserves 2-edge-connectivity (Whitney/Robbins), so no
    rejection sampling is needed.
    """
    if target < 3:
        raise ConfigurationError(f"random_ear_composition needs target >= 3, got {target}")
    if rng is None:
        rng = random.Random(seed)
    n = rng.randint(3, min(5, target))
    edges = {(i, (i + 1) % n) for i in range(n)}

    def norm(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    edges = {norm(a, b) for a, b in edges}
    while n < target:
        interior = rng.randint(0 if n > 3 else 1, 3)
        head = rng.randrange(n)
        tail = rng.randrange(n)
        if interior == 0:
            # A chord: only legal between distinct, non-adjacent vertices.
            if head == tail or norm(head, tail) in edges:
                continue
            edges.add(norm(head, tail))
            continue
        if head == tail and interior < 2:
            # A one-interior cycle ear would be a parallel edge.
            continue
        previous = head
        for fresh in range(n, n + interior):
            edges.add(norm(previous, fresh))
            previous = fresh
        edges.add(norm(previous, tail))
        n += interior
    return Graph.from_edges(n, sorted(edges))


def bridge_graph() -> Graph:
    """Two triangles joined by one edge — the canonical bridge witness.

    The joining edge ``(2, 3)`` is a bridge, so content-oblivious
    election is impossible here (Censor-Hillel et al. [8]; the
    Beyond-2EC impossibility line): ``repro verify --topology`` must
    refuse this graph and emit ``(2, 3)`` as the witness.
    """
    return Graph.from_edges(
        6, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]
    )


#: CLI-facing catalog: name -> zero-argument constructor.
SAMPLE_TOPOLOGIES = {
    "theta": theta_graph,
    "nested": nested_ears,
    "bridge": bridge_graph,
}
