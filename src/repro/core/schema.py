"""Declarative state schemas + the canonical state-fingerprint helpers.

Every transition kernel in :mod:`repro.core.kernels` declares its local
state as a :class:`StateSchema`: named fields with a *role* saying how the
field behaves across schedules.  The schema is what lets four very
different backends agree on "the same state":

* the event-driven :class:`~repro.simulator.engine.Engine` and the
  schedule explorers hold states as node objects (the schema fields are
  the node's ``__slots__``);
* the fleet engine (:mod:`repro.simulator.fleet`) lowers each field to a
  struct-of-arrays column, one array per field across ``B`` instances;
* the synchronous engine holds plain kernel-state dataclasses;
* the backend-conformance suite fingerprints the *observable* projection
  of each and asserts bit equality.

Field roles:

* ``config`` — fixed at construction (IDs, schemes, flags); trivially
  schedule-invariant.
* ``observable`` — terminal value is schedule-invariant (the paper's
  counters and verdicts: every legal adversary drives them to the same
  quiescent values, which the differential suites verify bit-for-bit).
* ``transient`` — mid-run bookkeeping whose terminal value may depend on
  delivery batching (node-local pending buffers); excluded from
  cross-backend fingerprints.

This module is also the canonical home of the *generic* object
fingerprinting used by both schedule explorers and the differential
tests (:func:`freeze_value` / :func:`node_state_dict` /
:func:`node_fingerprint`, formerly in ``verification/common.py``, which
still re-exports them).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple

# ---------------------------------------------------------------------------
# Generic object fingerprinting (shared by explorers + differential tests).
# ---------------------------------------------------------------------------


def freeze_value(value: Any) -> Any:
    """Recursively convert a value into a hashable fingerprint component."""
    if value is None or isinstance(value, (int, float, str, bool, bytes)):
        return value
    if isinstance(value, enum.Enum):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(freeze_value(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return frozenset(freeze_value(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, freeze_value(val)) for key, val in value.items()))
    # Shared immutable strategy objects (e.g. a CircuitProgram) are
    # identified by type: per-node mutable state must live on the node.
    return type(value).__qualname__


# -- canonical byte form -----------------------------------------------------
#
# The schedule explorers key their visited sets on fingerprints; at frontier
# budgets the nested-tuple form dominates memory (tens of small objects per
# state).  ``pack_frozen`` lowers any value in :func:`freeze_value`'s output
# domain to a compact, *injective*, self-delimiting byte string: equal frozen
# values pack identically and distinct ones differ (each component is
# type-tagged and length-prefixed, so concatenations of packed values stay
# injective too).  Packed forms are also totally ordered as bytes regardless
# of the mix of payload types, which is what lets the symmetry reduction take
# a ``min()`` over group images of heterogeneous node states.

_TAG_NONE = b"\x00"
_TAG_FALSE = b"\x01"
_TAG_TRUE = b"\x02"
_TAG_INT = b"\x03"
_TAG_FLOAT = b"\x04"
_TAG_STR = b"\x05"
_TAG_BYTES = b"\x06"
_TAG_TUPLE = b"\x07"
_TAG_FROZENSET = b"\x08"
_TAG_ENUM = b"\x09"


def _uvarint(value: int) -> bytes:
    """Unsigned LEB128 — the length/count prefix used throughout."""
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def pack_frozen(value: Any) -> bytes:
    """Canonical byte encoding of a :func:`freeze_value`-domain value.

    Injective: ``pack_frozen(a) == pack_frozen(b)`` iff ``a == b`` (with
    ``bool`` distinguished from ``int`` and ``0.0`` from ``0``, which is
    stricter than tuple equality and therefore still sound for visited-set
    membership).  Raises ``TypeError`` for values outside the frozen
    domain — pass the result of :func:`freeze_value`, not raw state.
    """
    if value is None:
        return _TAG_NONE
    if isinstance(value, bool):
        return _TAG_TRUE if value else _TAG_FALSE
    if isinstance(value, enum.Enum):
        name = f"{type(value).__qualname__}.{value.name}".encode()
        return _TAG_ENUM + _uvarint(len(name)) + name
    if isinstance(value, int):
        # Zigzag so negatives stay compact: 0,-1,1,-2,... -> 0,1,2,3,...
        zig = value << 1 if value >= 0 else ((-value) << 1) - 1
        return _TAG_INT + _uvarint(zig)
    if isinstance(value, float):
        return _TAG_FLOAT + struct.pack(">d", value)
    if isinstance(value, str):
        raw = value.encode()
        return _TAG_STR + _uvarint(len(raw)) + raw
    if isinstance(value, bytes):
        return _TAG_BYTES + _uvarint(len(value)) + value
    if isinstance(value, tuple):
        parts = [pack_frozen(item) for item in value]
        return _TAG_TUPLE + _uvarint(len(parts)) + b"".join(parts)
    if isinstance(value, frozenset):
        # Sort by packed form: element order must not matter, and packed
        # bytes compare totally even across payload types.
        parts = sorted(pack_frozen(item) for item in value)
        return _TAG_FROZENSET + _uvarint(len(parts)) + b"".join(parts)
    raise TypeError(
        f"pack_frozen expects a freeze_value() result, got {type(value).__name__}"
    )


def packed_fingerprint(value: Any) -> bytes:
    """:func:`freeze_value` then :func:`pack_frozen` in one step."""
    return pack_frozen(freeze_value(value))


def node_state_dict(node: Any) -> Dict[str, Any]:
    """Every attribute of ``node`` as a name → value dict.

    Merges ``__slots__`` declarations across the MRO (slotted node classes
    have no ``__dict__`` for their slotted attributes) with any instance
    ``__dict__`` (unslotted subclasses, e.g. the content-carrying
    baselines, keep one).  Unset slots are skipped.
    """
    state: Dict[str, Any] = {}
    for klass in type(node).__mro__:
        for name in getattr(klass, "__slots__", ()):
            if name == "__dict__" or name in state:
                continue
            try:
                state[name] = getattr(node, name)
            except AttributeError:
                continue
    state.update(getattr(node, "__dict__", {}))
    return state


def node_fingerprint(nodes: Iterable[Any]) -> Tuple[Any, ...]:
    """Canonical digest of every node's full local state.

    The same function applies to explorer states and to the node objects
    of a finished :class:`~repro.simulator.engine.Engine` run, which is
    what makes the explorer-vs-engine differential tests possible.
    """
    return tuple(freeze_value(node_state_dict(node)) for node in nodes)


# ---------------------------------------------------------------------------
# Declarative kernel-state schemas.
# ---------------------------------------------------------------------------

#: Field role literals (see module docstring).
CONFIG = "config"
OBSERVABLE = "observable"
TRANSIENT = "transient"

_ROLES = (CONFIG, OBSERVABLE, TRANSIENT)


@dataclass(frozen=True)
class Field:
    """One named component of a kernel's local state.

    Attributes:
        name: Attribute name, identical on node objects, kernel-state
            dataclasses, and fleet column structs.
        kind: Value shape — ``"int"``, ``"bool"``, ``"enum"``,
            ``"opt_int"``, ``"int_pair"``, or ``"int_list"`` (the fleet
            lowers ``int``/``bool`` fields to SoA columns; structured
            kinds stay per-node).
        role: ``config`` / ``observable`` / ``transient``.
        doc: What the field means in the paper's terms.
    """

    name: str
    kind: str
    role: str = OBSERVABLE
    doc: str = ""

    def __post_init__(self) -> None:
        if self.role not in _ROLES:
            raise ValueError(f"unknown field role {self.role!r}")


@dataclass(frozen=True)
class StateSchema:
    """The declared local state of one transition kernel."""

    name: str
    fields: Tuple[Field, ...]

    def field_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def observable_names(self) -> Tuple[str, ...]:
        """Fields whose terminal values are schedule-invariant (+ config)."""
        return tuple(
            f.name for f in self.fields if f.role in (CONFIG, OBSERVABLE)
        )

    def project(self, state: Any, names: Tuple[str, ...] = ()) -> Dict[str, Any]:
        """Read the schema's fields off any duck-typed state object."""
        return {
            name: getattr(state, name) for name in (names or self.field_names())
        }

    def state_fingerprint(self, state: Any) -> Tuple[Any, ...]:
        """Hashable digest of one state's *observable* projection.

        Works identically on algorithm node objects, kernel-state
        dataclasses, and the per-node dicts the fleet reconstructs from
        its columns — the backend-conformance suite compares exactly
        these digests across all four backends.
        """
        names = self.observable_names()
        if isinstance(state, dict):
            return tuple(freeze_value(state[name]) for name in names)
        return tuple(freeze_value(getattr(state, name)) for name in names)

    def fleet_fingerprint(self, row: Dict[str, Any]) -> Tuple[Any, ...]:
        """:meth:`state_fingerprint` for a fleet-reconstructed state dict."""
        return self.state_fingerprint(row)

    def columns(self, states: Iterable[Any]) -> Dict[str, List[Any]]:
        """Lower a sequence of states to name → per-node value lists
        (the struct-of-arrays layout the fleet engine batches over)."""
        cols: Dict[str, List[Any]] = {name: [] for name in self.field_names()}
        for state in states:
            for name in cols:
                cols[name].append(getattr(state, name))
        return cols
