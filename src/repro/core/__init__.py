"""The paper's contribution: content-oblivious leader election on rings.

Modules map one-to-one onto the paper's algorithms and proofs:

* :mod:`repro.core.warmup` — Algorithm 1, quiescently *stabilizing*
  election on oriented rings (Section 3.1).
* :mod:`repro.core.terminating` — Algorithm 2, quiescently *terminating*
  election on oriented rings (Section 3.2, Theorem 1).
* :mod:`repro.core.nonoriented` — Algorithm 3, stabilizing election plus
  ring orientation on non-oriented rings (Section 4, Proposition 15 and
  Theorem 2).
* :mod:`repro.core.anonymous` — Algorithm 4 ID sampling and the anonymous
  pipeline (Section 5, Theorem 3, Lemma 18, Proposition 19).
* :mod:`repro.core.election` — one-call front doors over all of the above.
* :mod:`repro.core.invariants` — executable versions of Lemmas 6–14.
* :mod:`repro.core.lower_bound` — solitude patterns and the
  :math:`n\\lfloor\\log(\\mathrm{ID}_{max}/n)\\rfloor` lower bound
  machinery (Section 6, Theorem 20).
* :mod:`repro.core.composition` — Corollary 5: composing terminating
  election with a second content-oblivious algorithm.
"""

from repro.core.common import LeaderState, validate_unique_ids
from repro.core.election import (
    ElectionReport,
    elect_leader_anonymous,
    elect_leader_nonoriented,
    elect_leader_oriented,
)
from repro.core.nonoriented import IdScheme
from repro.core.warmup import WarmupNode
from repro.core.terminating import TerminatingNode

__all__ = [
    "LeaderState",
    "validate_unique_ids",
    "ElectionReport",
    "elect_leader_anonymous",
    "elect_leader_nonoriented",
    "elect_leader_oriented",
    "IdScheme",
    "WarmupNode",
    "TerminatingNode",
]
