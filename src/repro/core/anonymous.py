"""Theorem 3: leader election and orientation on anonymous rings.

Section 5.  Nodes have no IDs — only independent randomness.  The paper's
pipeline is: each node silently samples an ID via Algorithm 4
(:mod:`repro.ids.sampling`), then all nodes run Algorithm 3.  By Lemma 16,
Algorithm 3 succeeds whenever the maximal sampled ID is unique, which
Lemma 18 shows holds with probability :math:`1 - O(n^{-c})`.

The resulting algorithm reaches quiescence but cannot terminate — Itai and
Rodeh's impossibility (a terminating anonymous algorithm cannot even count
the ring) rules termination out, which our Theorem-3 pipeline inherits.

This module also implements Proposition 19: a variant in which every node
additionally maintains an *output ID*, resampled uniformly below
:math:`\\min(\\rho_0, \\rho_1) - 1` whenever that minimum exceeds the
current output ID.  At quiescence all output IDs are distinct w.h.p.,
turning the anonymous ring into a unique-ID ring (setting (3) of the
paper's separation).  Interpretation note (DESIGN.md): the resampling
touches only the output label; the virtual IDs driving pulse dynamics are
fixed at start, which is the only reading that leaves the already-proved
Theorem 2 dynamics untouched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.core.common import LeaderState
from repro.core.nonoriented import (
    IdScheme,
    NonOrientedNode,
    NonOrientedOutcome,
    run_nonoriented,
)
from repro.ids.sampling import GeometricIdSampler, max_is_unique
from repro.simulator.engine import Engine
from repro.simulator.node import NodeAPI
from repro.simulator.ring import build_nonoriented_ring
from repro.simulator.scheduler import Scheduler


@dataclass
class AnonymousOutcome:
    """Result of one anonymous-ring election attempt.

    Attributes:
        sampled_ids: The IDs privately drawn by the nodes (analysis-only;
            the nodes never exchange them).
        max_unique: Whether the maximal sampled ID was unique — Lemma 18's
            good event, which implies success.
        election: The underlying Algorithm 3 outcome.
    """

    sampled_ids: List[int]
    max_unique: bool
    election: NonOrientedOutcome

    @property
    def succeeded(self) -> bool:
        """Exactly one leader elected *and* a consistent orientation."""
        return (
            len(self.election.leaders) == 1
            and self.election.orientation_consistent
        )

    @property
    def leader_holds_max_id(self) -> bool:
        """On success, the winner is (a) node holding the maximal sample."""
        leaders = self.election.leaders
        if len(leaders) != 1:
            return False
        return self.sampled_ids[leaders[0]] == max(self.sampled_ids)


def run_anonymous(
    n: int,
    c: float = 2.0,
    seed: Optional[int] = None,
    flips: Optional[Sequence[bool]] = None,
    scheme: IdScheme = IdScheme.SUCCESSOR,
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 50_000_000,
) -> AnonymousOutcome:
    """Run the Theorem-3 pipeline on an anonymous ring of ``n`` nodes.

    Args:
        n: Ring size (the nodes do not know it).
        c: Confidence parameter; failure probability is ``O(n**-c)``.
        seed: Seed for both ID sampling and (if ``flips`` is None) the
            adversarial port flips, making attempts reproducible.  With
            ``seed=None`` the attempt draws its seed from the
            :data:`~repro.determinism.STREAM_ANONYMOUS` counter stream
            (deterministic per call, per process) — never ``os.urandom``.
        flips: Optional explicit port flips; random when None.
        scheme: Virtual-ID scheme handed to Algorithm 3.
        scheduler: Asynchronous adversary; defaults to global FIFO.
        max_steps: Engine safety bound — generous, as sampled IDs can be
            polynomially large in ``n``.
    """
    if seed is None:
        from repro.determinism import STREAM_ANONYMOUS, counter_seed

        seed = counter_seed(STREAM_ANONYMOUS)
    rng = random.Random(seed)
    sampler = GeometricIdSampler(c=c)
    sampled = sampler.sample_many(n, rng)
    if flips is None:
        flips = [rng.random() < 0.5 for _ in range(n)]
    election = run_nonoriented(
        sampled,
        flips=flips,
        scheme=scheme,
        scheduler=scheduler,
        max_steps=max_steps,
        require_unique_ids=False,
    )
    return AnonymousOutcome(
        sampled_ids=sampled,
        max_unique=max_is_unique(sampled),
        election=election,
    )


class Prop19Node(NonOrientedNode):
    """Algorithm 3 node with Proposition 19's output-ID resampling.

    Attributes:
        output_id: The node's current output label.  Starts at the
            privately sampled ID; whenever a pulse arrives and
            ``min(rho) > output_id``, it is resampled uniformly from
            ``[1, min(rho) - 1]``.  At quiescence the labels are distinct
            across the ring w.h.p.
    """

    __slots__ = ("output_id", "resample_count", "_rng")

    def __init__(
        self,
        node_id: int,
        rng: random.Random,
        scheme: IdScheme = IdScheme.SUCCESSOR,
    ) -> None:
        super().__init__(node_id, scheme=scheme)
        self.output_id = node_id
        self.resample_count = 0
        self._rng = rng

    def on_message(self, api: NodeAPI, port: int, content: Any) -> None:
        super().on_message(api, port, content)
        lo = min(self.rho)
        if lo > self.output_id:
            # lo > output_id >= 1 implies lo >= 2, so the range is valid.
            self.output_id = self._rng.randint(1, lo - 1)
            self.resample_count += 1


@dataclass
class Prop19Outcome:
    """Result of a Proposition 19 run: unique-ID assignment w.h.p."""

    sampled_ids: List[int]
    output_ids: List[int]
    election: NonOrientedOutcome

    @property
    def ids_distinct(self) -> bool:
        """Proposition 19's claim: all output IDs distinct at quiescence."""
        return len(set(self.output_ids)) == len(self.output_ids)


def run_prop19(
    n: int,
    c: float = 2.0,
    seed: Optional[int] = None,
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 50_000_000,
) -> Prop19Outcome:
    """Sample IDs (Algorithm 4), run the Prop-19 variant of Algorithm 3."""
    if n < 1:
        raise ConfigurationError(f"need at least one node, got n={n}")
    if seed is None:
        from repro.determinism import STREAM_ANONYMOUS, counter_seed

        seed = counter_seed(STREAM_ANONYMOUS)
    rng = random.Random(seed)
    sampler = GeometricIdSampler(c=c)
    sampled = sampler.sample_many(n, rng)
    flips = [rng.random() < 0.5 for _ in range(n)]
    nodes = [
        Prop19Node(node_id, rng=random.Random(rng.getrandbits(64)))
        for node_id in sampled
    ]
    topology = build_nonoriented_ring(nodes, flips=flips)
    run = Engine(topology.network, scheduler=scheduler, max_steps=max_steps).run()
    election = NonOrientedOutcome(
        ids=list(sampled),
        nodes=nodes,
        topology=topology,
        run=run,
        scheme=IdScheme.SUCCESSOR,
    )
    return Prop19Outcome(
        sampled_ids=sampled,
        output_ids=[node.output_id for node in nodes],
        election=election,
    )
