"""Executable versions of the paper's invariants (Lemmas 6-14, 17).

Each function here either checks a *point-in-time* predicate against a
running :class:`~repro.simulator.engine.Engine` (usable as an engine
``invariant_hook``, i.e. evaluated after **every** delivery, so a passing
run certifies the invariant along the entire execution) or evaluates an
*end-state* predicate on a finished run.

Lemma numbering follows the paper:

* **Lemma 6** — counter invariant of Algorithm 1: while
  :math:`\\rho_{cw} < \\mathsf{ID}_v`, node ``v`` has sent exactly one
  pulse more than it received; once :math:`\\rho_{cw} \\ge \\mathsf{ID}_v`,
  sent equals received.
* **Lemma 7 / 17** — the maximal-ID node is the last to satisfy
  :math:`\\rho_{cw} \\ge \\mathsf{ID}_v` (17 generalizes to non-unique IDs).
* **Lemmas 8, 9 / Corollary 10 / Lemma 11** — quiescence holds iff every
  node has :math:`\\rho_{cw} \\ge \\mathsf{ID}_v` iff every node has
  :math:`\\rho_{cw} = \\sigma_{cw} = \\mathsf{ID}_{max}`.
* **Corollary 13** — every execution ends in quiescence with each node
  having sent and received exactly :math:`\\mathsf{ID}_{max}` pulses.
* **Corollary 14** — :math:`\\rho_{cw}[v] \\le \\mathsf{ID}_{max}` at all
  times.

For Algorithm 2, the CW-instance invariants apply verbatim, the CCW
instance satisfies the mirrored invariant until the termination pulse is
emitted, and the *lag* invariant :math:`\\rho_{ccw} \\le \\rho_{cw}` holds
at every node until the termination phase (this is what makes the line-14
trigger unique to the leader).

Every predicate is stated once against the kernel state schemas
(:mod:`repro.core.kernels`) and checked through two adapters: the
engine-hook form (functions taking an ``Engine``/``EngineView``, below)
reads node objects, and the column form (``check_columns_*``, taking a
:class:`~repro.simulator.fleet.FleetRoundView`) reads the fleet's
struct-of-arrays state — the statistical model checker runs the column
battery over millions of sampled schedules.  The column battery also adds
a *conservation* law no single node can state: per instance and
direction, every pulse ever sent is processed, buffered, or in flight
(:math:`\\sum\\sigma = \\sum\\rho + \\sum\\text{pend} +
\\sum\\text{flight}`), which catches lost pulses the per-node lemmas can
miss.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.core.common import OrientedRingNode
from repro.core.terminating import TerminatingNode
from repro.core.warmup import WarmupNode
from repro.simulator.engine import Engine


class InvariantViolation(AssertionError):
    """An executable lemma failed; carries a forensic description."""


def lemma6_expected_sigma(node_id: int, rho_cw: int) -> int:
    """Lemma 6's exact send count: ``rho_cw + 1`` while the node is below
    its ID (one excess pulse out), ``rho_cw`` once at-or-past it."""
    return rho_cw + 1 if rho_cw < node_id else rho_cw


def _oriented_nodes(engine: Engine) -> List[OrientedRingNode]:
    return [node for node in engine.network.nodes]  # type: ignore[list-item]


def check_lemma6_cw(engine: Engine) -> None:
    """Lemma 6 for the CW channel, checked after every delivery.

    The check is evaluated between loop iterations (i.e. after a node's
    handler fully ran), which is exactly the lemma's "end of each
    iteration" proviso.  Buffered-but-unprocessed pulses count as still in
    transit, matching the paper's footnote 2.
    """
    for index, node in enumerate(_oriented_nodes(engine)):
        expected = lemma6_expected_sigma(node.node_id, node.rho_cw)
        if node.sigma_cw != expected:
            raise InvariantViolation(
                f"Lemma 6 violated at node {index} (ID {node.node_id}): "
                f"rho_cw={node.rho_cw}, sigma_cw={node.sigma_cw}, "
                f"expected sigma_cw={expected}"
            )


def check_corollary14(engine: Engine) -> None:
    """Corollary 14: no node ever receives more than IDmax CW pulses."""
    nodes = _oriented_nodes(engine)
    id_max = max(node.node_id for node in nodes)
    for index, node in enumerate(nodes):
        if node.rho_cw > id_max:
            raise InvariantViolation(
                f"Corollary 14 violated at node {index}: "
                f"rho_cw={node.rho_cw} > IDmax={id_max}"
            )


def check_pulses_in_transit_match_lemma12(engine: Engine) -> None:
    """Lemma 12's accounting: #pulses in transit equals |B| for Algorithm 1.

    ``B`` is the set of nodes with :math:`\\rho_{cw} < \\mathsf{ID}_v`.
    By Lemma 6 each contributes exactly one excess sent pulse, so the
    number of CW pulses in flight (channel queues; node-internal buffers
    do not exist for Algorithm 1) must equal ``|B|``.
    """
    nodes = _oriented_nodes(engine)
    if not all(isinstance(node, WarmupNode) for node in nodes):
        raise InvariantViolation(
            "the in-transit accounting check applies to Algorithm 1 only"
        )
    lagging = sum(1 for node in nodes if node.rho_cw < node.node_id)
    in_transit = engine.network.pending_messages()
    if in_transit != lagging:
        raise InvariantViolation(
            f"Lemma 12 accounting violated: {in_transit} pulses in transit "
            f"but |B|={lagging}"
        )


def check_ccw_lag(engine: Engine) -> None:
    """Algorithm 2's lag discipline: rho_ccw <= rho_cw until termination.

    Once some node has emitted the termination pulse, nodes may observe
    :math:`\\rho_{ccw} = \\rho_{cw} + 1` exactly once (the pulse that makes
    them terminate); any larger excess is a violation.
    """
    nodes = engine.network.nodes
    for index, node in enumerate(nodes):
        if not isinstance(node, TerminatingNode):
            raise InvariantViolation("check_ccw_lag applies to Algorithm 2 only")
        allowed_excess = 1 if _termination_phase_started(nodes) else 0
        if node.rho_ccw > node.rho_cw + allowed_excess:
            raise InvariantViolation(
                f"CCW lag violated at node {index} (ID {node.node_id}): "
                f"rho_ccw={node.rho_ccw} > rho_cw={node.rho_cw}"
                f" + {allowed_excess}"
            )


def check_leader_event_unique(engine: Engine) -> None:
    """The line-14 trigger fires only at the maximal-ID node.

    ``term_pulse_sent`` records that a node observed
    :math:`\\rho_{cw} = \\mathsf{ID}_v = \\rho_{ccw}`; Theorem 1's
    correctness hinges on this being unique to :math:`\\ell`.
    """
    nodes = engine.network.nodes
    id_max = max(node.node_id for node in nodes)  # type: ignore[attr-defined]
    for index, node in enumerate(nodes):
        if not isinstance(node, TerminatingNode):
            raise InvariantViolation(
                "check_leader_event_unique applies to Algorithm 2 only"
            )
        if node.term_pulse_sent and node.node_id != id_max:
            raise InvariantViolation(
                f"non-maximal node {index} (ID {node.node_id}, IDmax "
                f"{id_max}) fired the leader-only termination trigger"
            )


def _termination_phase_started(nodes: Sequence) -> bool:
    return any(
        isinstance(node, TerminatingNode) and node.term_pulse_sent
        for node in nodes
    )


def check_end_state_corollary13(nodes: Sequence[OrientedRingNode]) -> None:
    """Corollary 13 at quiescence: all counters equal IDmax (CW channel)."""
    id_max = max(node.node_id for node in nodes)
    for index, node in enumerate(nodes):
        if node.rho_cw != id_max or node.sigma_cw != id_max:
            raise InvariantViolation(
                f"Corollary 13 violated at node {index}: "
                f"rho_cw={node.rho_cw}, sigma_cw={node.sigma_cw}, "
                f"IDmax={id_max}"
            )


ALGORITHM1_HOOKS = (
    check_lemma6_cw,
    check_corollary14,
    check_pulses_in_transit_match_lemma12,
)

ALGORITHM2_HOOKS = (
    check_lemma6_cw,
    check_corollary14,
    check_ccw_lag,
    check_leader_event_unique,
)

# Hooks only read ``engine.network.nodes`` and
# ``engine.network.pending_messages()``, so the schedule explorers can
# evaluate them at every explored state through a
# :class:`~repro.verification.common.EngineView` — the same executable
# lemmas certify both live runs and exhaustive searches.
#
# Algorithm 3 has no per-state hook battery: its virtual nodes interleave
# two Algorithm 1 instances whose counters live in sub-objects, and the
# paper argues its correctness by reduction rather than by new invariants.
ALGORITHM_HOOKS = {
    "warmup": ALGORITHM1_HOOKS,
    "terminating": ALGORITHM2_HOOKS,
    "nonoriented": (),
}


def hooks_for(algorithm: str):
    """The per-state invariant hooks appropriate for ``algorithm``.

    Args:
        algorithm: One of ``"warmup"``, ``"terminating"``,
            ``"nonoriented"`` (the CLI's algorithm names).

    Raises:
        KeyError: For unknown algorithm names.
    """
    return ALGORITHM_HOOKS[algorithm]


# ---------------------------------------------------------------------------
# Column forms — the same lemmas over fleet struct-of-arrays state.
#
# Each check takes a FleetRoundView (numpy [B, n] arrays or pure-Python
# lists-of-lists; see repro.simulator.fleet) snapshotted at a fleet round
# boundary — a post-drain global state, where each lemma's "end of each
# iteration" proviso holds.  The NumPy fast path computes a violation
# mask across the whole block and only localizes coordinates on failure,
# so a passing round costs a handful of array ops.
# ---------------------------------------------------------------------------


def _locate(np: Any, bad: Any) -> Sequence[int]:
    """First (row, node) coordinate of a violation mask."""
    return [int(i) for i in np.argwhere(bad)[0]]


def check_columns_lemma6_cw(view: Any) -> None:
    """Lemma 6 (CW channel) across a fleet block; see :func:`check_lemma6_cw`."""
    if view.backend == "numpy":
        from repro.accel import np

        expected = np.where(view.rho_cw < view.ids, view.rho_cw + 1, view.rho_cw)
        bad = view.sigma_cw != expected
        if not bad.any():
            return
        b, v = _locate(np, bad)
        raise InvariantViolation(
            f"instance {view.instance_offset + b}, round {view.round_index}: "
            f"Lemma 6 violated at node {v} (ID {int(view.ids[b][v])}): "
            f"rho_cw={int(view.rho_cw[b][v])}, sigma_cw={int(view.sigma_cw[b][v])}, "
            f"expected sigma_cw={int(expected[b][v])}"
        )
    for b, (ids, rhos, sigmas) in enumerate(
        zip(view.ids, view.rho_cw, view.sigma_cw)
    ):
        for v, (node_id, rho, sigma) in enumerate(zip(ids, rhos, sigmas)):
            expected = lemma6_expected_sigma(node_id, rho)
            if sigma != expected:
                raise InvariantViolation(
                    f"instance {view.instance_offset + b}, round "
                    f"{view.round_index}: Lemma 6 violated at node {v} "
                    f"(ID {node_id}): rho_cw={rho}, sigma_cw={sigma}, "
                    f"expected sigma_cw={expected}"
                )


def check_columns_corollary14(view: Any) -> None:
    """Corollary 14 across a fleet block; see :func:`check_corollary14`."""
    if view.backend == "numpy":
        from repro.accel import np

        id_max = view.ids.max(axis=1, keepdims=True)
        bad = view.rho_cw > id_max
        if not bad.any():
            return
        b, v = _locate(np, bad)
        raise InvariantViolation(
            f"instance {view.instance_offset + b}, round {view.round_index}: "
            f"Corollary 14 violated at node {v}: "
            f"rho_cw={int(view.rho_cw[b][v])} > IDmax={int(id_max[b][0])}"
        )
    for b, (ids, rhos) in enumerate(zip(view.ids, view.rho_cw)):
        id_max = max(ids)
        for v, rho in enumerate(rhos):
            if rho > id_max:
                raise InvariantViolation(
                    f"instance {view.instance_offset + b}, round "
                    f"{view.round_index}: Corollary 14 violated at node {v}: "
                    f"rho_cw={rho} > IDmax={id_max}"
                )


def check_columns_ccw_lag(view: Any) -> None:
    """Algorithm 2's lag discipline across a fleet block; see
    :func:`check_ccw_lag`."""
    if view.backend == "numpy":
        from repro.accel import np

        allowed = view.term_sent.any(axis=1).astype(view.rho_cw.dtype)[:, None]
        bad = view.rho_ccw > view.rho_cw + allowed
        if not bad.any():
            return
        b, v = _locate(np, bad)
        raise InvariantViolation(
            f"instance {view.instance_offset + b}, round {view.round_index}: "
            f"CCW lag violated at node {v} (ID {int(view.ids[b][v])}): "
            f"rho_ccw={int(view.rho_ccw[b][v])} > "
            f"rho_cw={int(view.rho_cw[b][v])} + {int(allowed[b][0])}"
        )
    for b, (ids, rho_cws, rho_ccws, sents) in enumerate(
        zip(view.ids, view.rho_cw, view.rho_ccw, view.term_sent)
    ):
        allowed = 1 if any(sents) else 0
        for v, (node_id, rho_cw, rho_ccw) in enumerate(zip(ids, rho_cws, rho_ccws)):
            if rho_ccw > rho_cw + allowed:
                raise InvariantViolation(
                    f"instance {view.instance_offset + b}, round "
                    f"{view.round_index}: CCW lag violated at node {v} "
                    f"(ID {node_id}): rho_ccw={rho_ccw} > rho_cw={rho_cw}"
                    f" + {allowed}"
                )


def check_columns_leader_event_unique(view: Any) -> None:
    """Uniqueness of the line-14 trigger across a fleet block; see
    :func:`check_leader_event_unique`."""
    if view.backend == "numpy":
        from repro.accel import np

        id_max = view.ids.max(axis=1, keepdims=True)
        bad = view.term_sent & (view.ids != id_max)
        if not bad.any():
            return
        b, v = _locate(np, bad)
        raise InvariantViolation(
            f"instance {view.instance_offset + b}, round {view.round_index}: "
            f"non-maximal node {v} (ID {int(view.ids[b][v])}, IDmax "
            f"{int(id_max[b][0])}) fired the leader-only termination trigger"
        )
    for b, (ids, sents) in enumerate(zip(view.ids, view.term_sent)):
        id_max = max(ids)
        for v, (node_id, sent) in enumerate(zip(ids, sents)):
            if sent and node_id != id_max:
                raise InvariantViolation(
                    f"instance {view.instance_offset + b}, round "
                    f"{view.round_index}: non-maximal node {v} (ID {node_id}, "
                    f"IDmax {id_max}) fired the leader-only termination trigger"
                )


def check_columns_conservation(view: Any) -> None:
    """Per-direction pulse conservation across a fleet block.

    Every pulse a node sends is, at any round boundary, exactly one of:
    processed at its receiver (counted in :math:`\\rho`), buffered there
    (pending), or in flight.  So per instance and direction,
    :math:`\\sum_v \\sigma_v = \\sum_v \\rho_v + \\sum_v \\text{pend}_v +
    \\sum_v \\text{flight}_v`.  A lost pulse (a fault, or a kernel bug
    miscounting relays) breaks this immediately — it is the statistical
    checker's primary tripwire and has no single-node equivalent.
    """
    pairs = (
        ("CW", view.sigma_cw, view.rho_cw, view.pend_cw, view.flight_cw),
        ("CCW", view.sigma_ccw, view.rho_ccw, view.pend_ccw, view.flight_ccw),
    )
    if view.backend == "numpy":
        from repro.accel import np

        for label, sigma, rho, pend, flight in pairs:
            sent = sigma.sum(axis=1)
            accounted = rho.sum(axis=1) + pend.sum(axis=1) + flight.sum(axis=1)
            bad = sent != accounted
            if not bad.any():
                continue
            b = int(np.argwhere(bad)[0][0])
            raise InvariantViolation(
                f"instance {view.instance_offset + b}, round {view.round_index}: "
                f"{label} conservation violated: sum(sigma)={int(sent[b])} != "
                f"sum(rho)+sum(pend)+sum(flight)={int(accounted[b])}"
            )
        return
    for label, sigma, rho, pend, flight in pairs:
        for b, (sigmas, rhos, pends, flights) in enumerate(
            zip(sigma, rho, pend, flight)
        ):
            sent = sum(sigmas)
            accounted = sum(rhos) + sum(pends) + sum(flights)
            if sent != accounted:
                raise InvariantViolation(
                    f"instance {view.instance_offset + b}, round "
                    f"{view.round_index}: {label} conservation violated: "
                    f"sum(sigma)={sent} != "
                    f"sum(rho)+sum(pend)+sum(flight)={accounted}"
                )


TERMINATING_COLUMN_INVARIANTS = (
    check_columns_lemma6_cw,
    check_columns_corollary14,
    check_columns_ccw_lag,
    check_columns_leader_event_unique,
    check_columns_conservation,
)

#: Battery for one warmup-kernel direction run (Algorithm 1, or either
#: half of Algorithm 3).  The direction fleets publish their counters in
#: the CW view slots with ``ids`` holding the governing values, so the
#: CW-lemma column forms apply verbatim; the CCW slots are all-zero and
#: the CCW conservation pair holds trivially.
WARMUP_COLUMN_INVARIANTS = (
    check_columns_lemma6_cw,
    check_columns_corollary14,
    check_columns_conservation,
)

#: Column (fleet) invariant batteries per algorithm, keyed by the CLI's
#: algorithm names.  Algorithm 3's two direction runs each report under
#: the warmup battery (its correctness is argued by reduction to
#: Algorithm 1, so the reduced instances' lemmas are the invariants).
COLUMN_INVARIANTS = {
    "warmup": WARMUP_COLUMN_INVARIANTS,
    "terminating": TERMINATING_COLUMN_INVARIANTS,
    "nonoriented": WARMUP_COLUMN_INVARIANTS,
}


def column_invariants_for(algorithm: str):
    """The fleet-column invariant battery for ``algorithm``.

    Raises:
        KeyError: For algorithms without a column battery.
    """
    return COLUMN_INVARIANTS[algorithm]
