"""Executable versions of the paper's invariants (Lemmas 6-14, 17).

Each function here either checks a *point-in-time* predicate against a
running :class:`~repro.simulator.engine.Engine` (usable as an engine
``invariant_hook``, i.e. evaluated after **every** delivery, so a passing
run certifies the invariant along the entire execution) or evaluates an
*end-state* predicate on a finished run.

Lemma numbering follows the paper:

* **Lemma 6** — counter invariant of Algorithm 1: while
  :math:`\\rho_{cw} < \\mathsf{ID}_v`, node ``v`` has sent exactly one
  pulse more than it received; once :math:`\\rho_{cw} \\ge \\mathsf{ID}_v`,
  sent equals received.
* **Lemma 7 / 17** — the maximal-ID node is the last to satisfy
  :math:`\\rho_{cw} \\ge \\mathsf{ID}_v` (17 generalizes to non-unique IDs).
* **Lemmas 8, 9 / Corollary 10 / Lemma 11** — quiescence holds iff every
  node has :math:`\\rho_{cw} \\ge \\mathsf{ID}_v` iff every node has
  :math:`\\rho_{cw} = \\sigma_{cw} = \\mathsf{ID}_{max}`.
* **Corollary 13** — every execution ends in quiescence with each node
  having sent and received exactly :math:`\\mathsf{ID}_{max}` pulses.
* **Corollary 14** — :math:`\\rho_{cw}[v] \\le \\mathsf{ID}_{max}` at all
  times.

For Algorithm 2, the CW-instance invariants apply verbatim, the CCW
instance satisfies the mirrored invariant until the termination pulse is
emitted, and the *lag* invariant :math:`\\rho_{ccw} \\le \\rho_{cw}` holds
at every node until the termination phase (this is what makes the line-14
trigger unique to the leader).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.common import OrientedRingNode
from repro.core.terminating import TerminatingNode
from repro.core.warmup import WarmupNode
from repro.simulator.engine import Engine


class InvariantViolation(AssertionError):
    """An executable lemma failed; carries a forensic description."""


def _oriented_nodes(engine: Engine) -> List[OrientedRingNode]:
    return [node for node in engine.network.nodes]  # type: ignore[list-item]


def check_lemma6_cw(engine: Engine) -> None:
    """Lemma 6 for the CW channel, checked after every delivery.

    The check is evaluated between loop iterations (i.e. after a node's
    handler fully ran), which is exactly the lemma's "end of each
    iteration" proviso.  Buffered-but-unprocessed pulses count as still in
    transit, matching the paper's footnote 2.
    """
    for index, node in enumerate(_oriented_nodes(engine)):
        if node.rho_cw < node.node_id:
            expected = node.rho_cw + 1
        else:
            expected = node.rho_cw
        if node.sigma_cw != expected:
            raise InvariantViolation(
                f"Lemma 6 violated at node {index} (ID {node.node_id}): "
                f"rho_cw={node.rho_cw}, sigma_cw={node.sigma_cw}, "
                f"expected sigma_cw={expected}"
            )


def check_corollary14(engine: Engine) -> None:
    """Corollary 14: no node ever receives more than IDmax CW pulses."""
    nodes = _oriented_nodes(engine)
    id_max = max(node.node_id for node in nodes)
    for index, node in enumerate(nodes):
        if node.rho_cw > id_max:
            raise InvariantViolation(
                f"Corollary 14 violated at node {index}: "
                f"rho_cw={node.rho_cw} > IDmax={id_max}"
            )


def check_pulses_in_transit_match_lemma12(engine: Engine) -> None:
    """Lemma 12's accounting: #pulses in transit equals |B| for Algorithm 1.

    ``B`` is the set of nodes with :math:`\\rho_{cw} < \\mathsf{ID}_v`.
    By Lemma 6 each contributes exactly one excess sent pulse, so the
    number of CW pulses in flight (channel queues; node-internal buffers
    do not exist for Algorithm 1) must equal ``|B|``.
    """
    nodes = _oriented_nodes(engine)
    if not all(isinstance(node, WarmupNode) for node in nodes):
        raise InvariantViolation(
            "the in-transit accounting check applies to Algorithm 1 only"
        )
    lagging = sum(1 for node in nodes if node.rho_cw < node.node_id)
    in_transit = engine.network.pending_messages()
    if in_transit != lagging:
        raise InvariantViolation(
            f"Lemma 12 accounting violated: {in_transit} pulses in transit "
            f"but |B|={lagging}"
        )


def check_ccw_lag(engine: Engine) -> None:
    """Algorithm 2's lag discipline: rho_ccw <= rho_cw until termination.

    Once some node has emitted the termination pulse, nodes may observe
    :math:`\\rho_{ccw} = \\rho_{cw} + 1` exactly once (the pulse that makes
    them terminate); any larger excess is a violation.
    """
    nodes = engine.network.nodes
    for index, node in enumerate(nodes):
        if not isinstance(node, TerminatingNode):
            raise InvariantViolation("check_ccw_lag applies to Algorithm 2 only")
        allowed_excess = 1 if _termination_phase_started(nodes) else 0
        if node.rho_ccw > node.rho_cw + allowed_excess:
            raise InvariantViolation(
                f"CCW lag violated at node {index} (ID {node.node_id}): "
                f"rho_ccw={node.rho_ccw} > rho_cw={node.rho_cw}"
                f" + {allowed_excess}"
            )


def check_leader_event_unique(engine: Engine) -> None:
    """The line-14 trigger fires only at the maximal-ID node.

    ``term_pulse_sent`` records that a node observed
    :math:`\\rho_{cw} = \\mathsf{ID}_v = \\rho_{ccw}`; Theorem 1's
    correctness hinges on this being unique to :math:`\\ell`.
    """
    nodes = engine.network.nodes
    id_max = max(node.node_id for node in nodes)  # type: ignore[attr-defined]
    for index, node in enumerate(nodes):
        if not isinstance(node, TerminatingNode):
            raise InvariantViolation(
                "check_leader_event_unique applies to Algorithm 2 only"
            )
        if node.term_pulse_sent and node.node_id != id_max:
            raise InvariantViolation(
                f"non-maximal node {index} (ID {node.node_id}, IDmax "
                f"{id_max}) fired the leader-only termination trigger"
            )


def _termination_phase_started(nodes: Sequence) -> bool:
    return any(
        isinstance(node, TerminatingNode) and node.term_pulse_sent
        for node in nodes
    )


def check_end_state_corollary13(nodes: Sequence[OrientedRingNode]) -> None:
    """Corollary 13 at quiescence: all counters equal IDmax (CW channel)."""
    id_max = max(node.node_id for node in nodes)
    for index, node in enumerate(nodes):
        if node.rho_cw != id_max or node.sigma_cw != id_max:
            raise InvariantViolation(
                f"Corollary 13 violated at node {index}: "
                f"rho_cw={node.rho_cw}, sigma_cw={node.sigma_cw}, "
                f"IDmax={id_max}"
            )


ALGORITHM1_HOOKS = (
    check_lemma6_cw,
    check_corollary14,
    check_pulses_in_transit_match_lemma12,
)

ALGORITHM2_HOOKS = (
    check_lemma6_cw,
    check_corollary14,
    check_ccw_lag,
    check_leader_event_unique,
)

# Hooks only read ``engine.network.nodes`` and
# ``engine.network.pending_messages()``, so the schedule explorers can
# evaluate them at every explored state through a
# :class:`~repro.verification.common.EngineView` — the same executable
# lemmas certify both live runs and exhaustive searches.
#
# Algorithm 3 has no per-state hook battery: its virtual nodes interleave
# two Algorithm 1 instances whose counters live in sub-objects, and the
# paper argues its correctness by reduction rather than by new invariants.
ALGORITHM_HOOKS = {
    "warmup": ALGORITHM1_HOOKS,
    "terminating": ALGORITHM2_HOOKS,
    "nonoriented": (),
}


def hooks_for(algorithm: str):
    """The per-state invariant hooks appropriate for ``algorithm``.

    Args:
        algorithm: One of ``"warmup"``, ``"terminating"``,
            ``"nonoriented"`` (the CLI's algorithm names).

    Raises:
        KeyError: For unknown algorithm names.
    """
    return ALGORITHM_HOOKS[algorithm]
