"""Algorithm 3: stabilizing election + orientation on non-oriented rings.

Section 4 of the paper.  Nodes have two ports in arbitrary (adversarial)
order and cannot tell which leads clockwise.  Each node picks two distinct
*virtual IDs*, one per port, and the ring then hosts **two parallel
executions of Algorithm 1**, one per travel direction: a pulse received at
one port is forwarded out of the other, so pulses keep their direction and
the two executions never interfere.

Listing (per node ``v``):

* line 2 — virtual IDs.  Two schemes:

  - :attr:`IdScheme.DOUBLED` (Proposition 15):
    :math:`\\mathsf{ID}_v^{(i)} = 2\\,\\mathsf{ID}_v - 1 + i`.
    All ``2n`` virtual IDs distinct; total cost
    :math:`n(4\\,\\mathsf{ID}_{max} - 1)` pulses.
  - :attr:`IdScheme.SUCCESSOR` (Theorem 2):
    :math:`\\mathsf{ID}_v^{(1)} = \\mathsf{ID}_v + 1`,
    :math:`\\mathsf{ID}_v^{(0)} = \\mathsf{ID}_v`.
    Virtual IDs may collide (Lemma 16 shows that is fine as long as the
    per-direction *maxima* differ); total cost
    :math:`n(2\\,\\mathsf{ID}_{max} + 1)` pulses.

* lines 5–7 — forwarding: a pulse arriving at ``Port_{1-i}`` increments
  :math:`\\rho_{1-i}` and is re-sent from ``Port_i`` unless
  :math:`\\rho_{1-i} = \\mathsf{ID}_v^{(i)}` (each direction absorbs one
  pulse at its virtual ID, exactly Algorithm 1's rule).

* lines 8–16 — output: once :math:`\\max(\\rho_0,\\rho_1) \\ge
  \\mathsf{ID}_v^{(1)}`, the node is Leader iff :math:`\\rho_0 =
  \\mathsf{ID}_v^{(1)}` and :math:`\\rho_1 < \\mathsf{ID}_v^{(1)}`, and it
  labels the port with *more* received pulses as its CCW port (CW pulses
  arrive at CCW ports, and the direction seeded by the leader's ``Port_1``
  carries strictly more pulses).

The algorithm reaches quiescence but never terminates (nodes cannot detect
stabilization); success is read off the stabilized states.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.core.common import LeaderState, validate_positive_ids, validate_unique_ids
from repro.core.kernels import nonoriented as kernel
from repro.core.kernels.base import apply_emissions
from repro.core.kernels.nonoriented import IdScheme  # re-export (canonical home)
from repro.simulator.engine import Engine, RunResult
from repro.simulator.node import Node, NodeAPI
from repro.simulator.ring import RingTopology, build_nonoriented_ring
from repro.simulator.scheduler import Scheduler

__all__ = [
    "IdScheme",
    "NonOrientedNode",
    "NonOrientedOutcome",
    "run_nonoriented",
]


class NonOrientedNode(Node):
    """One node of Algorithm 3: a thin adapter over the non-oriented kernel.

    The node *is* the kernel state (its slots are the schema fields); each
    event forwards to :func:`repro.core.kernels.nonoriented.step` and
    replays the emissions through the engine API.

    Attributes:
        node_id: The real ID :math:`\\mathsf{ID}_v`.
        virtual_ids: ``(ID^(0), ID^(1))`` per the chosen scheme.
        rho: Pulses received per port, ``rho[p]`` for ``Port_p``.
        sigma: Pulses sent per port.
        state: Current (possibly tentative) election verdict.
        cw_port_label: The port this node currently believes leads to its
            clockwise neighbor (None until the line-8 guard first holds).
    """

    __slots__ = (
        "node_id",
        "scheme",
        "virtual_ids",
        "rho",
        "sigma",
        "state",
        "cw_port_label",
    )

    def __init__(self, node_id: int, scheme: IdScheme = IdScheme.SUCCESSOR) -> None:
        super().__init__()
        if not isinstance(node_id, int) or isinstance(node_id, bool) or node_id < 1:
            raise ConfigurationError(f"node ID must be a positive int, got {node_id!r}")
        self.node_id = node_id
        self.scheme = scheme
        self.virtual_ids = scheme.virtual_ids(node_id)
        self.rho = [0, 0]
        self.sigma = [0, 0]
        self.state = LeaderState.UNDECIDED
        self.cw_port_label: Optional[int] = None

    def on_init(self, api: NodeAPI) -> None:
        _, emissions, verdict = kernel.init(self)
        apply_emissions(api, emissions, verdict)

    def on_message(self, api: NodeAPI, port: int, content: Any) -> None:
        _, emissions, verdict = kernel.step(self, port, 1)
        apply_emissions(api, emissions, verdict)

    def on_pulses(self, api: NodeAPI, port: int, count: int) -> None:
        _, emissions, verdict = kernel.step(self, port, count)
        apply_emissions(api, emissions, verdict)


def run_nonoriented(
    ids: Sequence[int],
    flips: Optional[Sequence[bool]] = None,
    scheme: IdScheme = IdScheme.SUCCESSOR,
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 10_000_000,
    require_unique_ids: bool = True,
    batched: bool = False,
) -> "NonOrientedOutcome":
    """Run Algorithm 3 on a (possibly adversarially flipped) ring.

    Args:
        ids: Node IDs in clockwise order.  With
            ``require_unique_ids=False``, duplicates are allowed — the
            algorithm still succeeds whenever the maximal ID is unique
            (Lemma 16), which the anonymous pipeline relies on.
        flips: Per-node port flips; None draws nothing and builds the ring
            with all-unflipped ports (callers wanting random flips pass
            them explicitly for reproducibility).
        scheme: Virtual-ID scheme (Proposition 15 vs Theorem 2).
        scheduler: Asynchronous adversary; defaults to global FIFO.
        max_steps: Engine safety bound.
        batched: Use the batched engine fast path (identical outcomes,
            large-IDmax runs orders of magnitude faster).

    Returns:
        A :class:`NonOrientedOutcome`.
    """
    if require_unique_ids:
        validate_unique_ids(ids)
    else:
        validate_positive_ids(ids)
    nodes = [NonOrientedNode(node_id, scheme=scheme) for node_id in ids]
    if flips is None:
        flips = [False] * len(ids)
    topology = build_nonoriented_ring(nodes, flips=flips)
    result = Engine(
        topology.network, scheduler=scheduler, max_steps=max_steps, batched=batched
    ).run()
    return NonOrientedOutcome(
        ids=list(ids), nodes=nodes, topology=topology, run=result, scheme=scheme
    )


class NonOrientedOutcome:
    """Final snapshot of one Algorithm 3 execution."""

    def __init__(
        self,
        ids: List[int],
        nodes: List[NonOrientedNode],
        topology: RingTopology,
        run: RunResult,
        scheme: IdScheme,
    ) -> None:
        self.ids = ids
        self.nodes = nodes
        self.topology = topology
        self.run = run
        self.scheme = scheme

    @property
    def states(self) -> List[LeaderState]:
        """Per-node stabilized states in clockwise ring order."""
        return [node.state for node in self.nodes]

    @property
    def leaders(self) -> List[int]:
        """Indices of nodes that stabilized as Leader."""
        return [
            index
            for index, node in enumerate(self.nodes)
            if node.state is LeaderState.LEADER
        ]

    @property
    def cw_port_labels(self) -> List[Optional[int]]:
        """Each node's computed clockwise port."""
        return [node.cw_port_label for node in self.nodes]

    @property
    def orientation_consistent(self) -> bool:
        """True iff the computed CW ports realize one rotational direction.

        Consistency means either every node labelled its true CW port as
        CW, or every node labelled its true CCW port as CW (the two global
        rotational directions are symmetric; the algorithm settles on the
        direction seeded by the leader's ``Port_1``).
        """
        labels = self.cw_port_labels
        if any(label is None for label in labels):
            return False
        matches_cw = all(
            labels[v] == self.topology.cw_port(v) for v in range(len(self.nodes))
        )
        matches_ccw = all(
            labels[v] == self.topology.ccw_port(v) for v in range(len(self.nodes))
        )
        return matches_cw or matches_ccw

    @property
    def total_pulses(self) -> int:
        """Message complexity of the execution."""
        return self.run.total_sent

    @property
    def claimed_message_bound(self) -> int:
        """The paper's exact pulse count for the scheme in use.

        Proposition 15 (doubled IDs): :math:`n(4\\,\\mathsf{ID}_{max}-1)`.
        Theorem 2 (successor IDs): :math:`n(2\\,\\mathsf{ID}_{max}+1)`.
        """
        n, id_max = len(self.ids), max(self.ids)
        if self.scheme is IdScheme.DOUBLED:
            return n * (4 * id_max - 1)
        return n * (2 * id_max + 1)
