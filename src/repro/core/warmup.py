"""Algorithm 1: quiescently *stabilizing* leader election on oriented rings.

The paper's warm-up algorithm (Section 3.1).  Every node starts by sending
one clockwise pulse and then relays every received pulse clockwise, except
for the single time when its received-pulse count :math:`\\rho_{cw}`
reaches its own ID — that one pulse is absorbed and the node tentatively
declares itself Leader.  Any later pulse reverts it to Non-Leader (and is
relayed).

Guarantees reproduced by the test-suite (Lemmas 6–14, Corollary 13):

* The network always reaches quiescence, at which point every node has
  sent and received exactly :math:`\\mathsf{ID}_{max}` clockwise pulses
  (total message complexity :math:`n \\cdot \\mathsf{ID}_{max}`).
* At quiescence exactly the maximal-ID node(s) hold state Leader — with
  unique IDs, exactly one node (Lemma 16 covers non-unique IDs: every node
  of maximal ID ends a Leader, so a unique *maximum* suffices).
* Nodes never terminate: the algorithm stabilizes but cannot detect it.

The node processes only clockwise pulses; receiving a CCW pulse is a
wiring bug and raises :class:`~repro.exceptions.ProtocolViolation`.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.core.common import (
    CCW_SEND_PORT,
    LeaderState,
    OrientedRingNode,
    validate_positive_ids,
)
from repro.core.kernels import warmup as kernel
from repro.core.kernels.base import apply_emissions
from repro.simulator.engine import Engine, RunResult
from repro.simulator.node import NodeAPI
from repro.simulator.ring import build_oriented_ring
from repro.simulator.scheduler import Scheduler


class WarmupNode(OrientedRingNode):
    """One node of Algorithm 1: a thin adapter over the warm-up kernel.

    The node *is* the kernel state (its slots are the schema fields); each
    event forwards to :func:`repro.core.kernels.warmup.step` and replays
    the emissions through the engine API.  Per-pulse deliveries pass
    ``count=1``, so the event-driven engine observes the exact per-pulse
    semantics; the batched engine passes whole runs (chunk-exact).
    """

    # Algorithm 1 is CW-only: no execution ever sends counterclockwise.
    # The schedule explorers exploit this to prune CCW channels entirely.
    SILENT_SEND_PORTS = (CCW_SEND_PORT,)

    __slots__ = ()

    def on_init(self, api: NodeAPI) -> None:
        _, emissions, verdict = kernel.init(self)
        apply_emissions(api, emissions, verdict)

    def on_message(self, api: NodeAPI, port: int, content: Any) -> None:
        _, emissions, verdict = kernel.step(self, port, 1)
        apply_emissions(api, emissions, verdict)

    def on_pulses(self, api: NodeAPI, port: int, count: int) -> None:
        _, emissions, verdict = kernel.step(self, port, count)
        apply_emissions(api, emissions, verdict)


def run_warmup(
    ids: Sequence[int],
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 10_000_000,
    batched: bool = False,
) -> "WarmupOutcome":
    """Run Algorithm 1 on an oriented ring with the given clockwise IDs.

    Args:
        ids: Node IDs in clockwise order.  Positive integers; duplicates
            are allowed (Lemma 16) but then several Leaders may stabilize.
        scheduler: Asynchronous adversary; defaults to global FIFO.
        max_steps: Engine safety bound.
        batched: Use the batched engine fast path (identical outcomes,
            large-IDmax runs orders of magnitude faster).

    Returns:
        A :class:`WarmupOutcome` with final states, counters, and the run.
    """
    validate_positive_ids(ids)
    nodes = [WarmupNode(node_id) for node_id in ids]
    topology = build_oriented_ring(nodes)
    result = Engine(
        topology.network, scheduler=scheduler, max_steps=max_steps, batched=batched
    ).run()
    return WarmupOutcome(ids=list(ids), nodes=nodes, run=result)


class WarmupOutcome:
    """Final snapshot of one Algorithm 1 execution."""

    def __init__(
        self, ids: List[int], nodes: List[WarmupNode], run: RunResult
    ) -> None:
        self.ids = ids
        self.nodes = nodes
        self.run = run

    @property
    def states(self) -> List[LeaderState]:
        """Per-node stabilized states, in clockwise ring order."""
        return [node.state for node in self.nodes]

    @property
    def leaders(self) -> List[int]:
        """Indices of nodes that stabilized as Leader."""
        return [
            index
            for index, node in enumerate(self.nodes)
            if node.state is LeaderState.LEADER
        ]

    @property
    def total_pulses(self) -> int:
        """Message complexity of the execution (should be n * IDmax)."""
        return self.run.total_sent
