"""Section 6: the message-complexity lower bound and its machinery.

Theorem 20: for any uniform content-oblivious leader-election algorithm,
any ring size ``n``, and any ID universe of ``k >= n`` assignable IDs,
some assignment of IDs forces at least :math:`n\\lfloor\\log_2(k/n)\\rfloor`
pulses.  With :math:`k = \\mathsf{ID}_{max}` this yields Theorem 4's
:math:`n\\lfloor\\log(\\mathsf{ID}_{max}/n)\\rfloor` bound.

The proof objects are all executable here:

* :func:`solitude_pattern` — Definition 21: run a candidate algorithm on a
  one-node ring under the send-order scheduler and record the binary
  string of incoming pulse directions (0 = CW, 1 = CCW).
* :func:`find_pattern_collision` — Lemma 22 says collisions are impossible
  for *correct* algorithms; searching for one is an algorithm sanity check
  (and, run against a broken algorithm, a bug finder).
* :func:`find_common_prefix_group` — Corollary 24's pigeonhole: among
  ``k`` distinct patterns, ``n`` share a prefix of length
  :math:`\\lfloor\\log_2(k/n)\\rfloor`.  The returned IDs are exactly the
  adversarial assignment of Theorem 20's proof.
* :func:`lower_bound_pulses` — the bound itself, as a formula.

For our Algorithm 2, the solitude pattern of ID ``i`` is
:math:`0^i 1^{i+1}` (``i`` CW arrivals, then the CCW instance's ``i``
arrivals plus the returning termination pulse), which the tests verify.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.core.common import CW_ARRIVAL_PORT
from repro.simulator.engine import Engine
from repro.simulator.node import Node
from repro.simulator.ring import build_oriented_ring
from repro.simulator.scheduler import GlobalFifoScheduler

NodeFactory = Callable[[int], Node]


def solitude_pattern(
    factory: NodeFactory, node_id: int, max_steps: int = 1_000_000
) -> str:
    """Definition 21: the pulse-arrival pattern of a node run in solitude.

    Runs ``factory(node_id)`` on a one-node ring (its CW port wired to its
    own CCW port) under the Definition-21 scheduler — pulses delivered one
    by one in the order they were sent.  Returns the arrival sequence as a
    binary string: ``'0'`` per clockwise pulse, ``'1'`` per
    counterclockwise pulse.

    Args:
        factory: Builds a fresh algorithm node for a given ID.
        node_id: The ID to run in solitude.
        max_steps: Engine safety bound.
    """
    node = factory(node_id)
    topology = build_oriented_ring([node])
    engine = Engine(
        topology.network,
        scheduler=GlobalFifoScheduler(),
        max_steps=max_steps,
        record_events=True,
    )
    result = engine.run()
    return "".join(
        "0" if record.port == CW_ARRIVAL_PORT else "1"
        for record in result.trace.delivery_records
    )


def solitude_patterns(
    factory: NodeFactory, ids: Iterable[int], max_steps: int = 1_000_000
) -> Dict[int, str]:
    """Solitude patterns for a whole ID universe, keyed by ID."""
    return {
        node_id: solitude_pattern(factory, node_id, max_steps=max_steps)
        for node_id in ids
    }


def find_pattern_collision(patterns: Dict[int, str]) -> Optional[Tuple[int, int]]:
    """Search for two IDs with identical solitude patterns.

    Lemma 22 proves a *correct* uniform content-oblivious leader-election
    algorithm has no collision (two colliding IDs placed on a two-node
    ring would both elect themselves).  Returns the first colliding ID
    pair, or None.
    """
    seen: Dict[str, int] = {}
    for node_id in sorted(patterns):
        pattern = patterns[node_id]
        if pattern in seen:
            return (seen[pattern], node_id)
        seen[pattern] = node_id
    return None


def find_common_prefix_group(
    patterns: Dict[int, str], n: int
) -> Tuple[List[int], str]:
    """Corollary 24: ``n`` IDs whose patterns share a long common prefix.

    Given ``k = len(patterns)`` distinct patterns, returns ``n`` IDs
    sharing a prefix of length at least
    :math:`s = \\lfloor\\log_2(k/n)\\rfloor`, together with that prefix.
    These IDs are the adversarial assignment in Theorem 20's proof: placed
    on an ``n``-ring under the send-order scheduler, every node behaves as
    in solitude for ``s`` steps, each sending one pulse per step.

    Raises:
        ConfigurationError: If ``n`` exceeds the universe size or no group
            of the guaranteed size exists (impossible for distinct
            patterns, by the pigeonhole argument).
    """
    k = len(patterns)
    if n < 1 or n > k:
        raise ConfigurationError(f"need 1 <= n <= k={k}, got n={n}")
    s = prefix_length(k, n)
    groups: Dict[str, List[int]] = defaultdict(list)
    for node_id, pattern in patterns.items():
        if len(pattern) >= s:
            groups[pattern[:s]].append(node_id)
    for prefix, members in sorted(groups.items()):
        if len(members) >= n:
            return (sorted(members)[:n], prefix)
    raise ConfigurationError(
        f"no {n} of the {k} patterns share a prefix of length {s}; "
        "Corollary 24 guarantees one exists when all patterns are distinct"
    )


def prefix_length(k: int, n: int) -> int:
    """The guaranteed shared-prefix length :math:`\\lfloor\\log_2(k/n)\\rfloor`."""
    if k < n or n < 1:
        raise ConfigurationError(f"need k >= n >= 1, got k={k}, n={n}")
    return math.floor(math.log2(k / n))


def lower_bound_pulses(n: int, k: int) -> int:
    """Theorem 20's bound: :math:`n\\lfloor\\log_2(k/n)\\rfloor` pulses.

    Args:
        n: Ring size.
        k: Number of assignable IDs; with IDs drawn from
            :math:`[\\mathsf{ID}_{max}]` this is :math:`\\mathsf{ID}_{max}`
            (Theorem 4).
    """
    return n * prefix_length(k, n)


def theorem1_upper_bound(n: int, id_max: int) -> int:
    """Theorem 1's matching upper bound: :math:`n(2\\,\\mathsf{ID}_{max}+1)`."""
    if id_max < n:
        raise ConfigurationError(
            f"IDmax={id_max} cannot be below n={n} with unique positive IDs"
        )
    return n * (2 * id_max + 1)


def expected_algorithm2_pattern(node_id: int) -> str:
    """Closed form of Algorithm 2's solitude pattern: :math:`0^i 1^{i+1}`.

    In solitude, a node with ID ``i`` receives its own ``i`` CW pulses
    (the CW instance), then ``i`` CCW pulses (the CCW instance), then the
    returning termination pulse — one more CCW arrival.
    """
    return "0" * node_id + "1" * (node_id + 1)
