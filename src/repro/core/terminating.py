"""Algorithm 2: quiescently *terminating* leader election (Theorem 1).

The paper's main algorithm (Section 3.2).  It runs two instances of
Algorithm 1 — one clockwise, one counterclockwise — with the CCW instance
deliberately lagging behind the CW one, plus a final termination pulse:

* **CW instance** (listing lines 3–8): exactly Algorithm 1.
* **CCW instance** (lines 9–13): starts at node ``v`` only once
  :math:`\\rho_{cw} \\ge \\mathsf{ID}_v`; until then CCW pulses are left
  unconsumed in the queue.  This buffering is the paper's "subtle
  prioritization" of the CW instance and guarantees that the event
  :math:`\\rho_{cw} = \\mathsf{ID}_v = \\rho_{ccw}` occurs *only* at the
  maximal-ID node.
* **Termination** (lines 14–18): the unique node observing
  :math:`\\rho_{cw} = \\mathsf{ID}_v = \\rho_{ccw}` — the leader — emits
  one extra CCW pulse.  Every node seeing :math:`\\rho_{ccw} > \\rho_{cw}`
  for the first time forwards that pulse and terminates; the pulse returns
  to the leader, which terminates last without forwarding it.

Exact guarantees reproduced by the test-suite (Theorem 1):

* exactly one Leader: the node with :math:`\\mathsf{ID}_{max}`;
* message complexity exactly :math:`n(2\\,\\mathsf{ID}_{max} + 1)`;
* quiescent termination: no pulse is in transit towards, or ever sent to,
  a terminated node;
* the leader terminates last (the composition hook of Section 1.1).

Event-driven translation.  The listing is a polling loop: each iteration
processes at most one CW pulse, then (if :math:`\\rho_{cw} \\ge ID`) at
most one CCW pulse, then evaluates the trigger and exit conditions.  Here
each delivery enqueues the pulse into a local buffer and runs the same
loop until no buffered pulse is processable — observationally identical,
because a pulse buffered at the node is indistinguishable from one the
scheduler has not yet delivered.

Ablation (``strict_lag=False``): disables the CCW buffering so CCW pulses
are consumed regardless of :math:`\\rho_{cw}`.  Benchmark E7/A1 shows this
breaks the algorithm — premature terminations, wrong leaders — i.e. the
lag discipline is load-bearing.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.core.common import (
    LeaderState,
    OrientedRingNode,
    validate_unique_ids,
)
from repro.core.kernels import terminating as kernel
from repro.core.kernels.base import apply_emissions
from repro.simulator.engine import Engine, RunResult
from repro.simulator.node import NodeAPI
from repro.simulator.ring import build_oriented_ring
from repro.simulator.scheduler import Scheduler


class TerminatingNode(OrientedRingNode):
    """One node of Algorithm 2: a thin adapter over the terminating kernel.

    The node *is* the kernel state (its slots are the schema fields); each
    event forwards to :func:`repro.core.kernels.terminating.step`, which
    buffers the delivered run and replays the listing's repeat-loop, and
    the adapter applies the returned emissions/verdict through the engine
    API.  With single-pulse deliveries the kernel's chunks degenerate to
    one pulse each, so the event-driven engine observes the exact
    per-pulse send interleaving; the batched engine passes whole runs.

    Attributes beyond :class:`~repro.core.common.OrientedRingNode`:
        pending_cw / pending_ccw: Delivered-but-unprocessed pulse counts
            (the node-local queues the listing polls with ``recv*()``).
        term_pulse_sent: The node ran listing lines 14–15 (it is the
            leader and has emitted the termination pulse).
        strict_lag: When False, the CCW-lag discipline is ablated.
    """

    __slots__ = ("pending_cw", "pending_ccw", "term_pulse_sent", "strict_lag")

    def __init__(self, node_id: int, strict_lag: bool = True) -> None:
        super().__init__(node_id)
        self.pending_cw = 0
        self.pending_ccw = 0
        self.term_pulse_sent = False
        self.strict_lag = strict_lag

    def on_init(self, api: NodeAPI) -> None:
        _, emissions, verdict = kernel.init(self)
        apply_emissions(api, emissions, verdict)

    def on_message(self, api: NodeAPI, port: int, content: Any) -> None:
        _, emissions, verdict = kernel.step(self, port, 1)
        apply_emissions(api, emissions, verdict)

    def on_pulses(self, api: NodeAPI, port: int, count: int) -> None:
        _, emissions, verdict = kernel.step(self, port, count)
        apply_emissions(api, emissions, verdict)


def run_terminating(
    ids: Sequence[int],
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 10_000_000,
    strict_lag: bool = True,
    strict_quiescence: bool = False,
    batched: bool = False,
) -> "TerminatingOutcome":
    """Run Algorithm 2 on an oriented ring with the given clockwise IDs.

    Args:
        ids: Unique positive node IDs in clockwise order.
        scheduler: Asynchronous adversary; defaults to global FIFO.
        max_steps: Engine safety bound.
        strict_lag: Pass False to ablate the CCW-lag discipline (A1).
        strict_quiescence: Raise on the first quiescent-termination
            violation instead of recording it.
        batched: Use the batched engine fast path (identical outcomes,
            large-IDmax runs orders of magnitude faster).

    Returns:
        A :class:`TerminatingOutcome` with outputs, counters, and the run.
    """
    validate_unique_ids(ids)
    nodes = [TerminatingNode(node_id, strict_lag=strict_lag) for node_id in ids]
    topology = build_oriented_ring(nodes)
    result = Engine(
        topology.network,
        scheduler=scheduler,
        max_steps=max_steps,
        strict_quiescence=strict_quiescence,
        batched=batched,
    ).run()
    return TerminatingOutcome(ids=list(ids), nodes=nodes, run=result)


class TerminatingOutcome:
    """Final snapshot of one Algorithm 2 execution."""

    def __init__(
        self, ids: List[int], nodes: List[TerminatingNode], run: RunResult
    ) -> None:
        self.ids = ids
        self.nodes = nodes
        self.run = run

    @property
    def outputs(self) -> List[Optional[LeaderState]]:
        """Per-node terminal outputs in clockwise ring order."""
        return [node.output for node in self.nodes]

    @property
    def leaders(self) -> List[int]:
        """Indices of nodes that *output* Leader at termination."""
        return [
            index
            for index, node in enumerate(self.nodes)
            if node.output is LeaderState.LEADER
        ]

    @property
    def expected_leader(self) -> int:
        """Index of the maximal-ID node — whom Theorem 1 says must win."""
        return max(range(len(self.ids)), key=lambda index: self.ids[index])

    @property
    def total_pulses(self) -> int:
        """Message complexity; Theorem 1 says exactly ``n * (2*IDmax + 1)``."""
        return self.run.total_sent

    @property
    def theorem1_message_bound(self) -> int:
        """The paper's exact complexity: :math:`n(2\\,\\mathsf{ID}_{max}+1)`."""
        return len(self.ids) * (2 * max(self.ids) + 1)
