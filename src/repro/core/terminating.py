"""Algorithm 2: quiescently *terminating* leader election (Theorem 1).

The paper's main algorithm (Section 3.2).  It runs two instances of
Algorithm 1 — one clockwise, one counterclockwise — with the CCW instance
deliberately lagging behind the CW one, plus a final termination pulse:

* **CW instance** (listing lines 3–8): exactly Algorithm 1.
* **CCW instance** (lines 9–13): starts at node ``v`` only once
  :math:`\\rho_{cw} \\ge \\mathsf{ID}_v`; until then CCW pulses are left
  unconsumed in the queue.  This buffering is the paper's "subtle
  prioritization" of the CW instance and guarantees that the event
  :math:`\\rho_{cw} = \\mathsf{ID}_v = \\rho_{ccw}` occurs *only* at the
  maximal-ID node.
* **Termination** (lines 14–18): the unique node observing
  :math:`\\rho_{cw} = \\mathsf{ID}_v = \\rho_{ccw}` — the leader — emits
  one extra CCW pulse.  Every node seeing :math:`\\rho_{ccw} > \\rho_{cw}`
  for the first time forwards that pulse and terminates; the pulse returns
  to the leader, which terminates last without forwarding it.

Exact guarantees reproduced by the test-suite (Theorem 1):

* exactly one Leader: the node with :math:`\\mathsf{ID}_{max}`;
* message complexity exactly :math:`n(2\\,\\mathsf{ID}_{max} + 1)`;
* quiescent termination: no pulse is in transit towards, or ever sent to,
  a terminated node;
* the leader terminates last (the composition hook of Section 1.1).

Event-driven translation.  The listing is a polling loop: each iteration
processes at most one CW pulse, then (if :math:`\\rho_{cw} \\ge ID`) at
most one CCW pulse, then evaluates the trigger and exit conditions.  Here
each delivery enqueues the pulse into a local buffer and runs the same
loop until no buffered pulse is processable — observationally identical,
because a pulse buffered at the node is indistinguishable from one the
scheduler has not yet delivered.

Ablation (``strict_lag=False``): disables the CCW buffering so CCW pulses
are consumed regardless of :math:`\\rho_{cw}`.  Benchmark E7/A1 shows this
breaks the algorithm — premature terminations, wrong leaders — i.e. the
lag discipline is load-bearing.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.exceptions import ProtocolViolation
from repro.core.common import (
    CW_ARRIVAL_PORT,
    CW_SEND_PORT,
    CCW_ARRIVAL_PORT,
    CCW_SEND_PORT,
    LeaderState,
    OrientedRingNode,
    validate_unique_ids,
)
from repro.simulator.engine import Engine, RunResult
from repro.simulator.node import NodeAPI
from repro.simulator.ring import build_oriented_ring
from repro.simulator.scheduler import Scheduler


class TerminatingNode(OrientedRingNode):
    """One node of Algorithm 2.

    Attributes beyond :class:`~repro.core.common.OrientedRingNode`:
        pending_cw / pending_ccw: Delivered-but-unprocessed pulse counts
            (the node-local queues the listing polls with ``recv*()``).
        term_pulse_sent: The node ran listing lines 14–15 (it is the
            leader and has emitted the termination pulse).
        strict_lag: When False, the CCW-lag discipline is ablated.
    """

    __slots__ = ("pending_cw", "pending_ccw", "term_pulse_sent", "strict_lag")

    def __init__(self, node_id: int, strict_lag: bool = True) -> None:
        super().__init__(node_id)
        self.pending_cw = 0
        self.pending_ccw = 0
        self.term_pulse_sent = False
        self.strict_lag = strict_lag

    # -- event plumbing -----------------------------------------------------

    def on_init(self, api: NodeAPI) -> None:
        self.send_cw(api)  # line 1
        self._drain(api)

    def on_message(self, api: NodeAPI, port: int, content: Any) -> None:
        if port == CW_ARRIVAL_PORT:
            self.pending_cw += 1
        elif port == CCW_ARRIVAL_PORT:
            self.pending_ccw += 1
        else:  # pragma: no cover - engine validates ports
            raise ProtocolViolation(f"invalid arrival port {port}")
        self._drain(api)

    def on_pulses(self, api: NodeAPI, port: int, count: int) -> None:
        """Consume a run of ``count`` pulses in amortized O(1).

        Buffers the run like :meth:`on_message` does a single pulse, then
        drains with closed-form chunking.  The ablated variant
        (``strict_lag=False``) keeps the per-pulse reference semantics: it
        exists to demonstrate a broken discipline, not to be fast.
        """
        if not self.strict_lag:
            super().on_pulses(api, port, count)
            return
        if port == CW_ARRIVAL_PORT:
            self.pending_cw += count
        elif port == CCW_ARRIVAL_PORT:
            self.pending_ccw += count
        else:  # pragma: no cover - engine validates ports
            raise ProtocolViolation(f"invalid arrival port {port}")
        self._drain_chunked(api)

    # -- the listing's repeat-loop, one pass per iteration --------------------

    def _drain(self, api: NodeAPI) -> None:
        """Run loop iterations until no buffered pulse is processable."""
        while not self.terminated:
            progressed = False

            # Lines 3-8: the CW instance of Algorithm 1.
            if self.pending_cw:
                self.pending_cw -= 1
                self.rho_cw += 1
                if self.rho_cw == self.node_id:
                    self.state = LeaderState.LEADER
                else:
                    self.state = LeaderState.NON_LEADER
                    self.send_cw(api)
                progressed = True

            # Lines 9-13: the CCW instance, gated on rho_cw >= ID.
            if self.rho_cw >= self.node_id or not self.strict_lag:
                if self.sigma_ccw == 0 and self.rho_cw >= self.node_id:
                    self.send_ccw(api)  # line 10: CCW instance's initial pulse
                if self.pending_ccw:
                    self.pending_ccw -= 1
                    self.rho_ccw += 1
                    if self.rho_ccw != self.node_id and not self.term_pulse_sent:
                        self.send_ccw(api)  # line 13: relay within CCW instance
                    progressed = True

            # Lines 14-17: the unique leader event triggers termination.
            if (
                not self.term_pulse_sent
                and self.rho_cw == self.node_id == self.rho_ccw
            ):
                self.term_pulse_sent = True
                self.send_ccw(api)  # line 15: emit the termination pulse
                # Lines 16-17 (wait for the pulse's return) are implicit:
                # the node simply keeps handling events until the exit
                # condition below fires.

            # Line 18: exit condition `rho_ccw > rho_cw`.
            if self.rho_ccw > self.rho_cw:
                api.terminate(self.state)  # line 19: output and stop
                return

            if not progressed:
                return

    # -- the same loop, advancing whole pulse runs per iteration --------------

    def _drain_chunked(self, api: NodeAPI) -> None:
        """Like :meth:`_drain`, but each iteration consumes a maximal
        *uniform* chunk of buffered pulses instead of one.

        A chunk is uniform when every pulse in it takes the same branch of
        the listing, which holds as long as no counter crosses a value the
        branches test.  The chunk boundaries are therefore:

        * CW: :math:`\\rho_{cw}` reaching :math:`\\mathsf{ID}` (the absorbed
          pulse, and the only point the line-14 trigger can see);
        * CCW: :math:`\\rho_{ccw}` reaching :math:`\\mathsf{ID}` (absorption
          + trigger) and :math:`\\rho_{ccw}` reaching
          :math:`\\rho_{cw} + 1` (the line-18 exit flips exactly there).

        Stopping at every boundary means the trigger and exit conditions
        are evaluated at each state where their truth can change, so the
        chunked loop reaches the same decisions as the per-pulse one.
        """
        node_id = self.node_id
        while not self.terminated:
            progressed = False

            # Lines 3-8: the CW instance of Algorithm 1, one chunk.
            if self.pending_cw:
                take = self.pending_cw
                if self.rho_cw < node_id:
                    take = min(take, node_id - self.rho_cw)
                self.pending_cw -= take
                start = self.rho_cw
                self.rho_cw += take
                if self.rho_cw == node_id:
                    self.state = LeaderState.LEADER
                else:
                    self.state = LeaderState.NON_LEADER
                relays = take - (1 if start < node_id <= self.rho_cw else 0)
                if relays:
                    self.sigma_cw += relays
                    api.send_many(CW_SEND_PORT, relays)
                progressed = True

            # Lines 9-13: the CCW instance, gated on rho_cw >= ID.
            if self.rho_cw >= node_id:
                if self.sigma_ccw == 0:
                    self.send_ccw(api)  # line 10: CCW instance's initial pulse
                if self.pending_ccw:
                    take = self.pending_ccw
                    if self.rho_ccw < node_id:
                        take = min(take, node_id - self.rho_ccw)
                    if self.rho_ccw <= self.rho_cw:
                        take = min(take, self.rho_cw + 1 - self.rho_ccw)
                    self.pending_ccw -= take
                    start = self.rho_ccw
                    self.rho_ccw += take
                    if self.term_pulse_sent:
                        relays = 0
                    else:
                        relays = take - (
                            1 if start < node_id <= self.rho_ccw else 0
                        )
                    if relays:
                        self.sigma_ccw += relays
                        api.send_many(CCW_SEND_PORT, relays)
                    progressed = True

            # Lines 14-17: the unique leader event triggers termination.
            if (
                not self.term_pulse_sent
                and self.rho_cw == node_id == self.rho_ccw
            ):
                self.term_pulse_sent = True
                self.send_ccw(api)  # line 15: emit the termination pulse

            # Line 18: exit condition `rho_ccw > rho_cw`.
            if self.rho_ccw > self.rho_cw:
                api.terminate(self.state)  # line 19: output and stop
                return

            if not progressed:
                return


def run_terminating(
    ids: Sequence[int],
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 10_000_000,
    strict_lag: bool = True,
    strict_quiescence: bool = False,
    batched: bool = False,
) -> "TerminatingOutcome":
    """Run Algorithm 2 on an oriented ring with the given clockwise IDs.

    Args:
        ids: Unique positive node IDs in clockwise order.
        scheduler: Asynchronous adversary; defaults to global FIFO.
        max_steps: Engine safety bound.
        strict_lag: Pass False to ablate the CCW-lag discipline (A1).
        strict_quiescence: Raise on the first quiescent-termination
            violation instead of recording it.
        batched: Use the batched engine fast path (identical outcomes,
            large-IDmax runs orders of magnitude faster).

    Returns:
        A :class:`TerminatingOutcome` with outputs, counters, and the run.
    """
    validate_unique_ids(ids)
    nodes = [TerminatingNode(node_id, strict_lag=strict_lag) for node_id in ids]
    topology = build_oriented_ring(nodes)
    result = Engine(
        topology.network,
        scheduler=scheduler,
        max_steps=max_steps,
        strict_quiescence=strict_quiescence,
        batched=batched,
    ).run()
    return TerminatingOutcome(ids=list(ids), nodes=nodes, run=result)


class TerminatingOutcome:
    """Final snapshot of one Algorithm 2 execution."""

    def __init__(
        self, ids: List[int], nodes: List[TerminatingNode], run: RunResult
    ) -> None:
        self.ids = ids
        self.nodes = nodes
        self.run = run

    @property
    def outputs(self) -> List[Optional[LeaderState]]:
        """Per-node terminal outputs in clockwise ring order."""
        return [node.output for node in self.nodes]

    @property
    def leaders(self) -> List[int]:
        """Indices of nodes that *output* Leader at termination."""
        return [
            index
            for index, node in enumerate(self.nodes)
            if node.output is LeaderState.LEADER
        ]

    @property
    def expected_leader(self) -> int:
        """Index of the maximal-ID node — whom Theorem 1 says must win."""
        return max(range(len(self.ids)), key=lambda index: self.ids[index])

    @property
    def total_pulses(self) -> int:
        """Message complexity; Theorem 1 says exactly ``n * (2*IDmax + 1)``."""
        return self.run.total_sent

    @property
    def theorem1_message_bound(self) -> int:
        """The paper's exact complexity: :math:`n(2\\,\\mathsf{ID}_{max}+1)`."""
        return len(self.ids) * (2 * max(self.ids) + 1)
