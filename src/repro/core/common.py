"""Shared vocabulary of the leader-election algorithms.

Defines the output states, the oriented-ring port conventions, and the
counter-keeping base class all oriented-ring algorithm nodes share.

Port conventions (oriented rings).  Following the paper's Section 2, every
node's ``Port_1`` is its clockwise (CW) port.  Because CW pulses are *sent
from* CW ports but *arrive at* CCW ports:

* ``sendCW()``  = send on ``Port_1``; a CW pulse *arrives* at ``Port_0``.
* ``sendCCW()`` = send on ``Port_0``; a CCW pulse *arrives* at ``Port_1``.
"""

from __future__ import annotations

import enum
from typing import Any, Sequence

from repro.exceptions import ConfigurationError
from repro.simulator.node import Node, NodeAPI, PORT_ONE, PORT_ZERO

#: Port a node sends CW pulses from (its clockwise port).
CW_SEND_PORT = PORT_ONE
#: Port at which CW pulses arrive (the node's counterclockwise port).
CW_ARRIVAL_PORT = PORT_ZERO
#: Port a node sends CCW pulses from (its counterclockwise port).
CCW_SEND_PORT = PORT_ZERO
#: Port at which CCW pulses arrive (the node's clockwise port).
CCW_ARRIVAL_PORT = PORT_ONE


class LeaderState(enum.Enum):
    """A node's election verdict.

    ``UNDECIDED`` exists only transiently: stabilizing algorithms may leave
    a node undecided until its first relevant event, but at quiescence
    every node must hold ``LEADER`` or ``NON_LEADER``.
    """

    UNDECIDED = "undecided"
    LEADER = "leader"
    NON_LEADER = "non-leader"


def validate_unique_ids(ids: Sequence[int]) -> None:
    """Check an ID assignment satisfies the model's preconditions.

    IDs must be positive integers (the paper assigns positive naturals)
    and, for the unique-ID algorithms, pairwise distinct.

    Raises:
        ConfigurationError: On empty, non-positive, non-integer, or
            duplicated IDs.
    """
    if not ids:
        raise ConfigurationError("need at least one ID")
    for node_id in ids:
        if not isinstance(node_id, int) or isinstance(node_id, bool):
            raise ConfigurationError(f"ID {node_id!r} is not an integer")
        if node_id < 1:
            raise ConfigurationError(f"ID {node_id} is not positive")
    if len(set(ids)) != len(ids):
        raise ConfigurationError(f"IDs are not unique: {sorted(ids)}")


def validate_positive_ids(ids: Sequence[int]) -> None:
    """Like :func:`validate_unique_ids` but allowing duplicates (Lemma 16)."""
    if not ids:
        raise ConfigurationError("need at least one ID")
    for node_id in ids:
        if not isinstance(node_id, int) or isinstance(node_id, bool):
            raise ConfigurationError(f"ID {node_id!r} is not an integer")
        if node_id < 1:
            raise ConfigurationError(f"ID {node_id} is not positive")


class OrientedRingNode(Node):
    """Base class for nodes on an *oriented* ring.

    Maintains the paper's four counters — :math:`\\rho_{cw}, \\sigma_{cw},
    \\rho_{ccw}, \\sigma_{ccw}` — and exposes ``send_cw`` / ``send_ccw``
    helpers that keep them in sync with every pulse sent.  Receive counters
    are updated by subclasses the moment they *process* a pulse (matching
    the paper, where ``recvCW()`` consumes a pulse from the queue).

    Attributes:
        node_id: This node's ID (:math:`\\mathsf{ID}_v`).
        rho_cw / sigma_cw: CW pulses processed / sent.
        rho_ccw / sigma_ccw: CCW pulses processed / sent.
        state: Current (possibly tentative) election verdict.
    """

    __slots__ = ("node_id", "rho_cw", "sigma_cw", "rho_ccw", "sigma_ccw", "state")

    def __init__(self, node_id: int) -> None:
        super().__init__()
        if not isinstance(node_id, int) or isinstance(node_id, bool) or node_id < 1:
            raise ConfigurationError(f"node ID must be a positive int, got {node_id!r}")
        self.node_id = node_id
        self.rho_cw = 0
        self.sigma_cw = 0
        self.rho_ccw = 0
        self.sigma_ccw = 0
        self.state = LeaderState.UNDECIDED

    def send_cw(self, api: NodeAPI) -> None:
        """``sendCW()``: emit one pulse clockwise and count it."""
        self.sigma_cw += 1
        api.send(CW_SEND_PORT)

    def send_ccw(self, api: NodeAPI) -> None:
        """``sendCCW()``: emit one pulse counterclockwise and count it."""
        self.sigma_ccw += 1
        api.send(CCW_SEND_PORT)

    def classify_arrival(self, port: int) -> str:
        """Map an arrival port to the pulse's travel direction.

        Returns ``"cw"`` for clockwise pulses (arriving at ``Port_0``) and
        ``"ccw"`` for counterclockwise ones (arriving at ``Port_1``).
        """
        return "cw" if port == CW_ARRIVAL_PORT else "ccw"
