"""Content-oblivious election on 2-edge-connected graphs (ear walk).

The Chang–Chen–Zhou line (arXiv:2507.08348) lifts the paper's Algorithm 1
off the ring: a 2-edge-connected graph carries a closed **ear walk**
(:mod:`repro.graphs.walks`) that uses every directed edge at most once,
so the walk is an *oriented virtual ring* whose position a pulse's
arrival port identifies without any content.  Each vertex hosts one
virtual node per walk occurrence; the governing thresholds are the
virtual IDs of :func:`repro.core.kernels.ear.virtual_ids`, whose unique
maximum sits at occurrence 0 of the unique maximum-ID vertex — electing
that vertex physically.

Below the frontier the problem is impossible (a bridge lets the
adversary starve one side), so :func:`run_ear_election` *refuses*
bridge-containing graphs with the bridge edge as a machine-readable
witness (:class:`~repro.exceptions.BridgeWitnessError`) instead of
attempting a run that cannot be correct.

On a ring the walk is the ring, every stride is 1, and the virtual IDs
equal the physical IDs: this module *is* Algorithm 1 there, not a
variant — pinned by the degree-2 specialization tests.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.core.common import LeaderState, validate_positive_ids, validate_unique_ids
from repro.core.election import ElectionReport, _single_leader
from repro.core.kernels import ear as kernel
from repro.exceptions import ConfigurationError, ProtocolViolation
from repro.graphs.connectivity import Graph, require_two_edge_connected
from repro.simulator.engine import Engine, RunResult
from repro.simulator.node import Node, NodeAPI
from repro.simulator.scheduler import Scheduler


class EarElectionNode(Node):
    """One physical vertex hosting its walk occurrences.

    A thin adapter over :func:`repro.core.kernels.ear.step_occurrence`:
    the node's only job is routing — a pulse's arrival port selects the
    hosted occurrence (well-defined because the walk uses each directed
    edge, hence each arrival port, at most once), and the occurrence's
    relays leave on its fixed send port.  All transition arithmetic stays
    in the warm-up kernel, same as every other backend.
    """

    __slots__ = ("vids", "out_ports", "in_route", "rho", "sigma", "states")

    def __init__(
        self,
        vids: Sequence[int],
        out_ports: Sequence[int],
        in_route: "dict[int, int]",
    ) -> None:
        super().__init__()
        self.vids = tuple(vids)
        self.out_ports = tuple(out_ports)
        self.in_route = dict(in_route)
        self.rho = [0] * len(self.vids)
        self.sigma = [0] * len(self.vids)
        self.states = [LeaderState.UNDECIDED] * len(self.vids)

    def on_init(self, api: NodeAPI) -> None:
        # Line 1 of Algorithm 1, once per hosted virtual node.
        for occurrence, port in enumerate(self.out_ports):
            self.sigma[occurrence] += 1
            api.send(port)

    def _consume(self, api: NodeAPI, port: int, count: int) -> None:
        occurrence = self.in_route.get(port)
        if occurrence is None:
            raise ProtocolViolation(
                f"pulse arrived on port {port}, which carries no virtual "
                "ring edge of the ear walk"
            )
        rho, relays, state = kernel.step_occurrence(
            self.vids[occurrence], self.rho[occurrence], count
        )
        self.rho[occurrence] = rho
        self.states[occurrence] = state
        if relays:
            self.sigma[occurrence] += relays
            api.send_many(self.out_ports[occurrence], relays)

    def on_message(self, api: NodeAPI, port: int, content: Any) -> None:
        self._consume(api, port, 1)

    def on_pulses(self, api: NodeAPI, port: int, count: int) -> None:
        self._consume(api, port, count)

    @property
    def state(self) -> LeaderState:
        """The vertex's verdict: Leader iff any hosted occurrence leads."""
        if any(s is LeaderState.LEADER for s in self.states):
            return LeaderState.LEADER
        if all(s is LeaderState.NON_LEADER for s in self.states):
            return LeaderState.NON_LEADER
        return LeaderState.UNDECIDED


class EarOutcome:
    """Final snapshot of one ear-walk election execution."""

    def __init__(
        self,
        graph: Graph,
        ids: List[int],
        routing: kernel.EarRouting,
        nodes: List[EarElectionNode],
        run: RunResult,
    ) -> None:
        self.graph = graph
        self.ids = ids
        self.routing = routing
        self.nodes = nodes
        self.run = run

    @property
    def states(self) -> List[LeaderState]:
        """Per-vertex verdicts (Leader iff a hosted occurrence leads)."""
        return [node.state for node in self.nodes]

    @property
    def leaders(self) -> List[int]:
        """Vertices that stabilized as Leader."""
        return [
            index
            for index, node in enumerate(self.nodes)
            if node.state is LeaderState.LEADER
        ]

    @property
    def occurrence_states(self) -> List[LeaderState]:
        """Per-walk-position verdicts, in virtual ring order."""
        states: List[LeaderState] = [LeaderState.UNDECIDED] * self.routing.length
        for vertex, node in enumerate(self.nodes):
            for k, position in enumerate(self.routing.occurrences[vertex]):
                states[position] = node.states[k]
        return states

    @property
    def total_pulses(self) -> int:
        """Message complexity (should equal ``L * IDmax * C``)."""
        return self.run.total_sent

    @property
    def claimed_bound(self) -> int:
        """Corollary 13 on the virtual ring: ``L * IDmax * C``."""
        return kernel.pulse_bound(self.ids, self.routing)


def run_ear_election(
    graph: Graph,
    ids: Sequence[int],
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 10_000_000,
    batched: bool = False,
) -> EarOutcome:
    """Run the ear-walk election on a 2-edge-connected graph.

    Args:
        graph: The physical topology.  Must be 2-edge-connected; graphs
            with a bridge are refused with the bridge edge as witness
            (:class:`~repro.exceptions.BridgeWitnessError`).
        ids: Unique positive IDs, indexed by vertex.
        scheduler: Asynchronous adversary; defaults to global FIFO.
        max_steps: Engine safety bound.
        batched: Use the batched engine fast path (chunk-exact kernel,
            so outcomes are identical).

    Returns:
        An :class:`EarOutcome`; exactly one vertex — the maximum-ID
        vertex — stabilizes as Leader.
    """
    validate_positive_ids(ids)
    validate_unique_ids(ids)
    if len(ids) != graph.n:
        raise ConfigurationError(
            f"graph has {graph.n} vertices but {len(ids)} IDs were given"
        )
    require_two_edge_connected(graph)
    routing = kernel.build_routing(graph)
    vids = kernel.virtual_ids(ids, routing)
    nodes: List[EarElectionNode] = []
    for vertex in range(graph.n):
        out_ports, in_route = routing.node_tables(vertex)
        node_vids = tuple(
            vids[position] for position in routing.occurrences[vertex]
        )
        nodes.append(EarElectionNode(node_vids, out_ports, in_route))
    network = routing.topology.wire(nodes)
    result = Engine(
        network, scheduler=scheduler, max_steps=max_steps, batched=batched
    ).run()
    return EarOutcome(
        graph=graph, ids=list(ids), routing=routing, nodes=nodes, run=result
    )


def elect_leader_ear(
    graph: Graph,
    ids: Sequence[int],
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 10_000_000,
    batched: bool = False,
) -> ElectionReport:
    """Uniform-report front door for the 2-edge-connected election."""
    outcome = run_ear_election(
        graph, ids, scheduler=scheduler, max_steps=max_steps, batched=batched
    )
    states = outcome.states
    return ElectionReport(
        setting="ear",
        n=graph.n,
        leader=_single_leader(states),
        states=states,
        terminated=False,  # stabilizing, like Algorithm 1
        quiescent=outcome.run.quiescent,
        total_pulses=outcome.total_pulses,
        claimed_bound=outcome.claimed_bound,
    )
