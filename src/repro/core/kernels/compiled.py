"""Numba-JIT fleet lowerings: machine-speed per-instance round loops.

This is the compiled tier of the backend registry
(:func:`repro.accel.resolve_backend`) and **the only module allowed to
import numba** (CI greps for this).  It lowers the fleet engine's
round/phase/skip loops (:mod:`repro.simulator.fleet`) plus the kernels'
column steps into ``@njit(cache=True)`` functions:

* :func:`warmup_fleet` — Algorithm 1's directional round loop (also both
  halves of Algorithm 3), fusing the warmup kernel's ``step`` /
  ``skip_margin`` / ``apply_laps`` with the lockstep lap-skip and the
  seeded scheduler;
* :func:`terminating_fleet` — Algorithm 2's phased loop, fusing the
  terminating kernel's ``drain`` chunk semantics with the CW/CCW
  lap-skips and the hop-skip fast-forward.

The loops are *scalar per instance* rather than vectorized: each
instance runs its pure-Python twin's exact control flow
(``_py_warmup_direction_one`` / ``_py_terminating_one``), so
bit-identity with the oracle holds by construction and the JIT pays no
whole-fleet array traffic per round.  Every function body is also plain
Python — with numba absent the same code runs interpreted, which is how
the bit-identity battery exercises this module on JIT-free installs.

Fault support: the counter-based fault hash (`roll_u64`) is
reimplemented here in wraparound ``uint64`` arithmetic (cross-checked
value-for-value by ``tests/test_compiled_kernels.py``), so rate-based
channel faults (drop/duplicate/spurious, with bursts) run inside the
JIT loop.  Deterministic clauses (pulse drops, crashes, corruptions)
and per-round observers need Python callbacks mid-round — the fleet
dispatch falls back to the NumPy columns for those (the documented
fallback seam, docs/PERFORMANCE.md).

First-call compilation costs ~seconds; :func:`warm_compiled` front-loads
it (benches and the CLI call it once), and ``cache=True`` plus the
pinned ``NUMBA_CACHE_DIR`` (:func:`repro.accel.pin_jit_cache`) persist
the machine code across processes — sweep shards reuse the parent's
cache instead of recompiling.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Any, Callable, Dict, Optional, Sequence, Tuple, TypeVar, cast

from repro.accel import HAVE_NUMPY, np, pin_jit_cache, require_numpy
from repro.exceptions import ConfigurationError, SimulationLimitExceeded
from repro.faults.model import (
    _KEY_CHANNEL,
    _KEY_INSTANCE,
    _KEY_PULSE,
    _KEY_ROUND,
    _MIX_A,
    _MIX_B,
    _TWO64,
    KIND_DROP,
    KIND_DUPLICATE,
    KIND_SPURIOUS,
    FaultModel,
    mix64,
    rate_threshold,
)

try:  # pragma: no cover - trivially one of the two branches per install
    if not HAVE_NUMPY:  # the JIT tier builds on numpy arrays
        raise ImportError("the numba tier requires numpy")
    # Pin the on-disk cache location BEFORE numba is imported so every
    # process (and forked sweep shard) shares one compiled cache.
    pin_jit_cache()
    import numba as _numba  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - exercised on jit-free installs
    _numba = None

#: True when the ``[jit]`` extra's numba is importable (and numpy too).
HAVE_NUMBA: bool = _numba is not None

_F = TypeVar("_F", bound=Callable[..., Any])


def _jit(fn: _F) -> _F:
    """``numba.njit(cache=True)`` when available, else the function
    itself — the interpreted body is the same semantics (and is what the
    JIT-free bit-identity tests execute)."""
    if _numba is not None:
        return cast("_F", _numba.njit(cache=True)(fn))
    return fn


# uint64 twins of the counter-hash constants (repro.faults.model).  With
# numpy absent they stay plain ints: the loops below are then never
# called (the wrappers require numpy), but the module must still import.
_u64: Callable[[int], Any] = np.uint64 if HAVE_NUMPY else int
_UKEY_INSTANCE = _u64(_KEY_INSTANCE)
_UKEY_ROUND = _u64(_KEY_ROUND)
_UKEY_CHANNEL = _u64(_KEY_CHANNEL)
_UKEY_PULSE = _u64(_KEY_PULSE)
_UMIX_A = _u64(_MIX_A)
_UMIX_B = _u64(_MIX_B)
_UKIND_DROP = _u64(KIND_DROP)
_UKIND_DUPLICATE = _u64(KIND_DUPLICATE)
_UKIND_SPURIOUS = _u64(KIND_SPURIOUS)
_U0 = _u64(0)
_U1 = _u64(1)
_U32 = _u64(32)
_U33 = _u64(33)

#: Scalar margin sentinel, matching the pure-Python backend's
#: ``_MARGIN_INF`` (1 << 62): larger than any reachable window sum.
_MARGIN_BIG = 1 << 62


@_jit
def _roll(
    seed_mixed: Any, kind: Any, instance: Any, round_index: Any,
    channel: Any, pulse: Any,
) -> Any:
    """uint64 twin of :func:`repro.faults.model.roll_u64` (the seed is
    pre-mixed once by the caller); wraparound arithmetic replaces the
    reference's explicit ``& _MASK64``."""
    key = (
        seed_mixed
        + kind
        + instance * _UKEY_INSTANCE
        + round_index * _UKEY_ROUND
        + channel * _UKEY_CHANNEL
        + pulse * _UKEY_PULSE
    )
    x = (key ^ (key >> _U33)) * _UMIX_A
    x = (x ^ (x >> _U33)) * _UMIX_B
    return x ^ (x >> _U33)


@_jit
def _sched_hit(seed_mixed: Any, instance: int, round_index: int, channel: int) -> bool:
    """uint64 twin of :func:`repro.simulator.fleet.schedule_bit`."""
    key = (
        seed_mixed
        + np.uint64(instance) * _UKEY_INSTANCE
        + np.uint64(round_index) * _UKEY_ROUND
        + np.uint64(channel) * _UKEY_CHANNEL
    )
    x = (key ^ (key >> _U33)) * _UMIX_A
    x = (x ^ (x >> _U33)) * _UMIX_B
    x = x ^ (x >> _U33)
    return bool(((x >> _U32) & _U1) != _U0)


@_jit
def _apply_rates(
    flight: Any, seed_mixed: Any, g_inst: int, ordinal: int, chan_base: int,
    t_drop: Any, drop_all: bool, t_dup: Any, dup_all: bool,
    t_spur: Any, spur_all: bool, events: Any,
) -> None:
    """Twin of :func:`repro.faults.fleet._apply_random_py` for one
    direction's flight array (drop phase, then duplicate, then spurious
    — same order, same roll coordinates, same event counts)."""
    n = flight.shape[0]
    ui = np.uint64(g_inst)
    ur = np.uint64(ordinal)
    if drop_all or t_drop > _U0:
        for v in range(n):
            uc = np.uint64(chan_base + v)
            hits = 0
            for j in range(flight[v]):
                if drop_all or _roll(
                    seed_mixed, _UKIND_DROP, ui, ur, uc, np.uint64(j)
                ) < t_drop:
                    hits += 1
            if hits > 0:
                flight[v] -= hits
                events[0] += hits
    if dup_all or t_dup > _U0:
        for v in range(n):
            if flight[v] > 0:
                uc = np.uint64(chan_base + v)
                if dup_all or _roll(
                    seed_mixed, _UKIND_DUPLICATE, ui, ur, uc, _U0
                ) < t_dup:
                    flight[v] += 1
                    events[1] += 1
    if spur_all or t_spur > _U0:
        for v in range(n):
            uc = np.uint64(chan_base + v)
            if spur_all or _roll(
                seed_mixed, _UKIND_SPURIOUS, ui, ur, uc, _U0
            ) < t_spur:
                flight[v] += 1
                events[2] += 1


@_jit
def _warmup_loop(
    gov: Any, shift: int, lockstep: bool, sched_seed_mixed: Any,
    chan_base: int, max_rounds: int, watchdog: int, allow_skips: bool,
    has_rates: bool, fault_seed_mixed: Any, burst_start: int, burst_len: int,
    t_drop: Any, drop_all: bool, t_dup: Any, dup_all: bool,
    t_spur: Any, spur_all: bool, instance_offset: int,
    rho: Any, sigma: Any, total: Any, stuck: Any,
    rounds_out: Any, skips_out: Any, events: Any, err: Any,
) -> None:
    """Fused per-instance twin of ``fleet._py_warmup_direction_one`` over
    a ``[B, n]`` block: warmup kernel step + lap-skip + seeded scheduler
    + rate faults, one scalar loop per instance.  Fills the per-instance
    ``rounds_out`` / ``skips_out`` diagnostics (so callers can aggregate
    exactly like the per-instance python backend); on a round-limit
    breach sets ``err[0]`` and returns early (the wrapper raises)."""
    B, n = gov.shape
    flight = np.empty(n, np.int64)
    delivered = np.empty(n, np.int64)
    for b in range(B):
        for v in range(n):
            flight[v] = 1  # kernel.init: one pulse in flight toward each
        g_inst = instance_offset + b
        rounds = 0
        skips = 0
        while True:
            if has_rates:
                ordinal = rounds + 1
                if ordinal >= burst_start and (
                    burst_len < 0 or ordinal < burst_start + burst_len
                ):
                    _apply_rates(
                        flight, fault_seed_mixed, g_inst, ordinal, chan_base,
                        t_drop, drop_all, t_dup, dup_all, t_spur, spur_all,
                        events,
                    )
            k = 0
            for v in range(n):
                k += flight[v]
            if k == 0:
                break
            if watchdog >= 0 and rounds >= watchdog:
                stuck[b] = True
                break
            rounds += 1
            if rounds > max_rounds:
                err[0] = rounds
                return
            if lockstep:
                mmin = _MARGIN_BIG
                for v in range(n):
                    if rho[b, v] < gov[b, v]:
                        m = gov[b, v] - rho[b, v] - 1
                        if m < mmin:
                            mmin = m
                if mmin >= _MARGIN_BIG:
                    mmin = 0  # every node past threshold: only under faults
                laps = mmin // k
                if laps >= 1 and allow_skips:
                    skips += 1
                    add = laps * k
                    for v in range(n):
                        rho[b, v] += add
                        sigma[b, v] += add
                    total[b] += add * n
                for v in range(n):
                    delivered[v] = flight[v]
                    flight[v] = 0
            else:
                dsum = 0
                for v in range(n):
                    if _sched_hit(sched_seed_mixed, b, rounds, chan_base + v):
                        delivered[v] = flight[v]
                    else:
                        delivered[v] = 0
                    dsum += delivered[v]
                if dsum == 0:
                    # Starved row: deliver everything (progress guarantee).
                    for v in range(n):
                        delivered[v] = flight[v]
                        flight[v] = 0
                else:
                    for v in range(n):
                        flight[v] -= delivered[v]
            for v in range(n):
                count = delivered[v]
                if count == 0:
                    continue
                start = rho[b, v]
                after = start + count
                rho[b, v] = after
                g = gov[b, v]
                relays = count
                if start < g and g <= after:
                    relays -= 1  # the pulse landing exactly on the ID
                if relays > 0:
                    sigma[b, v] += relays
                    w = v + shift
                    if w >= n:
                        w = 0
                    elif w < 0:
                        w = n - 1
                    flight[w] += relays
                    total[b] += relays
        rounds_out[b] = rounds
        skips_out[b] = skips


@_jit
def _drain_node(
    v: int, ids_b: Any, rho_cw_b: Any, sigma_cw_b: Any, rho_ccw_b: Any,
    sigma_ccw_b: Any, pend_cw: Any, pend_ccw: Any, sends_cw: Any,
    sends_ccw: Any, term_sent_b: Any, state_code: Any,
) -> int:
    """Twin of the terminating kernel's ``drain`` (strict-lag) for node
    ``v`` over per-instance arrays; ``state_code`` tracks the tentative
    verdict (0 undecided / 1 leader / 2 non-leader).  Returns 1 when the
    line-18 exit fires, else 0."""
    node_id = ids_b[v]
    while True:
        progressed = False
        # Lines 3-8: the CW instance, one maximal uniform chunk.
        if pend_cw[v] > 0:
            take = pend_cw[v]
            if rho_cw_b[v] < node_id:
                rem = node_id - rho_cw_b[v]
                if rem < take:
                    take = rem
            pend_cw[v] -= take
            start = rho_cw_b[v]
            rho_cw_b[v] = start + take
            if rho_cw_b[v] == node_id:
                state_code[v] = 1
            else:
                state_code[v] = 2
            relays = take
            if start < node_id and node_id <= rho_cw_b[v]:
                relays -= 1
            if relays > 0:
                sigma_cw_b[v] += relays
                sends_cw[v] += relays
            progressed = True
        # Lines 9-13: the CCW instance, gated on rho_cw >= ID.
        if rho_cw_b[v] >= node_id:
            if sigma_ccw_b[v] == 0:
                sigma_ccw_b[v] += 1
                sends_ccw[v] += 1  # line 10: the CCW initial pulse
            if pend_ccw[v] > 0:
                take = pend_ccw[v]
                if rho_ccw_b[v] < node_id:
                    rem = node_id - rho_ccw_b[v]
                    if rem < take:
                        take = rem
                if rho_ccw_b[v] <= rho_cw_b[v]:
                    rem = rho_cw_b[v] + 1 - rho_ccw_b[v]
                    if rem < take:
                        take = rem
                pend_ccw[v] -= take
                start = rho_ccw_b[v]
                rho_ccw_b[v] = start + take
                if term_sent_b[v]:
                    relays = 0
                else:
                    relays = take
                    if start < node_id and node_id <= rho_ccw_b[v]:
                        relays -= 1
                if relays > 0:
                    sigma_ccw_b[v] += relays
                    sends_ccw[v] += relays
                progressed = True
        # Lines 14-15: the unique leader event emits the term pulse.
        if (
            not term_sent_b[v]
            and rho_cw_b[v] == node_id
            and rho_ccw_b[v] == node_id
        ):
            term_sent_b[v] = True
            sigma_ccw_b[v] += 1
            sends_ccw[v] += 1
        # Line 18: exit on rho_ccw > rho_cw.
        if rho_ccw_b[v] > rho_cw_b[v]:
            return 1
        if not progressed:
            return 0


@_jit
def _terminating_loop(
    ids: Any, lockstep: bool, sched_seed_mixed: Any, max_rounds: int,
    watchdog: int, allow_skips: bool,
    has_rates: bool, fault_seed_mixed: Any, burst_start: int, burst_len: int,
    t_drop: Any, drop_all: bool, t_dup: Any, dup_all: bool,
    t_spur: Any, spur_all: bool, instance_offset: int,
    rho_cw: Any, sigma_cw: Any, rho_ccw: Any, sigma_ccw: Any,
    term_sent: Any, terminated: Any, out_leader: Any, total: Any,
    stuck: Any, ignored: Any, rounds_out: Any, skips_out: Any,
    events: Any, err: Any,
) -> None:
    """Fused per-instance twin of ``fleet._py_terminating_one`` over a
    ``[B, n]`` block: buffer-then-drain-once rounds, CW-then-CCW phases,
    lap- and hop-skips, seeded scheduler, rate faults.  Per-instance
    ``rounds_out`` / ``skips_out`` as in :func:`_warmup_loop`."""
    B, n = ids.shape
    cw_flight = np.empty(n, np.int64)
    ccw_flight = np.empty(n, np.int64)
    pend_cw = np.empty(n, np.int64)
    pend_ccw = np.empty(n, np.int64)
    sends_cw = np.empty(n, np.int64)
    sends_ccw = np.empty(n, np.int64)
    deliver_cw = np.empty(n, np.int64)
    deliver_ccw = np.empty(n, np.int64)
    margins = np.empty(n, np.int64)
    gains = np.empty(n, np.int64)
    trial = np.empty(n, np.int64)
    buf = np.empty(n, np.int64)
    state_code = np.empty(n, np.int64)
    for b in range(B):
        ids_b = ids[b]
        rho_cw_b = rho_cw[b]
        sigma_cw_b = sigma_cw[b]
        rho_ccw_b = rho_ccw[b]
        sigma_ccw_b = sigma_ccw[b]
        term_sent_b = term_sent[b]
        terminated_b = terminated[b]
        out_leader_b = out_leader[b]
        for v in range(n):
            cw_flight[v] = 0
            ccw_flight[v] = 0
            pend_cw[v] = 0
            pend_ccw[v] = 0
            sends_cw[v] = 0
            sends_ccw[v] = 0
            state_code[v] = 0
        # kernel.init per node: sigma_cw pre-set to 1 by the wrapper; one
        # CW pulse buffered, then the (fresh-state no-op) drain — kept so
        # the init path is the scalar kernel's, not an assumption.
        for v in range(n):
            sends_cw[v] += 1
            _drain_node(
                v, ids_b, rho_cw_b, sigma_cw_b, rho_ccw_b, sigma_ccw_b,
                pend_cw, pend_ccw, sends_cw, sends_ccw, term_sent_b,
                state_code,
            )
        for v in range(n):
            if sends_cw[v] > 0:
                w = v + 1
                if w == n:
                    w = 0
                cw_flight[w] += sends_cw[v]
                total[b] += sends_cw[v]
                sends_cw[v] = 0
            if sends_ccw[v] > 0:
                w = v - 1
                if w < 0:
                    w = n - 1
                ccw_flight[w] += sends_ccw[v]
                total[b] += sends_ccw[v]
                sends_ccw[v] = 0
        g_inst = instance_offset + b
        rounds = 0
        skips = 0
        while True:
            if has_rates:
                ordinal = rounds + 1
                if ordinal >= burst_start and (
                    burst_len < 0 or ordinal < burst_start + burst_len
                ):
                    _apply_rates(
                        cw_flight, fault_seed_mixed, g_inst, ordinal, 0,
                        t_drop, drop_all, t_dup, dup_all, t_spur, spur_all,
                        events,
                    )
                    _apply_rates(
                        ccw_flight, fault_seed_mixed, g_inst, ordinal, n,
                        t_drop, drop_all, t_dup, dup_all, t_spur, spur_all,
                        events,
                    )
            k_cw = 0
            k_ccw = 0
            for v in range(n):
                k_cw += cw_flight[v]
                k_ccw += ccw_flight[v]
            if k_cw + k_ccw == 0:
                break
            if watchdog >= 0 and rounds >= watchdog:
                stuck[b] = True
                break
            rounds += 1
            if rounds > max_rounds:
                err[0] = rounds
                return
            if lockstep:
                skippable = allow_skips
                if skippable:
                    for v in range(n):
                        if term_sent_b[v] or terminated_b[v]:
                            skippable = False
                            break
                if skippable and k_cw > 0:
                    # CW phase: warmup margin, then whole-lap + hop skips.
                    mmin = _MARGIN_BIG
                    for v in range(n):
                        if rho_cw_b[v] < ids_b[v]:
                            m = ids_b[v] - rho_cw_b[v] - 1
                        else:
                            m = _MARGIN_BIG
                        margins[v] = m
                        if m < mmin:
                            mmin = m
                    if has_rates and mmin >= _MARGIN_BIG:
                        mmin = 0
                    laps = mmin // k_cw
                    if laps >= 1:
                        skips += 1
                        add = laps * k_cw
                        for v in range(n):
                            rho_cw_b[v] += add
                            sigma_cw_b[v] += add
                            state_code[v] = 2  # apply_cw_laps: Non-Leader
                            margins[v] -= add
                        total[b] += add * n
                    hops = 0
                    for v in range(n):
                        gains[v] = 0
                    while hops < n - 1:
                        nxt = hops + 1
                        ok = True
                        for v in range(n):
                            src = v - nxt + 1
                            if src < 0:
                                src += n
                            g = gains[v] + cw_flight[src]
                            if g > margins[v]:
                                ok = False
                                break
                            trial[v] = g
                        if not ok:
                            break
                        for v in range(n):
                            gains[v] = trial[v]
                        hops = nxt
                    if hops > 0:
                        skips += 1
                        for v in range(n):
                            src = v - hops
                            if src < 0:
                                src += n
                            buf[v] = cw_flight[src]
                        for v in range(n):
                            cw_flight[v] = buf[v]
                        for v in range(n):
                            if gains[v] > 0:
                                rho_cw_b[v] += gains[v]
                                sigma_cw_b[v] += gains[v]
                                state_code[v] = 2
                                total[b] += gains[v]
                elif skippable and k_ccw > 0:
                    # CCW phase: the trigger/exit-aware margin.
                    mmin = _MARGIN_BIG
                    for v in range(n):
                        if rho_ccw_b[v] < ids_b[v]:
                            m = ids_b[v] - rho_ccw_b[v] - 1
                            m2 = rho_cw_b[v] - rho_ccw_b[v]
                            if m2 < m:
                                m = m2
                        else:
                            m = rho_cw_b[v] - rho_ccw_b[v]
                        margins[v] = m
                        if m < mmin:
                            mmin = m
                    laps = mmin // k_ccw
                    if laps >= 1:
                        skips += 1
                        add = laps * k_ccw
                        for v in range(n):
                            rho_ccw_b[v] += add
                            sigma_ccw_b[v] += add
                            margins[v] -= add
                        total[b] += add * n
                    hops = 0
                    for v in range(n):
                        gains[v] = 0
                    while hops < n - 1:
                        nxt = hops + 1
                        ok = True
                        for v in range(n):
                            src = v + nxt - 1
                            if src >= n:
                                src -= n
                            g = gains[v] + ccw_flight[src]
                            if g > margins[v]:
                                ok = False
                                break
                            trial[v] = g
                        if not ok:
                            break
                        for v in range(n):
                            gains[v] = trial[v]
                        hops = nxt
                    if hops > 0:
                        skips += 1
                        for v in range(n):
                            src = v + hops
                            if src >= n:
                                src -= n
                            buf[v] = ccw_flight[src]
                        for v in range(n):
                            ccw_flight[v] = buf[v]
                        for v in range(n):
                            if gains[v] > 0:
                                rho_ccw_b[v] += gains[v]
                                sigma_ccw_b[v] += gains[v]
                                total[b] += gains[v]
                for v in range(n):
                    deliver_cw[v] = cw_flight[v]
                    cw_flight[v] = 0
                if k_cw > 0:  # CW phase: CCW pulses stall in their channels
                    for v in range(n):
                        deliver_ccw[v] = 0
                else:
                    for v in range(n):
                        deliver_ccw[v] = ccw_flight[v]
                        ccw_flight[v] = 0
            else:
                dsum = 0
                for v in range(n):
                    if _sched_hit(sched_seed_mixed, b, rounds, v):
                        deliver_cw[v] = cw_flight[v]
                    else:
                        deliver_cw[v] = 0
                    if _sched_hit(sched_seed_mixed, b, rounds, n + v):
                        deliver_ccw[v] = ccw_flight[v]
                    else:
                        deliver_ccw[v] = 0
                    dsum += deliver_cw[v] + deliver_ccw[v]
                if dsum == 0:
                    for v in range(n):
                        deliver_cw[v] = cw_flight[v]
                        cw_flight[v] = 0
                        deliver_ccw[v] = ccw_flight[v]
                        ccw_flight[v] = 0
                else:
                    for v in range(n):
                        cw_flight[v] -= deliver_cw[v]
                        ccw_flight[v] -= deliver_ccw[v]
            # Buffer both directions, then drain once per node; deliveries
            # to terminated nodes are ignored (the model: no reaction).
            for v in range(n):
                if terminated_b[v]:
                    ignored[0] += deliver_cw[v] + deliver_ccw[v]
                else:
                    pend_cw[v] += deliver_cw[v]
                    pend_ccw[v] += deliver_ccw[v]
            for v in range(n):
                if terminated_b[v]:
                    continue
                exited = _drain_node(
                    v, ids_b, rho_cw_b, sigma_cw_b, rho_ccw_b, sigma_ccw_b,
                    pend_cw, pend_ccw, sends_cw, sends_ccw, term_sent_b,
                    state_code,
                )
                if exited == 1:
                    terminated_b[v] = True
                    out_leader_b[v] = state_code[v] == 1
            for v in range(n):
                if sends_cw[v] > 0:
                    w = v + 1
                    if w == n:
                        w = 0
                    cw_flight[w] += sends_cw[v]
                    total[b] += sends_cw[v]
                    sends_cw[v] = 0
                if sends_ccw[v] > 0:
                    w = v - 1
                    if w < 0:
                        w = n - 1
                    ccw_flight[w] += sends_ccw[v]
                    total[b] += sends_ccw[v]
                    sends_ccw[v] = 0
        for v in range(n):
            if terminated_b[v]:
                ignored[0] += pend_cw[v] + pend_ccw[v]
        rounds_out[b] = rounds
        skips_out[b] = skips


# ---------------------------------------------------------------------------
# Python wrappers: array setup, fault-model lowering, error surfacing.
# ---------------------------------------------------------------------------

_EVENT_NAMES = ("dropped", "duplicated", "injected")

_NOTIFIED = False


def _notice_once() -> None:
    """One-line stderr notice on the first JIT entry per process (the
    compile can take seconds; the on-disk cache amortizes it)."""
    global _NOTIFIED
    if _NOTIFIED or not HAVE_NUMBA:
        return
    _NOTIFIED = True
    cache = os.environ.get("NUMBA_CACHE_DIR", "numba's default cache dir")
    print(
        f"repro: JIT-compiling fleet kernels (first call; cached in {cache})",
        file=sys.stderr,
    )


def _fault_params(model: Optional[FaultModel]) -> Tuple[Any, ...]:
    """Lower a rate-only :class:`FaultModel` to the JIT loops' scalar
    parameters: ``(has_rates, seed_mixed, burst_start, burst_len,
    t_drop, drop_all, t_dup, dup_all, t_spur, spur_all)``.  The 2**64
    "certain" threshold (which cannot ride in a uint64) becomes the
    ``*_all`` flag."""
    if model is None:
        return (False, _u64(0), 1, -1, _u64(0), False, _u64(0), False, _u64(0), False)
    if model.drops or model.crashes or model.corruptions:
        raise ConfigurationError(
            "the compiled fleet backend supports rate-based channel faults "
            "only; deterministic clauses run on the numpy/python backends"
        )

    def split(threshold: int) -> Tuple[Any, bool]:
        if threshold >= _TWO64:
            return _u64(0), True
        return _u64(threshold), False

    t_drop, drop_all = split(rate_threshold(model.drop_rate))
    t_dup, dup_all = split(rate_threshold(model.duplicate_rate))
    t_spur, spur_all = split(rate_threshold(model.spurious_rate))
    burst_start, burst_len = 1, -1
    if model.burst is not None:
        burst_start = model.burst.start
        burst_len = -1 if model.burst.length is None else model.burst.length
    has_rates = model.has_channel_rates
    return (
        has_rates, _u64(mix64(model.seed)), burst_start, burst_len,
        t_drop, drop_all, t_dup, dup_all, t_spur, spur_all,
    )


def _limit_error(max_rounds: int, rounds: int) -> SimulationLimitExceeded:
    return SimulationLimitExceeded(
        f"fleet exceeded {max_rounds} rounds before quiescence", steps=rounds
    )


def warmup_fleet(
    id_lists: Sequence[Sequence[int]],
    shift: int,
    scheduler: str,
    seed: int,
    chan_base: int,
    max_rounds: int,
    model: Optional[FaultModel] = None,
    instance_offset: int = 0,
    watchdog: Optional[int] = None,
) -> Tuple[Any, Any, Any, Any, Any, Any, Dict[str, int]]:
    """Run a block of directional warmup (Algorithm 1 / 3-half) instances
    through the JIT loop.

    Returns ``(rho, sigma, total, rounds, lap_skips, stuck, events)``
    where ``rounds`` and ``lap_skips`` are *per-instance* ``[B]`` arrays
    (the caller aggregates them exactly like the per-instance python
    backend) plus the fault-event counter dict.  ``chan_base`` keys both the seeded
    schedule stream and the fault channel coordinates (0 for CW, ``n``
    for the CCW half of Algorithm 3).
    """
    np_mod = require_numpy("the compiled fleet backend")
    gov = np_mod.asarray(id_lists, dtype=np_mod.int64)
    B, n = gov.shape
    rho = np_mod.zeros((B, n), np_mod.int64)
    sigma = np_mod.ones((B, n), np_mod.int64)
    total = np_mod.full(B, n, np_mod.int64)
    stuck = np_mod.zeros(B, bool)
    rounds_out = np_mod.zeros(B, np_mod.int64)
    skips_out = np_mod.zeros(B, np_mod.int64)
    events = np_mod.zeros(3, np_mod.int64)
    err = np_mod.zeros(1, np_mod.int64)
    params = _fault_params(model)
    _notice_once()
    with np_mod.errstate(over="ignore"):  # interpreted fallback: uint64 wraps
        _warmup_loop(
            gov, shift, scheduler == "lockstep", _u64(mix64(seed)),
            chan_base, max_rounds, -1 if watchdog is None else watchdog,
            True, *params, instance_offset,
            rho, sigma, total, stuck, rounds_out, skips_out, events, err,
        )
    if err[0]:
        raise _limit_error(max_rounds, int(err[0]))
    event_dict = dict(zip(_EVENT_NAMES, (int(x) for x in events)))
    return rho, sigma, total, rounds_out, skips_out, stuck, event_dict


def terminating_fleet(
    id_lists: Sequence[Sequence[int]],
    scheduler: str,
    seed: int,
    max_rounds: int,
    model: Optional[FaultModel] = None,
    instance_offset: int = 0,
    watchdog: Optional[int] = None,
) -> Tuple[Dict[str, Any], Any, Any, int, Any, Dict[str, int]]:
    """Run a block of Algorithm 2 instances through the JIT loop.

    Returns ``(columns, rounds, lap_skips, ignored, stuck, events)``
    with per-instance ``[B]`` ``rounds`` / ``lap_skips`` arrays, and
    where ``columns`` maps the terminating column names (``rho_cw`` ...
    ``out_leader``, ``total``) to ``[B, n]`` / ``[B]`` arrays matching
    ``fleet._np_terminating``'s outputs.
    """
    np_mod = require_numpy("the compiled fleet backend")
    ids = np_mod.asarray(id_lists, dtype=np_mod.int64)
    B, n = ids.shape
    rho_cw = np_mod.zeros((B, n), np_mod.int64)
    sigma_cw = np_mod.ones((B, n), np_mod.int64)  # line 1: init pulse sent
    rho_ccw = np_mod.zeros((B, n), np_mod.int64)
    sigma_ccw = np_mod.zeros((B, n), np_mod.int64)
    term_sent = np_mod.zeros((B, n), bool)
    terminated = np_mod.zeros((B, n), bool)
    out_leader = np_mod.zeros((B, n), bool)
    total = np_mod.zeros(B, np_mod.int64)
    stuck = np_mod.zeros(B, bool)
    ignored = np_mod.zeros(1, np_mod.int64)
    rounds_out = np_mod.zeros(B, np_mod.int64)
    skips_out = np_mod.zeros(B, np_mod.int64)
    events = np_mod.zeros(3, np_mod.int64)
    err = np_mod.zeros(1, np_mod.int64)
    params = _fault_params(model)
    _notice_once()
    with np_mod.errstate(over="ignore"):
        _terminating_loop(
            ids, scheduler == "lockstep", _u64(mix64(seed)), max_rounds,
            -1 if watchdog is None else watchdog, True, *params,
            instance_offset,
            rho_cw, sigma_cw, rho_ccw, sigma_ccw, term_sent, terminated,
            out_leader, total, stuck, ignored, rounds_out, skips_out,
            events, err,
        )
    if err[0]:
        raise _limit_error(max_rounds, int(err[0]))
    columns = {
        "rho_cw": rho_cw,
        "sigma_cw": sigma_cw,
        "rho_ccw": rho_ccw,
        "sigma_ccw": sigma_ccw,
        "term_sent": term_sent,
        "terminated": terminated,
        "out_leader": out_leader,
        "total": total,
    }
    event_dict = dict(zip(_EVENT_NAMES, (int(x) for x in events)))
    return (
        columns, rounds_out, skips_out, int(ignored[0]), stuck, event_dict
    )


_WARMED: Optional[float] = None


def warm_compiled() -> float:
    """Compile every JIT entry point on a tiny workload (idempotent).

    Numba specializes per argument-type signature and every production
    call uses the same signature as these probes, so one call per entry
    point front-loads all compilation.  Returns the wall-clock seconds
    the warm-up took (0.0 on repeat calls or when numba is absent).
    """
    global _WARMED
    if not HAVE_NUMBA:
        return 0.0
    if _WARMED is not None:
        return 0.0
    t0 = time.perf_counter()
    tiny = [[2, 1], [1, 2]]
    model = FaultModel(drop_rate=0.25, spurious_rate=0.25, seed=1)
    for scheduler in ("lockstep", "seeded"):
        warmup_fleet(tiny, +1, scheduler, 0, 0, 10_000, watchdog=64)
        terminating_fleet(tiny, scheduler, 0, 10_000, watchdog=64)
    warmup_fleet(tiny, -1, "lockstep", 0, 2, 10_000, model=model, watchdog=64)
    terminating_fleet(tiny, "lockstep", 0, 10_000, model=model, watchdog=64)
    _WARMED = time.perf_counter() - t0
    return _WARMED
