"""The transition-kernel protocol: one ``step`` per algorithm.

A *kernel* is the single source of truth for one algorithm's semantics:
an explicit state schema (:mod:`repro.core.schema`) plus a pure
threshold-crossing transition

    ``step(state, port, k_pulses) -> (state, emissions, verdict)``

where ``emissions`` is a tuple of ``(port, count)`` pulse runs to send
and ``verdict`` is ``None`` or the terminal output (Algorithm 2's
``api.terminate`` value).  ``step`` mutates ``state`` in place (states
are cheap mutable records — algorithm node objects, kernel-state
dataclasses, or per-instance fleet rows all duck-type it) and also
returns it for fluent use.

``step`` is *chunk-exact*: calling it once with ``k`` pulses is
bit-identical — same counters, same emissions totals, same verdict, and
the same decision points — to calling it ``k`` times with one pulse.
Each kernel guarantees this by advancing in maximal uniform chunks whose
boundaries sit at every counter value the algorithm's branches test
(absorption IDs, the line-14 trigger, the line-18 exit), so per-pulse
engines, the batched engine, and the fleet's whole-round deliveries all
replay the very same function.

Backends consume kernels through thin adapters:

* the event-driven engine's node classes forward ``on_message`` /
  ``on_pulses`` to ``step`` (see :func:`apply_emissions`);
* the fleet engine calls the scalar ``step`` per node (pure-Python
  backend) or the kernel's ``*_np`` column lowerings (NumPy backend);
* the synchronous engine wraps kernel states in
  :class:`~repro.synchronous.kernel_node.KernelSyncNode`.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

Emission = Tuple[int, int]
Emissions = Tuple[Emission, ...]
StepOutcome = Tuple[Any, Emissions, Optional[Any]]


def apply_emissions(api: Any, emissions: Emissions, verdict: Optional[Any]) -> None:
    """Replay a kernel step's effects through a :class:`NodeAPI`.

    Sends every emitted pulse run (``send_many`` degenerates to per-pulse
    ``send`` on non-counting channels, so single-pulse engines observe
    the exact legacy behavior), then terminates with the verdict — after
    the sends, matching the listing order where every send precedes the
    line-19 output.
    """
    for port, count in emissions:
        api.send_many(port, count)
    if verdict is not None:
        api.terminate(verdict)
