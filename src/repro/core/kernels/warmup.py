"""Algorithm 1 kernel: the stabilizing warm-up election (Section 3.1).

Semantics (the only copy): every node injects one clockwise pulse, then
relays every received CW pulse clockwise except the single pulse that
lands exactly on :math:`\\rho_{cw} = \\mathsf{ID}` — that one is absorbed
and the node tentatively becomes Leader; any later pulse reverts it.

The same kernel also runs *directionally*: Algorithm 3 is two parallel
executions of this kernel, one per travel direction, with the per-port
virtual IDs as governing thresholds (``make_state(governing_id)``).

Exact bound (Corollary 13): total pulses :math:`n \\cdot
\\mathsf{ID}_{max}`; at quiescence every node has
:math:`\\rho_{cw} = \\sigma_{cw} = \\mathsf{ID}_{max}`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple

from repro.core.common import (
    CW_ARRIVAL_PORT,
    CW_SEND_PORT,
    LeaderState,
)
from repro.core.schema import CONFIG, Field, StateSchema
from repro.core.kernels.base import StepOutcome
from repro.exceptions import ProtocolViolation

NAME = "warmup"

SCHEMA = StateSchema(
    name=NAME,
    fields=(
        Field("node_id", "int", CONFIG, "governing threshold ID_v"),
        Field("rho_cw", "int", doc="CW pulses processed (recvCW count)"),
        Field("sigma_cw", "int", doc="CW pulses sent"),
        Field("rho_ccw", "int", doc="always 0: Algorithm 1 is CW-only"),
        Field("sigma_ccw", "int", doc="always 0: Algorithm 1 is CW-only"),
        Field("state", "enum", doc="tentative verdict (line 5 / lines 7-8)"),
    ),
)


@dataclass
class WarmupState:
    """Standalone kernel state (fleet / synchronous backends).

    The engine backend uses :class:`~repro.core.warmup.WarmupNode`
    objects directly — the schema fields are the node's slots.
    """

    node_id: int
    rho_cw: int = 0
    sigma_cw: int = 0
    rho_ccw: int = 0
    sigma_ccw: int = 0
    state: LeaderState = LeaderState.UNDECIDED


def make_state(node_id: int) -> WarmupState:
    """Fresh kernel state; ``node_id`` may be a virtual (directional) ID."""
    return WarmupState(node_id=node_id)


def init(state: Any) -> StepOutcome:
    """Line 1: inject one clockwise pulse."""
    state.sigma_cw += 1
    return state, ((CW_SEND_PORT, 1),), None


def step(state: Any, port: int, count: int) -> StepOutcome:
    """Consume a run of ``count`` CW pulses in O(1).

    Per-pulse, Algorithm 1 relays everything except the single pulse
    that lands exactly on :math:`\\rho_{cw} = \\mathsf{ID}`, and the
    state after the run's last pulse is Leader iff that pulse was the
    absorbed one.  Both facts depend only on where the run starts and
    ends relative to the ID, so the whole run collapses to arithmetic —
    chunk-exact by construction.
    """
    if port != CW_ARRIVAL_PORT:
        raise ProtocolViolation(
            f"WarmupNode(id={state.node_id}) received a CCW pulse; "
            "Algorithm 1 uses the CW channel only"
        )
    start = state.rho_cw
    state.rho_cw += count
    state.state = stabilized_state(state.node_id, state.rho_cw)
    relays = count - (1 if start < state.node_id <= state.rho_cw else 0)
    if relays:
        state.sigma_cw += relays
        return state, ((CW_SEND_PORT, relays),), None
    return state, (), None


def stabilized_state(node_id: int, rho_cw: int) -> LeaderState:
    """The verdict after the last processed pulse (lines 4-8).

    Pure function shared by the scalar step and the fleet's terminal
    readout: Leader iff the counter sits exactly on the ID.
    """
    return LeaderState.LEADER if rho_cw == node_id else LeaderState.NON_LEADER


def pulse_bound(ids: Sequence[int]) -> int:
    """Corollary 13's exact message complexity: ``n * IDmax``."""
    return len(ids) * max(ids)


# ---------------------------------------------------------------------------
# Lap-skip fast-forward (the fleet's lockstep scheduler).
#
# While k pulses circulate and no node's rho can cross its governing
# threshold within L full laps, the laps collapse to closed-form counter
# arithmetic: every node processes and relays exactly L*k pulses (none can
# land on its ID — below-threshold nodes stay strictly below by the margin,
# past-threshold nodes can never return), so rho += L*k, sigma += L*k, and
# the verdict after any relayed pulse is Non-Leader.
# ---------------------------------------------------------------------------


def skip_margin(node_id: int, rho_cw: int) -> Optional[int]:
    """How many pulses this node can absorb-free process, or None if past
    threshold (no constraint: it relays everything forever)."""
    if rho_cw < node_id:
        return node_id - rho_cw - 1
    return None


def apply_laps(state: Any, pulses: int) -> None:
    """Fast-forward ``pulses`` relayed pulses through one node (scalar)."""
    if pulses <= 0:
        return
    state.rho_cw += pulses
    state.sigma_cw += pulses
    state.state = LeaderState.NON_LEADER


# -- NumPy column lowerings (same semantics over [B, n] arrays) -------------


def step_block_np(np: Any, gov: Any, rho: Any, delivered: Any) -> Tuple[Any, Any]:
    """Vectorized :func:`step` over whole-fleet columns.

    Args:
        gov: int64 ``[B, n]`` governing thresholds.
        rho: int64 ``[B, n]`` processed-pulse counters (not mutated).
        delivered: int64 ``[B, n]`` pulses delivered to each node.

    Returns:
        ``(rho_after, relays)`` — the caller owns sigma/flight updates.
    """
    start = rho
    rho = rho + delivered
    absorbed = (start < gov) & (gov <= rho) & (delivered > 0)
    relays = delivered - absorbed
    return rho, relays


def skip_margins_np(np: Any, gov: Any, rho: Any) -> Any:
    """Vectorized :func:`skip_margin`; past-threshold nodes are unbounded."""
    int_max = np.iinfo(np.int64).max
    return np.where(rho < gov, gov - rho - 1, int_max)
