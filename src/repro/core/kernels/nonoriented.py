"""Algorithm 3 kernel: stabilizing election + orientation (Section 4).

Semantics (the only copy): each node derives two virtual IDs (one per
port) and the ring hosts two parallel executions of Algorithm 1, one per
travel direction — a pulse arriving at ``Port_{1-i}`` increments
:math:`\\rho_{1-i}` and is re-sent from ``Port_i`` unless
:math:`\\rho_{1-i} = \\mathsf{ID}_v^{(i)}` (lines 5-7).  The output rule
(lines 8-16) is the pure function :func:`stabilized_verdict` of the two
counters.

Because each direction is exactly the warm-up kernel with virtual-ID
thresholds, the fleet lowers Algorithm 3 to two directional
:mod:`repro.core.kernels.warmup` runs and reads the verdicts off
:func:`stabilized_verdict` — the same function the per-node ``step``
updates with.

Exact bounds: Proposition 15 (doubled IDs) :math:`n(4\\,\\mathsf{ID}_{max}
- 1)`; Theorem 2 (successor IDs) :math:`n(2\\,\\mathsf{ID}_{max} + 1)`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.common import LeaderState
from repro.core.schema import CONFIG, Field, StateSchema
from repro.core.kernels.base import StepOutcome
from repro.exceptions import ProtocolViolation
from repro.simulator.node import PORT_ONE, PORT_ZERO


class IdScheme(enum.Enum):
    """How a node derives its two virtual IDs from its real ID."""

    #: Proposition 15: ``ID^(i) = 2*ID - 1 + i`` — globally unique virtual
    #: IDs, message complexity ``n(4*IDmax - 1)``.
    DOUBLED = "doubled"
    #: Theorem 2: ``ID^(0) = ID``, ``ID^(1) = ID + 1`` — may collide, but
    #: per-direction maxima still differ; complexity ``n(2*IDmax + 1)``.
    SUCCESSOR = "successor"

    def virtual_ids(self, node_id: int) -> Tuple[int, int]:
        """Return ``(ID^(0), ID^(1))`` for this scheme."""
        if self is IdScheme.DOUBLED:
            return (2 * node_id - 1, 2 * node_id)
        return (node_id, node_id + 1)


def coerce_scheme(scheme: Any) -> IdScheme:
    """Accept an :class:`IdScheme` or its string value."""
    if isinstance(scheme, IdScheme):
        return scheme
    return IdScheme(scheme)


NAME = "nonoriented"

SCHEMA = StateSchema(
    name=NAME,
    fields=(
        Field("node_id", "int", CONFIG, "the real ID_v"),
        Field("scheme", "enum", CONFIG, "virtual-ID derivation rule"),
        Field("virtual_ids", "int_pair", CONFIG, "(ID^(0), ID^(1))"),
        Field("rho", "int_list", doc="pulses received per port"),
        Field("sigma", "int_list", doc="pulses sent per port"),
        Field("state", "enum", doc="tentative verdict (lines 9-12)"),
        Field("cw_port_label", "opt_int", doc="computed CW port (13-16)"),
    ),
)


@dataclass
class NonOrientedState:
    """Standalone kernel state (synchronous backend; the fleet lowers to
    two directional warm-up kernels instead)."""

    node_id: int
    scheme: IdScheme
    virtual_ids: Tuple[int, int]
    rho: List[int] = field(default_factory=lambda: [0, 0])
    sigma: List[int] = field(default_factory=lambda: [0, 0])
    state: LeaderState = LeaderState.UNDECIDED
    cw_port_label: Optional[int] = None


def make_state(
    node_id: int, scheme: IdScheme = IdScheme.SUCCESSOR
) -> NonOrientedState:
    scheme = coerce_scheme(scheme)
    return NonOrientedState(
        node_id=node_id, scheme=scheme, virtual_ids=scheme.virtual_ids(node_id)
    )


def init(state: Any) -> StepOutcome:
    """Lines 1-3: pick virtual IDs and send one pulse out of each port."""
    state.sigma[PORT_ZERO] += 1
    state.sigma[PORT_ONE] += 1
    _update_output(state)
    return state, ((PORT_ZERO, 1), (PORT_ONE, 1)), None


def step(state: Any, port: int, count: int) -> StepOutcome:
    """Consume a run of ``count`` same-direction pulses in O(1).

    Each travel direction is an independent Algorithm 1 instance, so the
    run relays everything except the at-most-one pulse landing exactly
    on the governing virtual ID; the verdict recomputation is a pure
    function of the final counters, so one call at the end equals one
    per pulse — chunk-exact by construction.
    """
    if port not in (PORT_ZERO, PORT_ONE):  # pragma: no cover
        raise ProtocolViolation(f"invalid arrival port {port}")
    out_port = 1 - port
    governing = state.virtual_ids[out_port]
    start = state.rho[port]
    state.rho[port] += count
    relays = count - (1 if start < governing <= state.rho[port] else 0)
    emissions: Tuple[Tuple[int, int], ...] = ()
    if relays:
        state.sigma[out_port] += relays
        emissions = ((out_port, relays),)
    _update_output(state)
    return state, emissions, None


def stabilized_verdict(
    rho0: int, rho1: int, id_one: int
) -> Tuple[LeaderState, Optional[int]]:
    """Lines 8-16 as a pure function of the port counters.

    Returns ``(state, cw_port_label)``; ``(UNDECIDED, None)`` while the
    line-8 guard has not been met.  CW pulses arrive at CCW ports, so
    the port that received MORE pulses is the CCW port; the other leads
    clockwise.  Shared verbatim by the per-node step and the fleet's
    terminal readout.
    """
    if max(rho0, rho1) < id_one:
        return LeaderState.UNDECIDED, None
    if rho0 == id_one and rho1 < id_one:
        state = LeaderState.LEADER  # lines 9-10
    else:
        state = LeaderState.NON_LEADER  # lines 11-12
    return state, (PORT_ONE if rho0 > rho1 else PORT_ZERO)


def _update_output(state: Any) -> None:
    """Apply :func:`stabilized_verdict`, keeping UNDECIDED sticky-free."""
    verdict, label = stabilized_verdict(
        state.rho[PORT_ZERO], state.rho[PORT_ONE], state.virtual_ids[PORT_ONE]
    )
    if verdict is LeaderState.UNDECIDED:
        return  # line 8 guard not yet met; remain undecided
    state.state = verdict
    state.cw_port_label = label


def pulse_bound(ids: Sequence[int], scheme: Any = IdScheme.SUCCESSOR) -> int:
    """The paper's exact pulse count for the scheme in use.

    Proposition 15 (doubled IDs): :math:`n(4\\,\\mathsf{ID}_{max}-1)`.
    Theorem 2 (successor IDs): :math:`n(2\\,\\mathsf{ID}_{max}+1)`.
    """
    n, id_max = len(ids), max(ids)
    if coerce_scheme(scheme) is IdScheme.DOUBLED:
        return n * (4 * id_max - 1)
    return n * (2 * id_max + 1)
