"""Ear-walk election kernel: Algorithm 1 lifted to 2-edge-connected graphs.

The Chang–Chen–Zhou line (arXiv:2507.08348) extends content-oblivious
election beyond rings.  The structural device is the closed **ear walk**
(:mod:`repro.graphs.walks`): a walk covering every vertex that uses each
directed edge at most once.  The walk defines an *oriented virtual ring*
of length ``L = len(walk)``; because every physical directed channel
carries at most one virtual ring edge, a pulse's arrival port identifies
its virtual position with no content at all — the whole point of the
construction in the fully defective model.

Each physical vertex ``v`` hosts one virtual node per walk occurrence.
This module owns the two pure ingredients:

* :func:`build_routing` — the static routing tables mapping virtual ring
  edges onto physical ports (arrival port -> hosted occurrence, hosted
  occurrence -> send port), derived from
  :func:`repro.topology.graph_topology`'s port numbering so the engine,
  the fleet, and the explorers all agree byte-for-byte.
* :func:`virtual_ids` — the per-occurrence governing thresholds
  ``vid(v, k) = ID_v * C - k`` (``C`` = the walk's maximum occurrence
  count, ``k`` the occurrence index in walk order).  The vids are
  pairwise distinct whenever the physical IDs are, every vid is
  positive, and the *maximum* vid is occurrence 0 of the maximum-ID
  vertex — so running the warm-up kernel on the virtual ring elects a
  unique virtual node hosted at the unique physical argmax.  On a ring
  (``C == 1``) the vids collapse to the IDs themselves: the ear kernel
  *is* Algorithm 1, not a variant of it.

The per-occurrence transition is deliberately not re-implemented:
:func:`step_occurrence` delegates to :func:`repro.core.kernels.warmup.step`,
keeping one copy of the absorb/relay arithmetic (chunk-exact, so the
batched engine and the fleet see identical semantics).

Exact bound: the virtual ring obeys Corollary 13 verbatim — total pulses
``L * VIDmax = L * IDmax * C``, and at quiescence every occurrence has
``rho = sigma = VIDmax``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.common import CW_ARRIVAL_PORT, LeaderState
from repro.core.kernels import warmup
from repro.core.schema import CONFIG, Field, StateSchema
from repro.graphs.connectivity import Graph
from repro.graphs.walks import ear_walk, walk_occurrences
from repro.topology import Topology, graph_topology

NAME = "ear"

SCHEMA = StateSchema(
    name=NAME,
    fields=(
        Field("vids", "int_list", CONFIG, "virtual ID per hosted occurrence"),
        Field("out_ports", "int_list", CONFIG, "send port per hosted occurrence"),
        Field("in_route", "int_pairs", CONFIG, "arrival port -> occurrence index"),
        Field("rho", "int_list", doc="pulses processed per occurrence"),
        Field("sigma", "int_list", doc="pulses sent per occurrence"),
        Field("states", "enum_list", doc="per-occurrence warm-up verdicts"),
    ),
)


@dataclass(frozen=True)
class EarRouting:
    """Static routing of a graph's virtual ring onto physical ports.

    Attributes:
        topology: The physical :class:`~repro.topology.Topology`
            (``graph_topology`` port numbering — sorted-adjacency).
        walk: The ear walk; virtual node ``j`` lives at ``walk[j]``.
        occurrences: Per vertex, its walk positions in walk order;
            ``occurrences[v][k]`` is the position of occurrence ``k``.
        stride: ``C`` — the maximum occurrence count over all vertices.
        in_ports: Per walk position ``j``, the physical arrival port at
            ``walk[j]`` of the virtual edge ``j-1 -> j``.
        out_ports: Per walk position ``j``, the physical send port at
            ``walk[j]`` of the virtual edge ``j -> j+1``.
    """

    topology: Topology
    walk: Tuple[int, ...]
    occurrences: Tuple[Tuple[int, ...], ...]
    stride: int
    in_ports: Tuple[int, ...]
    out_ports: Tuple[int, ...]

    @property
    def length(self) -> int:
        """``L`` — the virtual ring size."""
        return len(self.walk)

    def node_tables(self, vertex: int) -> Tuple[Tuple[int, ...], Dict[int, int]]:
        """One vertex's routing: (send port per occurrence, arrival
        port -> occurrence index).  Well-defined because the walk uses
        each directed edge — hence each arrival port — at most once."""
        positions = self.occurrences[vertex]
        out = tuple(self.out_ports[j] for j in positions)
        route = {self.in_ports[j]: k for k, j in enumerate(positions)}
        return out, route


def build_routing(graph: Graph) -> EarRouting:
    """Derive the routing tables of ``graph``'s ear walk.

    Deterministic in the graph alone: the walk comes from
    :func:`~repro.graphs.walks.ear_walk` and the port numbers from
    :func:`~repro.topology.graph_topology`, both canonical.

    Raises:
        ConfigurationError: If the graph is not 2-edge-connected
            (inherited from the ear decomposition).
    """
    walk = tuple(ear_walk(graph))
    topology = graph_topology(graph)
    toward: Dict[Tuple[int, int], int] = {}
    for spec in topology.channels:
        toward[(spec.src_node, spec.dst_node)] = spec.src_port
    length = len(walk)
    in_ports = tuple(
        toward[(walk[j], walk[j - 1])] for j in range(length)
    )
    out_ports = tuple(
        toward[(walk[j], walk[(j + 1) % length])] for j in range(length)
    )
    occurrences = tuple(
        tuple(positions) for positions in walk_occurrences(walk, graph.n)
    )
    stride = max(len(positions) for positions in occurrences)
    return EarRouting(
        topology=topology,
        walk=walk,
        occurrences=occurrences,
        stride=stride,
        in_ports=in_ports,
        out_ports=out_ports,
    )


def virtual_ids(ids: Sequence[int], routing: EarRouting) -> List[int]:
    """Per-walk-position governing thresholds, in virtual ring order.

    ``vid(v, k) = ids[v] * C - k`` with ``C = routing.stride``.  Distinct
    physical IDs give distinct vids (``C*(id_a - id_b) = k_a - k_b``
    forces ``id_a == id_b`` since ``|k_a - k_b| < C``), every vid is
    positive, and the global maximum is occurrence 0 of the argmax
    vertex.  On rings ``C == 1`` and the vids equal the IDs.
    """
    vids = [0] * routing.length
    for vertex, positions in enumerate(routing.occurrences):
        for k, position in enumerate(positions):
            vids[position] = ids[vertex] * routing.stride - k
    return vids


def step_occurrence(
    vid: int, rho: int, count: int
) -> Tuple[int, int, LeaderState]:
    """Advance one hosted occurrence by a run of ``count`` pulses.

    Returns ``(rho_after, relays, state)``.  Pure delegation to the
    warm-up kernel — the ear kernel has no transition arithmetic of its
    own; an occurrence is exactly one Algorithm 1 node of the virtual
    ring.
    """
    state = warmup.make_state(vid)
    state.rho_cw = rho
    state, emissions, _ = warmup.step(state, CW_ARRIVAL_PORT, count)
    relays = emissions[0][1] if emissions else 0
    return state.rho_cw, relays, state.state


def pulse_bound(ids: Sequence[int], routing: EarRouting) -> int:
    """Corollary 13 on the virtual ring: ``L * VIDmax = L * IDmax * C``."""
    return routing.length * max(ids) * routing.stride
