"""Algorithm 2 kernel: quiescently terminating election (Theorem 1).

Semantics (the only copy): a CW instance of Algorithm 1 (listing lines
3-8), a CCW instance gated on :math:`\\rho_{cw} \\ge \\mathsf{ID}_v`
(lines 9-13, the "subtle prioritization"), the unique leader event
:math:`\\rho_{cw} = \\mathsf{ID}_v = \\rho_{ccw}` emitting the
termination pulse (lines 14-15), and the exit condition
:math:`\\rho_{ccw} > \\rho_{cw}` (line 18) terminating the node with its
current verdict (line 19).

The drain loop advances in maximal *uniform* chunks — chunk boundaries
sit at :math:`\\rho_{cw} \\to \\mathsf{ID}` (absorption + the only state
the line-14 trigger can see), :math:`\\rho_{ccw} \\to \\mathsf{ID}`
(absorption + trigger), and :math:`\\rho_{ccw} \\to \\rho_{cw} + 1` (the
line-18 exit flips exactly there) — so the trigger and exit are
evaluated at every state where their truth can change and the chunked
loop is bit-exact with the per-pulse one.  With single-pulse deliveries
every chunk degenerates to one pulse, so per-pulse engines observe the
legacy send interleaving exactly.

Exact bound (Theorem 1): total pulses :math:`n(2\\,\\mathsf{ID}_{max}+1)`.

Ablation (``strict_lag=False``): drops the CCW gate and processes pulses
one at a time (the per-pulse reference semantics).  Benchmark E7/A1
shows this breaks the algorithm — premature terminations, wrong leaders
— i.e. the lag discipline is load-bearing.  It is a deliberately
non-canonical variant kept *inside* this kernel so there is still
exactly one transition function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.common import (
    CCW_ARRIVAL_PORT,
    CCW_SEND_PORT,
    CW_ARRIVAL_PORT,
    CW_SEND_PORT,
    LeaderState,
)
from repro.core.schema import CONFIG, Field, StateSchema, TRANSIENT
from repro.core.kernels.base import Emission, StepOutcome
from repro.exceptions import ProtocolViolation

NAME = "terminating"

SCHEMA = StateSchema(
    name=NAME,
    fields=(
        Field("node_id", "int", CONFIG, "ID_v"),
        Field("strict_lag", "bool", CONFIG, "False ablates the CCW gate"),
        Field("rho_cw", "int", doc="CW pulses processed"),
        Field("sigma_cw", "int", doc="CW pulses sent"),
        Field("rho_ccw", "int", doc="CCW pulses processed"),
        Field("sigma_ccw", "int", doc="CCW pulses sent"),
        Field("state", "enum", doc="tentative verdict; the line-19 output"),
        Field("term_pulse_sent", "bool", doc="node ran lines 14-15"),
        Field("pending_cw", "int", TRANSIENT, "delivered-not-processed CW"),
        Field("pending_ccw", "int", TRANSIENT, "delivered-not-processed CCW"),
    ),
)


@dataclass
class TerminatingState:
    """Standalone kernel state (fleet / synchronous backends).

    The engine backend uses
    :class:`~repro.core.terminating.TerminatingNode` objects directly.
    ``terminated`` mirrors the Node flag so callers without an engine
    (the fleet) can record the line-19 exit on the state itself.
    """

    node_id: int
    strict_lag: bool = True
    rho_cw: int = 0
    sigma_cw: int = 0
    rho_ccw: int = 0
    sigma_ccw: int = 0
    state: LeaderState = LeaderState.UNDECIDED
    pending_cw: int = 0
    pending_ccw: int = 0
    term_pulse_sent: bool = False
    terminated: bool = False


def make_state(node_id: int, strict_lag: bool = True) -> TerminatingState:
    return TerminatingState(node_id=node_id, strict_lag=strict_lag)


def init(state: Any) -> StepOutcome:
    """Line 1: inject one clockwise pulse, then run the listing loop."""
    state.sigma_cw += 1
    emissions, verdict = drain(state)
    return state, ((CW_SEND_PORT, 1),) + emissions, verdict


def step(state: Any, port: int, count: int) -> StepOutcome:
    """Buffer a run of ``count`` pulses, then run the listing loop.

    Pulses reaching an already-terminated node (possible in ablated runs,
    where termination is premature) stay buffered unprocessed, exactly as
    the listing's stopped loop would leave them.
    """
    if port == CW_ARRIVAL_PORT:
        state.pending_cw += count
    elif port == CCW_ARRIVAL_PORT:
        state.pending_ccw += count
    else:  # pragma: no cover - engines validate ports
        raise ProtocolViolation(f"invalid arrival port {port}")
    if getattr(state, "terminated", False):
        return state, (), None
    emissions, verdict = drain(state)
    return state, emissions, verdict


def drain(state: Any) -> Tuple[Tuple[Emission, ...], Optional[LeaderState]]:
    """The listing's repeat-loop; one maximal uniform chunk per branch per
    iteration (one pulse per branch in the ablated variant).

    Public because round-based backends (the fleet) buffer *both*
    directions' deliveries into ``pending_cw``/``pending_ccw`` first and
    then run the loop once: draining between the two directions is a
    different (also legal, but different) schedule, and the fleet's
    differential tests pin the buffer-then-drain one."""
    emissions: List[Emission] = []
    node_id = state.node_id
    strict = state.strict_lag
    while True:
        progressed = False

        # Lines 3-8: the CW instance of Algorithm 1.
        if state.pending_cw:
            take = state.pending_cw if strict else 1
            if state.rho_cw < node_id:
                take = min(take, node_id - state.rho_cw)
            state.pending_cw -= take
            start = state.rho_cw
            state.rho_cw += take
            if state.rho_cw == node_id:
                state.state = LeaderState.LEADER
            else:
                state.state = LeaderState.NON_LEADER
            relays = take - (1 if start < node_id <= state.rho_cw else 0)
            if relays:
                state.sigma_cw += relays
                emissions.append((CW_SEND_PORT, relays))
            progressed = True

        # Lines 9-13: the CCW instance, gated on rho_cw >= ID.
        if state.rho_cw >= node_id or not strict:
            if state.sigma_ccw == 0 and state.rho_cw >= node_id:
                state.sigma_ccw += 1
                emissions.append((CCW_SEND_PORT, 1))  # line 10: initial pulse
            if state.pending_ccw:
                take = state.pending_ccw if strict else 1
                if state.rho_ccw < node_id:
                    take = min(take, node_id - state.rho_ccw)
                if state.rho_ccw <= state.rho_cw:
                    take = min(take, state.rho_cw + 1 - state.rho_ccw)
                state.pending_ccw -= take
                start = state.rho_ccw
                state.rho_ccw += take
                if state.term_pulse_sent:
                    relays = 0
                else:
                    relays = take - (1 if start < node_id <= state.rho_ccw else 0)
                if relays:
                    state.sigma_ccw += relays
                    emissions.append((CCW_SEND_PORT, relays))  # line 13: relay
                progressed = True

        # Lines 14-15: the unique leader event emits the termination pulse.
        if not state.term_pulse_sent and state.rho_cw == node_id == state.rho_ccw:
            state.term_pulse_sent = True
            state.sigma_ccw += 1
            emissions.append((CCW_SEND_PORT, 1))
            # Lines 16-17 (wait for the pulse's return) are implicit: the
            # node keeps handling events until the exit condition fires.

        # Line 18: exit on rho_ccw > rho_cw; line 19: output the verdict.
        if state.rho_ccw > state.rho_cw:
            return tuple(emissions), state.state

        if not progressed:
            return tuple(emissions), None


def pulse_bound(ids: Sequence[int]) -> int:
    """Theorem 1's exact message complexity: ``n * (2*IDmax + 1)``."""
    return len(ids) * (2 * max(ids) + 1)


# ---------------------------------------------------------------------------
# Lap-skip fast-forward margins (the fleet's lockstep scheduler).
#
# CW phase (CCW pulses stalled): uniform laps need every node to stay on
# the relay branch, i.e. below-threshold nodes must not reach their ID —
# the warmup margin.  CCW phase (CW instance quiesced, every gate open):
# additionally no node may cross rho_ccw -> ID (absorption/trigger) nor
# rho_ccw -> rho_cw + 1 (exit), so the margin also caps at
# rho_cw - rho_ccw.  Skips are only legal while no termination pulse is
# out and no node has terminated (the fleet enforces this).
# ---------------------------------------------------------------------------


def cw_skip_margin(node_id: int, rho_cw: int) -> Optional[int]:
    """Absorb-free headroom of the CW instance (None past threshold)."""
    if rho_cw < node_id:
        return node_id - rho_cw - 1
    return None


def ccw_skip_margin(node_id: int, rho_cw: int, rho_ccw: int) -> int:
    """Trigger/exit/absorption-free headroom of the CCW instance."""
    if rho_ccw < node_id:
        return min(node_id - rho_ccw - 1, rho_cw - rho_ccw)
    return rho_cw - rho_ccw


def apply_cw_laps(state: Any, pulses: int) -> None:
    """Fast-forward ``pulses`` relayed CW pulses through one node."""
    if pulses <= 0:
        return
    state.rho_cw += pulses
    state.sigma_cw += pulses
    state.state = LeaderState.NON_LEADER


def apply_ccw_laps(state: Any, pulses: int) -> None:
    """Fast-forward ``pulses`` relayed CCW pulses through one node
    (the CCW branch never touches the verdict)."""
    if pulses <= 0:
        return
    state.rho_ccw += pulses
    state.sigma_ccw += pulses


# -- NumPy column lowerings (same semantics over [B, n] arrays) -------------


@dataclass
class TerminatingColumns:
    """Struct-of-arrays lowering of :data:`SCHEMA` across a fleet block.

    ``sends_cw`` / ``sends_ccw`` are per-round emission buffers the fleet
    flushes into its flight arrays; ``sigma_*`` are the cumulative schema
    counters (``sigma_ccw == 0`` is the line-10 "not started" test).
    """

    ids: Any
    rho_cw: Any
    rho_ccw: Any
    pend_cw: Any
    pend_ccw: Any
    sigma_cw: Any
    sigma_ccw: Any
    term_sent: Any
    terminated: Any
    out_leader: Any
    sends_cw: Any
    sends_ccw: Any

    @classmethod
    def fresh(cls, np: Any, ids: Any) -> "TerminatingColumns":
        B, n = ids.shape
        return cls(
            ids=ids,
            rho_cw=np.zeros((B, n), np.int64),
            rho_ccw=np.zeros((B, n), np.int64),
            pend_cw=np.zeros((B, n), np.int64),
            pend_ccw=np.zeros((B, n), np.int64),
            # on_init: every node sends one CW pulse (line 1).
            sigma_cw=np.ones((B, n), np.int64),
            sigma_ccw=np.zeros((B, n), np.int64),
            term_sent=np.zeros((B, n), bool),
            terminated=np.zeros((B, n), bool),
            out_leader=np.zeros((B, n), bool),
            sends_cw=np.zeros((B, n), np.int64),
            sends_ccw=np.zeros((B, n), np.int64),
        )


def drain_block_np(np: Any, cols: TerminatingColumns) -> None:
    """Vectorized :func:`drain` over whole-fleet columns (mutates
    ``cols``); strict-lag semantics only (the fleet has no ablation)."""
    ids = cols.ids
    while True:
        live = ~cols.terminated
        # CW chunk (listing lines 3-8), boundary at rho_cw -> ID.
        has_cw = live & (cols.pend_cw > 0)
        below = cols.rho_cw < ids
        take = np.where(
            has_cw,
            np.where(below, np.minimum(cols.pend_cw, ids - cols.rho_cw), cols.pend_cw),
            0,
        )
        start = cols.rho_cw
        cols.rho_cw = cols.rho_cw + take
        absorbed = has_cw & (start < ids) & (ids <= cols.rho_cw)
        relays = take - absorbed
        cols.sends_cw += relays
        cols.sigma_cw += relays
        cols.pend_cw -= take
        progressed = has_cw
        # CCW chunk (lines 9-13), gated on rho_cw >= ID; boundaries at
        # rho_ccw -> ID and rho_ccw -> rho_cw + 1.
        gate = live & (cols.rho_cw >= ids)
        start_now = gate & (cols.sigma_ccw == 0)
        cols.sends_ccw += start_now  # line 10: CCW instance's initial pulse
        cols.sigma_ccw += start_now
        has_ccw = gate & (cols.pend_ccw > 0)
        take2 = np.where(has_ccw, cols.pend_ccw, 0)
        take2 = np.where(
            has_ccw & (cols.rho_ccw < ids),
            np.minimum(take2, ids - cols.rho_ccw),
            take2,
        )
        take2 = np.where(
            has_ccw & (cols.rho_ccw <= cols.rho_cw),
            np.minimum(take2, cols.rho_cw + 1 - cols.rho_ccw),
            take2,
        )
        start2 = cols.rho_ccw
        cols.rho_ccw = cols.rho_ccw + take2
        absorbed2 = has_ccw & (start2 < ids) & (ids <= cols.rho_ccw)
        relays2 = np.where(cols.term_sent, 0, take2 - absorbed2)
        cols.sends_ccw += relays2
        cols.sigma_ccw += relays2
        cols.pend_ccw -= take2
        progressed |= has_ccw
        # Lines 14-15: the unique leader event emits the term pulse.
        trigger = live & ~cols.term_sent & (cols.rho_cw == ids) & (cols.rho_ccw == ids)
        cols.term_sent |= trigger
        cols.sends_ccw += trigger
        cols.sigma_ccw += trigger
        # Line 18: exit on rho_ccw > rho_cw.
        exits = live & (cols.rho_ccw > cols.rho_cw)
        cols.terminated |= exits
        cols.out_leader |= exits & (cols.rho_cw == ids)
        if not progressed.any():
            return


def cw_skip_margins_np(np: Any, ids: Any, rho_cw: Any) -> Any:
    """Vectorized :func:`cw_skip_margin`."""
    int_max = np.iinfo(np.int64).max
    return np.where(rho_cw < ids, ids - rho_cw - 1, int_max)


def ccw_skip_margins_np(np: Any, ids: Any, rho_cw: Any, rho_ccw: Any) -> Any:
    """Vectorized :func:`ccw_skip_margin`."""
    int_max = np.iinfo(np.int64).max
    return np.minimum(
        np.where(rho_ccw < ids, ids - rho_ccw - 1, int_max),
        rho_cw - rho_ccw,
    )
