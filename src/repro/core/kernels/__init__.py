"""One transition kernel per algorithm — the registry.

Each entry binds an algorithm name to the module that is the *single*
source of truth for its semantics and exact pulse bounds:

* ``warmup`` — Algorithm 1 (stabilizing warm-up election, Section 3.1).
* ``terminating`` — Algorithm 2 (terminating election, Theorem 1).
* ``nonoriented`` — Algorithm 3 (non-oriented rings, Theorem 2 /
  Proposition 15).
* ``anonymous`` — Algorithm 4 (Theorem 3) has no transition kernel of
  its own: it samples geometric IDs and runs the Algorithm 3 kernel on
  them, so its entry points at :mod:`repro.core.kernels.nonoriented`
  with ``samples_ids=True``.

Backends (engine node adapters, the fleet's column lowerings, the
synchronous wrapper) and the statistical checker all resolve semantics
through :func:`get_kernel` — nothing else re-implements a transition.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import ModuleType
from typing import Dict, Tuple

from repro.core.kernels import nonoriented, terminating, warmup
from repro.core.kernels.base import (
    Emission,
    Emissions,
    StepOutcome,
    apply_emissions,
)


@dataclass(frozen=True)
class KernelInfo:
    """Registry row: the kernel module plus per-algorithm metadata."""

    name: str
    module: ModuleType
    algorithm: int
    terminating: bool
    oriented: bool
    samples_ids: bool = False


KERNELS: Dict[str, KernelInfo] = {
    "warmup": KernelInfo(
        name="warmup",
        module=warmup,
        algorithm=1,
        terminating=False,
        oriented=True,
    ),
    "terminating": KernelInfo(
        name="terminating",
        module=terminating,
        algorithm=2,
        terminating=True,
        oriented=True,
    ),
    "nonoriented": KernelInfo(
        name="nonoriented",
        module=nonoriented,
        algorithm=3,
        terminating=False,
        oriented=False,
    ),
    "anonymous": KernelInfo(
        name="anonymous",
        module=nonoriented,
        algorithm=4,
        terminating=False,
        oriented=False,
        samples_ids=True,
    ),
}


def get_kernel(name: str) -> KernelInfo:
    """Resolve an algorithm name to its kernel registry row."""
    try:
        return KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; known: {', '.join(sorted(KERNELS))}"
        ) from None


__all__ = [
    "Emission",
    "Emissions",
    "KERNELS",
    "KernelInfo",
    "StepOutcome",
    "apply_emissions",
    "get_kernel",
    "nonoriented",
    "terminating",
    "warmup",
]
