"""Corollary 5: composing leader election with content-oblivious computation.

The paper's Section 1.1 explains why Algorithm 2 composes cleanly with the
root-based compiler of [8]: it terminates *quiescently* and the leader
terminates *last*.  Replacing each node's act of termination with the act
of switching to the second algorithm therefore guarantees
message-algorithm attribution — when the leader (the root of the second
algorithm) sends its first phase-2 pulse, every other node has already
switched, and no phase-1 pulse is still in flight.

:class:`ComposedNode` implements exactly that: it hosts a phase-1
:class:`~repro.core.terminating.TerminatingNode` and, at the moment the
phase-1 logic would terminate, constructs the phase-2 node (here a
:class:`~repro.defective.transport.CircuitNode` running a user program)
seeded with the election verdict.  The composed node terminates for real
when phase 2 does, preserving quiescent termination end-to-end.

The net effect is the paper's headline: **any computation of the
supported class runs on a fully defective oriented ring with unique IDs
and no pre-existing root** — the conjecture of [8], disproved
constructively and executably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.core.common import LeaderState, validate_unique_ids
from repro.core.terminating import TerminatingNode
from repro.defective.transport import CircuitNode, CircuitProgram
from repro.defective.universal import SimulatedRingNode, UniversalNode
from repro.simulator.engine import Engine, RunResult
from repro.simulator.node import Node, NodeAPI
from repro.simulator.ring import build_oriented_ring
from repro.simulator.scheduler import Scheduler

#: Builds the phase-2 node once the election verdict is known.
Phase2Factory = Callable[[bool], Node]


class _PhaseAPI(NodeAPI):
    """Relays sends to the real API but reroutes ``terminate`` to a hook.

    Phase-1 node code calls ``api.terminate(...)`` when done; under
    composition that must mean "switch to phase 2", not "stop".  The real
    node-level termination is reserved for phase 2's completion.
    """

    __slots__ = ("_real", "_on_terminate")

    def __init__(
        self, real: NodeAPI, on_terminate: Callable[[Any], None]
    ) -> None:
        self._real = real
        self._on_terminate = on_terminate

    def send(self, port: int, content: Any = None) -> None:
        self._real.send(port, content)

    def terminate(self, output: Any = None) -> None:
        self._on_terminate(output)


class ComposedNode(Node):
    """Algorithm 2, then an arbitrary second content-oblivious algorithm.

    Attributes:
        election: The phase-1 :class:`TerminatingNode`.
        compute: The phase-2 node, constructed at switch time (None while
            phase 1 runs) by the factory from the election verdict.
        election_output: Phase 1's verdict for this node.
    """

    def __init__(self, node_id: int, phase2_factory: Phase2Factory) -> None:
        super().__init__()
        self.node_id = node_id
        self.phase2_factory = phase2_factory
        self.election = TerminatingNode(node_id)
        self.compute: Optional[Node] = None
        self.election_output: Optional[LeaderState] = None

    def on_init(self, api: NodeAPI) -> None:
        phase_api = _PhaseAPI(api, lambda output: self._switch(api, output))
        self.election.on_init(phase_api)

    def on_message(self, api: NodeAPI, port: int, content: Any) -> None:
        if self.compute is not None:
            # Phase 2 drives the real API directly: its api.terminate()
            # terminates this composed node, ending the whole pipeline.
            self.compute.on_message(api, port, content)
            return
        phase_api = _PhaseAPI(api, lambda output: self._switch(api, output))
        self.election.on_message(phase_api, port, content)

    def _switch(self, api: NodeAPI, election_output: Any) -> None:
        """Phase boundary: the paper's terminate-becomes-switch move."""
        self.election._mark_terminated(election_output)
        self.election_output = election_output
        self.compute = self.phase2_factory(
            election_output is LeaderState.LEADER
        )
        # Theorem 1 guarantees the leader switches last with the network
        # quiescent, so the leader's phase-2 opening pulses cannot race
        # any phase-1 pulse (message-algorithm attribution, Section 1.1).
        self.compute.on_init(api)


@dataclass
class ComposedOutcome:
    """Result of an end-to-end election-then-compute run."""

    ids: List[int]
    inputs: List[int]
    nodes: List[ComposedNode]
    run: RunResult

    @property
    def leader(self) -> Optional[int]:
        """Index of the node elected in phase 1."""
        winners = [
            index
            for index, node in enumerate(self.nodes)
            if node.election_output is LeaderState.LEADER
        ]
        return winners[0] if len(winners) == 1 else None

    @property
    def outputs(self) -> List[Any]:
        """Per-node phase-2 results."""
        return [node.output for node in self.nodes]

    @property
    def total_pulses(self) -> int:
        """Message complexity of the whole composition."""
        return self.run.total_sent


def run_composed(
    ids: Sequence[int],
    inputs: Sequence[int],
    program: CircuitProgram,
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 50_000_000,
    strict_quiescence: bool = True,
) -> ComposedOutcome:
    """Elect a leader (Theorem 1), then run ``program`` rooted at it.

    This is Corollary 5 end-to-end: no pre-existing root, fully defective
    channels throughout, quiescent termination at the end.

    Args:
        ids: Unique positive node IDs in clockwise order.
        inputs: Per-node non-negative program inputs, same order.
        program: The phase-2 computation.
        scheduler: Asynchronous adversary; defaults to global FIFO.
        max_steps: Engine safety bound.
        strict_quiescence: Raise on any quiescent-termination violation.
    """
    if len(ids) != len(inputs):
        raise ConfigurationError(
            f"{len(ids)} IDs but {len(inputs)} inputs; need one input per node"
        )
    if len(ids) < 2:
        # The circuit transport's sender/receiver automaton does not
        # support the self-loop ring (where a node is its own neighbor);
        # on n = 1 every computation is local anyway.  Use
        # run_circuit_transport, whose runner handles n = 1 separately.
        raise ConfigurationError("composition requires a ring of at least 2 nodes")
    validate_unique_ids(ids)  # Theorem 1's precondition

    def factory_for(input_value: int) -> Phase2Factory:
        return lambda is_leader: CircuitNode(
            is_leader=is_leader, input_value=input_value, program=program
        )

    nodes = [
        ComposedNode(node_id, factory_for(input_value))
        for node_id, input_value in zip(ids, inputs)
    ]
    topology = build_oriented_ring(nodes)
    result = Engine(
        topology.network,
        scheduler=scheduler,
        max_steps=max_steps,
        strict_quiescence=strict_quiescence,
    ).run()
    return ComposedOutcome(
        ids=list(ids), inputs=list(inputs), nodes=nodes, run=result
    )


def run_simulated_composed(
    ids: Sequence[int],
    simulated_nodes: Sequence[SimulatedRingNode],
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 50_000_000,
    strict_quiescence: bool = True,
) -> ComposedOutcome:
    """Corollary 5 in full generality: elect, then simulate ANY algorithm.

    Phase 1 is Theorem 1's election; phase 2 is the universal interpreter
    (:mod:`repro.defective.universal`) rooted at the winner, running an
    arbitrary content-carrying asynchronous ring algorithm over pulses.
    No pre-existing root, no content, quiescent termination end to end.

    Args:
        ids: Unique positive node IDs in clockwise order (>= 3 nodes, the
            interpreter's minimum).
        simulated_nodes: The content-carrying algorithm, one
            :class:`SimulatedRingNode` per position.
        scheduler: Asynchronous adversary; defaults to global FIFO.
        max_steps: Engine safety bound.
        strict_quiescence: Raise on any quiescent-termination violation.
    """
    if len(ids) != len(simulated_nodes):
        raise ConfigurationError(
            f"{len(ids)} IDs but {len(simulated_nodes)} simulated nodes"
        )
    if len(ids) < 3:
        raise ConfigurationError(
            "the universal interpreter needs n >= 3 (distinct CW/CCW neighbors)"
        )
    validate_unique_ids(ids)

    def factory_for(simulated: SimulatedRingNode) -> Phase2Factory:
        return lambda is_leader: UniversalNode(
            is_leader=is_leader, simulated=simulated
        )

    nodes = [
        ComposedNode(node_id, factory_for(simulated))
        for node_id, simulated in zip(ids, simulated_nodes)
    ]
    topology = build_oriented_ring(nodes)
    result = Engine(
        topology.network,
        scheduler=scheduler,
        max_steps=max_steps,
        strict_quiescence=strict_quiescence,
    ).run()
    return ComposedOutcome(
        ids=list(ids),
        inputs=[0] * len(ids),  # simulated algorithms carry their own inputs
        nodes=nodes,
        run=result,
    )
