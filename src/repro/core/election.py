"""One-call front doors for the paper's three settings.

These wrap the per-algorithm runners into a single report shape so that
examples, benchmarks, and downstream users have a uniform API:

* :func:`elect_leader_oriented` — Theorem 1 (Algorithm 2), terminating.
* :func:`elect_leader_nonoriented` — Theorem 2 (Algorithm 3), stabilizing,
  also orients the ring.
* :func:`elect_leader_anonymous` — Theorem 3 (Algorithm 4 + Algorithm 3),
  stabilizing, succeeds with high probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.anonymous import run_anonymous
from repro.core.common import LeaderState
from repro.core.nonoriented import IdScheme, run_nonoriented
from repro.core.terminating import run_terminating
from repro.simulator.scheduler import Scheduler


@dataclass(frozen=True)
class ElectionReport:
    """Uniform summary of one leader election run.

    Attributes:
        setting: ``"oriented"``, ``"nonoriented"``, or ``"anonymous"``.
        n: Ring size.
        leader: Index of the elected node, or None if the run failed
            (possible only in the anonymous setting, with probability
            ``O(n**-c)``).
        states: Final per-node verdicts in clockwise ring order.
        terminated: Whether nodes explicitly terminated (Theorem 1 only).
        quiescent: Whether the network reached quiescence (always True for
            runs that return).
        total_pulses: Message complexity of the execution.
        claimed_bound: The paper's predicted pulse count for this setting
            and input (None in the anonymous setting, where the claim is
            asymptotic).
        cw_ports: Computed clockwise port per node (orientation settings).
    """

    setting: str
    n: int
    leader: Optional[int]
    states: List[LeaderState]
    terminated: bool
    quiescent: bool
    total_pulses: int
    claimed_bound: Optional[int]
    cw_ports: Optional[List[Optional[int]]] = None

    @property
    def succeeded(self) -> bool:
        """Exactly one leader was elected."""
        return self.leader is not None


def _single_leader(states: Sequence[LeaderState]) -> Optional[int]:
    leaders = [
        index for index, state in enumerate(states) if state is LeaderState.LEADER
    ]
    return leaders[0] if len(leaders) == 1 else None


def elect_leader_oriented(
    ids: Sequence[int],
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 10_000_000,
) -> ElectionReport:
    """Quiescently terminating election on an oriented ring (Theorem 1).

    Args:
        ids: Unique positive node IDs in clockwise order.
        scheduler: Asynchronous adversary; defaults to global FIFO.
        max_steps: Engine safety bound.
    """
    outcome = run_terminating(ids, scheduler=scheduler, max_steps=max_steps)
    states = [node.output for node in outcome.nodes]
    return ElectionReport(
        setting="oriented",
        n=len(ids),
        leader=_single_leader(states),
        states=states,
        terminated=outcome.run.all_terminated,
        quiescent=outcome.run.quiescent,
        total_pulses=outcome.total_pulses,
        claimed_bound=outcome.theorem1_message_bound,
    )


def elect_leader_nonoriented(
    ids: Sequence[int],
    flips: Optional[Sequence[bool]] = None,
    scheme: IdScheme = IdScheme.SUCCESSOR,
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 10_000_000,
) -> ElectionReport:
    """Stabilizing election + orientation on a non-oriented ring (Theorem 2).

    Args:
        ids: Unique positive node IDs in clockwise order.
        flips: Adversarial per-node port flips (None = unflipped).
        scheme: Virtual-ID scheme; the default reproduces Theorem 2's
            ``n(2*IDmax+1)`` bound, ``IdScheme.DOUBLED`` Proposition 15's.
        scheduler: Asynchronous adversary; defaults to global FIFO.
        max_steps: Engine safety bound.
    """
    outcome = run_nonoriented(
        ids, flips=flips, scheme=scheme, scheduler=scheduler, max_steps=max_steps
    )
    return ElectionReport(
        setting="nonoriented",
        n=len(ids),
        leader=_single_leader(outcome.states),
        states=outcome.states,
        terminated=False,  # stabilizing: nodes cannot detect completion
        quiescent=outcome.run.quiescent,
        total_pulses=outcome.total_pulses,
        claimed_bound=outcome.claimed_message_bound,
        cw_ports=outcome.cw_port_labels,
    )


def elect_leader_anonymous(
    n: int,
    c: float = 2.0,
    seed: Optional[int] = None,
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 50_000_000,
) -> ElectionReport:
    """W.h.p. election + orientation on an anonymous ring (Theorem 3).

    Args:
        n: Ring size (unknown to the nodes themselves).
        c: Confidence; failure probability is ``O(n**-c)``.
        seed: Reproducibility seed for sampling and port flips.
        scheduler: Asynchronous adversary; defaults to global FIFO.
        max_steps: Engine safety bound.
    """
    outcome = run_anonymous(
        n, c=c, seed=seed, scheduler=scheduler, max_steps=max_steps
    )
    states = outcome.election.states
    return ElectionReport(
        setting="anonymous",
        n=n,
        leader=_single_leader(states) if outcome.succeeded else None,
        states=states,
        terminated=False,  # impossible here (Itai-Rodeh)
        quiescent=outcome.election.run.quiescent,
        total_pulses=outcome.election.total_pulses,
        claimed_bound=None,
        cw_ports=outcome.election.cw_port_labels,
    )
