"""The farm itself: submit / status / collect / gc over one root dir.

A farm root is a plain directory::

    <root>/
      campaigns/<cid>.json   # canonical campaign specs (+ LAST pointer)
      objects/..             # content-addressed shard results (store.py)
      ledger.jsonl           # shard-state event log (ledger.py)

``submit`` is *idempotent and resumable*: it walks the campaign's job
grid, skips every shard whose verified result already sits in the
store (a cache hit — whether from this campaign, an interrupted
earlier submit, or an overlapping campaign), and computes the rest,
writing each result atomically as soon as its chunk finishes.  Killing
a submit at any instant loses at most the in-flight chunk; the next
submit picks up from the objects on disk.  ``collect`` folds a
complete campaign's shards into the same stats objects the foreground
analysis modules produce — bit-identically, whatever mixture of runs
produced the shards.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple, Union

from repro.analysis.parallel import (
    ProcessCount,
    parallel_map,
    resolve_processes,
)
from repro.exceptions import ConfigurationError
from repro.farm.campaign import Campaign
from repro.farm.keys import canonical_json
from repro.farm.ledger import Ledger, pid_alive
from repro.farm.store import ResultStore
from repro.farm.workloads import (
    DEFAULT_JOB_BLOCK_SIZE,
    aggregate_ear,
    aggregate_placements,
    aggregate_recovery,
    aggregate_whp,
    degradation_curve_from_points,
    run_shard,
)

#: Env hook for tests/CI: comma-separated job indices whose shard run
#: fails (before computing anything).  Exercises the failed→resume path
#: without patching internals.
INJECT_FAIL_ENV = "REPRO_FARM_INJECT_FAIL"

#: Name of the "most recently submitted campaign" pointer file.
LAST_POINTER = "LAST"


def _injected_failures() -> Set[int]:
    raw = os.environ.get(INJECT_FAIL_ENV, "").strip()
    if not raw:
        return set()
    return {int(part) for part in raw.split(",") if part.strip()}


def _run_job_task(
    task: Tuple[int, str, Dict[str, Any], int, int, str, int],
) -> Tuple[int, str, Any]:
    """Picklable worker: one shard → ``(index, "ok", payload)`` or
    ``(index, "error", message)``.  Never raises — a failed shard must
    not take down its submit (the other shards' results still count)."""
    index, workload, params, start, stop, backend, block_size = task
    if index in _injected_failures():
        return (
            index,
            "error",
            f"injected failure ({INJECT_FAIL_ENV} includes {index})",
        )
    try:
        payload = run_shard(
            workload, params, start, stop, backend=backend, block_size=block_size
        )
    except Exception as exc:  # noqa: BLE001 - boundary: report, don't crash
        return (index, "error", f"{type(exc).__name__}: {exc}")
    return (index, "ok", payload)


@dataclass
class SubmitOutcome:
    """What one ``submit`` did: cache hits vs computed vs failed."""

    cid: str
    jobs: int
    hits: int
    computed: int
    failed: List[Tuple[int, str, str]] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when every shard of the campaign now has a result."""
        return self.hits + self.computed == self.jobs

    @property
    def hit_rate(self) -> float:
        """Fraction of shards served from the cache."""
        return self.hits / self.jobs if self.jobs else 1.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.cid,
            "jobs": self.jobs,
            "cache_hits": self.hits,
            "computed": self.computed,
            "failed": [
                {"index": index, "key": key, "error": message}
                for index, key, message in self.failed
            ],
            "complete": self.complete,
            "hit_rate": self.hit_rate,
        }


class Farm:
    """Submit/monitor/collect pipeline rooted at one directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.store = ResultStore(self.root)
        self.ledger = Ledger(self.root)
        self.campaigns_dir = self.root / "campaigns"

    # -- campaign spec persistence -------------------------------------

    def _spec_path(self, cid: str) -> Path:
        return self.campaigns_dir / f"{cid}.json"

    def save_campaign(self, campaign: Campaign) -> str:
        """Persist the canonical spec (idempotent) and point LAST at it."""
        cid = campaign.cid
        self.campaigns_dir.mkdir(parents=True, exist_ok=True)
        path = self._spec_path(cid)
        body = canonical_json({"id": cid, **campaign.spec()}) + "\n"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(body)
        os.replace(tmp, path)
        (self.campaigns_dir / LAST_POINTER).write_text(cid + "\n")
        return cid

    def campaign_ids(self) -> List[str]:
        """Every campaign with a spec on disk, sorted."""
        if not self.campaigns_dir.is_dir():
            return []
        return sorted(
            path.stem
            for path in self.campaigns_dir.glob("*.json")
            if not path.name.endswith(".tmp")
        )

    def resolve_cid(self, cid: str) -> str:
        """Resolve the ``"last"`` convenience alias to a concrete cid."""
        if cid != "last":
            return cid
        pointer = self.campaigns_dir / LAST_POINTER
        try:
            resolved = pointer.read_text().strip()
        except FileNotFoundError:
            raise ConfigurationError(
                f"no campaign submitted yet under {self.root} "
                "('last' has nothing to point at)"
            ) from None
        return resolved

    def load_campaign(self, cid: str) -> Campaign:
        """Rebuild a campaign from its stored spec (accepts ``"last"``)."""
        cid = self.resolve_cid(cid)
        path = self._spec_path(cid)
        try:
            import json

            spec = json.loads(path.read_text())
        except FileNotFoundError:
            raise ConfigurationError(
                f"unknown campaign {cid!r} under {self.root} "
                f"(known: {self.campaign_ids() or 'none'})"
            ) from None
        spec.pop("id", None)
        campaign = Campaign.from_spec(spec)
        if campaign.cid != cid:
            raise ConfigurationError(
                f"campaign spec file {path} hashes to {campaign.cid}, "
                f"not its own name {cid} — refusing to trust it"
            )
        return campaign

    # -- submit --------------------------------------------------------

    def submit(
        self,
        campaign: Campaign,
        backend: str = "auto",
        processes: ProcessCount = None,
        block_size: int = DEFAULT_JOB_BLOCK_SIZE,
    ) -> SubmitOutcome:
        """Run (or resume) a campaign: compute every shard not cached.

        Results land in the store chunk by chunk — ``resolve_processes``
        shards at a time — so an interrupt loses at most one chunk of
        work and the next submit resumes from the completed shards.
        """
        cid = self.save_campaign(campaign)
        self.ledger.record_campaign({"id": cid, **campaign.spec()})

        jobs = campaign.jobs()
        pending = []
        hits = 0
        for job in jobs:
            if self.store.has(job.key):
                hits += 1
            else:
                pending.append(job)

        computed = 0
        failed: List[Tuple[int, str, str]] = []
        chunk_size = max(1, resolve_processes(processes))
        for offset in range(0, len(pending), chunk_size):
            chunk = pending[offset : offset + chunk_size]
            for job in chunk:
                self.ledger.record_shard(
                    cid, job.key, job.index, job.start, job.stop, "running"
                )
            tasks = [
                (
                    job.index,
                    job.workload,
                    dict(job.params),
                    job.start,
                    job.stop,
                    backend,
                    block_size,
                )
                for job in chunk
            ]
            results = parallel_map(_run_job_task, tasks, processes=processes)
            by_index = {index: (status, value) for index, status, value in results}
            for job in chunk:
                status, value = by_index[job.index]
                if status == "ok":
                    self.store.put(job.key, value)
                    self.ledger.record_shard(
                        cid, job.key, job.index, job.start, job.stop, "done"
                    )
                    computed += 1
                else:
                    self.ledger.record_shard(
                        cid,
                        job.key,
                        job.index,
                        job.start,
                        job.stop,
                        "failed",
                        note=str(value),
                    )
                    failed.append((job.index, job.key, str(value)))
        return SubmitOutcome(
            cid=cid, jobs=len(jobs), hits=hits, computed=computed, failed=failed
        )

    # -- status --------------------------------------------------------

    def status(self, cid: Optional[str] = None) -> Dict[str, Any]:
        """Shard-state summary per campaign (ledger + object presence).

        ``done`` means *a verified result object exists now* — the
        store, not the ledger, is the source of truth for completion
        (a ledger ``done`` whose object was deleted reads as pending).
        ``interrupted`` counts ledger-``running`` shards whose recorded
        pid is dead: work a killed submit left behind.
        """
        cids = [self.resolve_cid(cid)] if cid is not None else self.campaign_ids()
        ledger_shards = self.ledger.replay()["shards"]
        campaigns: Dict[str, Any] = {}
        for one in cids:
            campaign = self.load_campaign(one)
            jobs = campaign.jobs()
            done = failed = running = interrupted = pending = 0
            for job in jobs:
                if self.store.has(job.key):
                    done += 1
                    continue
                record = ledger_shards.get((one, job.key))
                state = record.get("state") if record else None
                if state == "running":
                    if pid_alive(int(record.get("pid", -1))):
                        running += 1
                    else:
                        interrupted += 1
                elif state == "failed":
                    failed += 1
                else:
                    pending += 1
            campaigns[one] = {
                "workload": campaign.workload,
                "total": campaign.total,
                "shard_size": campaign.shard_size,
                "jobs": len(jobs),
                "done": done,
                "pending": pending,
                "running": running,
                "interrupted": interrupted,
                "failed": failed,
                "complete": done == len(jobs),
            }
        return {"root": str(self.root), "campaigns": campaigns}

    # -- collect -------------------------------------------------------

    def _payloads(self, campaign: Campaign) -> List[Mapping[str, Any]]:
        payloads: List[Mapping[str, Any]] = []
        missing: List[int] = []
        for job in campaign.jobs():
            payload = self.store.get(job.key)
            if payload is None:
                missing.append(job.index)
            else:
                payloads.append(payload)
        if missing:
            raise ConfigurationError(
                f"campaign {campaign.cid} incomplete: {len(missing)} of "
                f"{len(campaign.jobs())} shards missing "
                f"(first missing job index {missing[0]}) — "
                "run `repro farm submit` again to compute them"
            )
        return payloads

    def collect_object(
        self,
        cid: str,
        confidence: float = 0.99,
        z: float = 2.576,
        interval: str = "wilson",
        backend_label: str = "farm",
    ) -> Any:
        """Aggregate a complete campaign into its native stats object.

        Returns exactly what the foreground analysis module would have:
        a recovery summary dict, a
        :class:`~repro.analysis.degradation.DegradationCurve`, a
        :class:`~repro.analysis.stats.BernoulliEstimate`, or a
        :class:`~repro.analysis.average_case.PlacementStats` — which is
        how ``measure_*(..., farm_root=...)`` keeps its return type.
        Raises :class:`ConfigurationError` when shards are missing or
        fail checksum verification (those are quarantined so the next
        submit recomputes them).
        """
        campaign = self.load_campaign(cid)
        payloads = self._payloads(campaign)
        if campaign.workload in ("recovery", "adversary"):
            return aggregate_recovery(
                payloads, campaign.total, confidence=confidence
            )
        if campaign.workload == "degradation":
            per_point = len(campaign.jobs()) // len(campaign.grid())
            summaries = [
                aggregate_recovery(
                    payloads[
                        point_index * per_point : (point_index + 1) * per_point
                    ],
                    campaign.total,
                    confidence=confidence,
                )
                for point_index in range(len(campaign.grid()))
            ]
            return degradation_curve_from_points(
                campaign.params,
                summaries,
                campaign.total,
                confidence,
                backend_label,
            )
        if campaign.workload == "whp":
            return aggregate_whp(
                payloads, campaign.total, z=z, interval=interval
            )
        if campaign.workload == "placements":
            return aggregate_placements(
                payloads, campaign.params["n"], campaign.total
            )
        if campaign.workload == "ear":
            return aggregate_ear(
                payloads, campaign.total, confidence=confidence
            )
        # pragma: no cover - Campaign.__post_init__ forbids this
        raise ConfigurationError(
            f"no collector for workload {campaign.workload!r}"
        )

    def collect(
        self,
        cid: str,
        confidence: float = 0.99,
        z: float = 2.576,
        interval: str = "wilson",
        backend_label: str = "farm",
    ) -> Dict[str, Any]:
        """:meth:`collect_object` as a JSON-ready dict.

        The dict is assembled from counts and one-shot interval
        arithmetic only, so it is byte-identical (via
        :func:`collect_text`) for any cold/warm/mixed execution history.
        """
        campaign = self.load_campaign(cid)
        spec = {"id": campaign.cid, **campaign.spec()}
        obj = self.collect_object(
            campaign.cid,
            confidence=confidence,
            z=z,
            interval=interval,
            backend_label=backend_label,
        )
        if campaign.workload in ("recovery", "ear", "adversary"):
            result: Any = obj
        elif campaign.workload == "degradation":
            result = obj.to_dict()
        elif campaign.workload == "whp":
            result = {
                "successes": obj.successes,
                "trials": obj.trials,
                "rate": obj.rate,
                "low": obj.low,
                "high": obj.high,
                "interval": interval,
            }
        else:
            result = {
                "n": obj.n,
                "trials": obj.trials,
                "mean": obj.mean,
                "minimum": obj.minimum,
                "maximum": obj.maximum,
                "spread": obj.spread,
                "zero_spread": obj.spread == 0,
            }
        return {"campaign": spec, "workload": campaign.workload, "result": result}

    def collect_text(self, cid: str, **kwargs: Any) -> str:
        """The canonical-JSON form of :meth:`collect` — the byte string
        the differential cold/warm/mixed tests compare."""
        return canonical_json(self.collect(cid, **kwargs)) + "\n"

    # -- gc ------------------------------------------------------------

    def gc(self) -> Dict[str, int]:
        """Reap what crashes leave behind: compact the ledger (dropping
        entries of campaigns with no spec on disk, demoting dead-pid
        ``running`` records) and sweep stray temp files."""
        counters = self.ledger.compact(live_campaigns=set(self.campaign_ids()))
        counters["tmp_files"] = self.store.sweep_tmp()
        return counters
