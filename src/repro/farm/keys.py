"""Canonical cache keys for the sweep farm's content-addressed store.

A sweep result is a *pure function* of its semantics coordinates:
which workload ran, with which algorithm parameters, under which fault
model, over which global sample indices, against which version of the
repo's execution semantics.  This module canonicalizes those
coordinates into a stable JSON form and hashes it (SHA-256) into the
key the result store files results under — so a repeated or overlapping
campaign re-derives the same keys and hits the cache instead of
recomputing.

What is **in** a key:

* :data:`SEMANTICS_VERSION` — the backend-independent version of the
  repo's execution semantics (see its docstring for the bump rule);
* the workload name and its canonicalized parameters (including the
  full fault model, clause by clause);
* the half-open global index range ``[start, stop)`` the shard covers.

What is deliberately **out**:

* the *backend* (``compiled`` / ``numpy`` / ``python``) — the three
  tiers are bit-identical lowerings of the same kernels, pinned by the
  differential test battery, so a result computed on any tier is valid
  for all of them;
* execution knobs that cannot change results: worker process count,
  fleet ``block_size`` (batch-composition fidelity is a tested fleet
  invariant), chunking of the submit loop.

Canonical JSON is ``sort_keys=True`` with minimal separators, so two
spellings of the same campaign — dicts built in different orders, params
passed positionally vs by name — always serialize (and hash) alike.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Dict, Mapping, Optional

from repro.exceptions import ConfigurationError
from repro.faults.model import FaultModel

#: Version of the repo's *backend-independent* execution semantics.
#:
#: Bump this (and only this) when a change alters what any cached shard
#: payload would contain for identical parameters — i.e. when any of the
#: following change observable results:
#:
#: * a kernel transition rule (``repro.core.kernels``) or end-state
#:   contract (:mod:`repro.verification.statistical`);
#: * a counter-based sampling stream (``ids_for_instance``,
#:   ``flips_for_instance``, the anonymous per-seed pipeline) or fault
#:   roll stream (:func:`repro.faults.model.roll_u64`);
#: * the recovery classification rules (`_classify_instance`);
#: * a shard payload format in :mod:`repro.farm.workloads`.
#:
#: Do NOT bump it for new backends, performance work, or refactors that
#: the differential batteries certify as bit-identical — those must hit
#: the existing cache, which is the point of keeping the version
#: backend-independent.
SEMANTICS_VERSION = 1

#: Version of the *topology-workload* execution semantics.
#:
#: Workloads that run on an explicit topology (an ear-election sweep —
#: any params carrying a non-None ``"topology"`` descriptor) fold this
#: second version into their keys, so topology-layer semantic changes
#: (the ear-walk construction, the virtual-ID scheme, the port
#: convention of :func:`repro.topology.graph_topology`) can invalidate
#: exactly the topology shards.  Ring workloads never see it: their key
#: payloads are byte-for-byte what they were before the topology layer
#: existed, which is what keeps every pre-existing farm cache warm —
#: pinned by the key-stability test battery.
TOPOLOGY_SEMANTICS_VERSION = 1


def canonical_json(obj: Any) -> str:
    """Serialize ``obj`` to its canonical JSON form (stable across dict
    insertion orders; rejects NaN/Infinity, which have no canonical
    JSON spelling and would silently produce invalid documents)."""
    _reject_non_finite(obj)
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def _reject_non_finite(obj: Any) -> None:
    if isinstance(obj, float) and not math.isfinite(obj):
        raise ConfigurationError(
            f"cache-key payloads must be finite, got {obj!r}"
        )
    if isinstance(obj, dict):
        for key, value in obj.items():
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"cache-key dicts need string keys, got {key!r}"
                )
            _reject_non_finite(value)
    elif isinstance(obj, (list, tuple)):
        for value in obj:
            _reject_non_finite(value)


def digest(obj: Any) -> str:
    """SHA-256 hex digest of ``obj``'s canonical JSON form."""
    return hashlib.sha256(canonical_json(obj).encode("ascii")).hexdigest()


def canonical_fault_model(model: Optional[FaultModel]) -> Optional[Dict]:
    """A :class:`FaultModel` as a canonical, hashable dict (None → None).

    Every field is spelled explicitly — including defaults — so adding a
    model field later changes the canonical form (and hence the keys)
    only when the new field is wired in here, which forces the
    :data:`SEMANTICS_VERSION` question to be answered consciously.
    """
    if model is None:
        return None
    canonical = {
        "drop_rate": model.drop_rate,
        "duplicate_rate": model.duplicate_rate,
        "spurious_rate": model.spurious_rate,
        "seed": model.seed,
        "burst": (
            None
            if model.burst is None
            else {"start": model.burst.start, "length": model.burst.length}
        ),
        "drops": [
            {
                "round_index": drop.round_index,
                "node": drop.node,
                "direction": drop.direction,
                "instance": drop.instance,
                "count": drop.count,
            }
            for drop in model.drops
        ],
        "crashes": [
            {
                "node": crash.node,
                "at_round": crash.at_round,
                "restart_after": crash.restart_after,
                "instance": crash.instance,
            }
            for crash in model.crashes
        ],
        "corruptions": [
            {
                "node": corruption.node,
                "at_round": corruption.at_round,
                "field": corruption.field,
                "value": corruption.value,
                "instance": corruption.instance,
            }
            for corruption in model.corruptions
        ],
    }
    # The adversarial clauses entered the model after the farm shipped;
    # emitting them only when present keeps every pre-existing cached
    # payload byte-identical (no SEMANTICS_VERSION bump needed — the
    # key-stability battery pins this).
    if model.crash_rate:
        canonical["crash_rate"] = model.crash_rate
    if model.groups:
        canonical["groups"] = [
            {
                "anchor": group.anchor,
                "at_round": group.at_round,
                "trigger_field": group.trigger_field,
                "trigger_threshold": group.trigger_threshold,
                "crash": group.crash,
                "restart_after": group.restart_after,
                "drops": [
                    {
                        "offset": drop.offset,
                        "node_offset": drop.node_offset,
                        "direction": drop.direction,
                        "count": drop.count,
                    }
                    for drop in group.drops
                ],
                "burst": (
                    None
                    if group.burst is None
                    else {
                        "start": group.burst.start,
                        "length": group.burst.length,
                    }
                ),
                "instance": group.instance,
            }
            for group in model.groups
        ]
    return canonical


def fault_model_from_canonical(data: Optional[Mapping[str, Any]]) -> Optional[FaultModel]:
    """Rebuild a :class:`FaultModel` from its canonical dict (inverse of
    :func:`canonical_fault_model`) — how a shard worker reconstitutes
    the model a cache key was derived from."""
    if data is None:
        return None
    from repro.faults.model import (
        FaultBurst,
        FaultGroup,
        GroupDrop,
        NodeCrash,
        PulseDrop,
        StateCorruption,
    )

    def _burst(burst: Any) -> Optional[FaultBurst]:
        if burst is None:
            return None
        return FaultBurst(start=burst["start"], length=burst["length"])

    return FaultModel(
        drop_rate=data["drop_rate"],
        duplicate_rate=data["duplicate_rate"],
        spurious_rate=data["spurious_rate"],
        seed=data["seed"],
        burst=_burst(data.get("burst")),
        drops=tuple(PulseDrop(**drop) for drop in data["drops"]),
        crashes=tuple(NodeCrash(**crash) for crash in data["crashes"]),
        corruptions=tuple(
            StateCorruption(**corruption) for corruption in data["corruptions"]
        ),
        crash_rate=data.get("crash_rate", 0.0),
        groups=tuple(
            FaultGroup(
                anchor=group["anchor"],
                at_round=group["at_round"],
                trigger_field=group["trigger_field"],
                trigger_threshold=group["trigger_threshold"],
                crash=group["crash"],
                restart_after=group["restart_after"],
                drops=tuple(GroupDrop(**drop) for drop in group["drops"]),
                burst=_burst(group["burst"]),
                instance=group["instance"],
            )
            for group in data.get("groups", ())
        ),
    )


def shard_key(workload: str, params: Mapping[str, Any], start: int, stop: int) -> str:
    """The content address of one shard result.

    Pure in ``(SEMANTICS_VERSION, workload, params, start, stop)`` —
    two campaigns whose shard grids overlap share the overlapping keys,
    which is what makes an enlarged re-sweep mostly cache hits.
    """
    if not 0 <= start < stop:
        raise ConfigurationError(
            f"shard range must satisfy 0 <= start < stop, got [{start}, {stop})"
        )
    payload = {
        "semantics": SEMANTICS_VERSION,
        "workload": workload,
        "params": dict(params),
        "start": start,
        "stop": stop,
    }
    if params.get("topology") is not None:
        # Only topology workloads carry the second version coordinate;
        # ring payloads stay byte-identical to the pre-topology farm.
        payload["topology_semantics"] = TOPOLOGY_SEMANTICS_VERSION
    return digest(payload)


def campaign_id(spec: Mapping[str, Any]) -> str:
    """The identity of a whole campaign (spec hash, first 16 hex chars).

    Campaign identity includes the shard grid (``total``, ``shard_size``)
    so two differently-sharded submissions of the same parameters are
    distinct campaigns — while their aligned shards still share cache
    keys via :func:`shard_key`.
    """
    return digest({"semantics": SEMANTICS_VERSION, **dict(spec)})[:16]
