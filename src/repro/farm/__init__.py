"""``repro.farm`` — persistent submit/monitor/collect sweep pipeline.

Million-instance campaigns (recovery batteries, degradation curves,
Theorem 1/3 sweeps) shard into resumable jobs whose results live in a
content-addressed on-disk store; a JSONL ledger with advisory locking
tracks shard states across process restarts.  No services, no daemons —
a farm is just a directory, and ``repro farm submit`` can be killed and
re-run until ``collect`` has every shard.

Layering: :mod:`~repro.farm.keys` (canonical hashing) →
:mod:`~repro.farm.store` (atomic checksummed objects) /
:mod:`~repro.farm.ledger` (shard-state log) →
:mod:`~repro.farm.campaign` (spec + shard grid) →
:mod:`~repro.farm.workloads` (shard runners + aggregators) →
:mod:`~repro.farm.service` (the :class:`Farm` pipeline).
"""

from repro.farm.campaign import (
    DEFAULT_SHARD_SIZE,
    WORKLOADS,
    Campaign,
    Job,
    degradation_params,
    ear_params,
    placements_params,
    recovery_params,
    shard_ranges,
    whp_params,
)
from repro.farm.keys import (
    SEMANTICS_VERSION,
    campaign_id,
    canonical_fault_model,
    canonical_json,
    digest,
    fault_model_from_canonical,
    shard_key,
)
from repro.farm.ledger import SHARD_STATES, Ledger
from repro.farm.service import (
    INJECT_FAIL_ENV,
    Farm,
    SubmitOutcome,
)
from repro.farm.store import ResultStore
from repro.farm.workloads import run_shard

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "INJECT_FAIL_ENV",
    "SEMANTICS_VERSION",
    "SHARD_STATES",
    "WORKLOADS",
    "Campaign",
    "Farm",
    "Job",
    "Ledger",
    "ResultStore",
    "SubmitOutcome",
    "campaign_id",
    "canonical_fault_model",
    "canonical_json",
    "degradation_params",
    "ear_params",
    "digest",
    "fault_model_from_canonical",
    "placements_params",
    "recovery_params",
    "run_shard",
    "shard_key",
    "shard_ranges",
    "whp_params",
]
