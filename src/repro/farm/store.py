"""Content-addressed, checksummed, atomically-written result store.

One shard result = one file at ``objects/<key[:2]>/<key>.json`` under
the farm root, where ``key`` is the shard's content address
(:func:`repro.farm.keys.shard_key`).  The file wraps the payload with
its own SHA-256 checksum::

    {"key": "<64 hex>", "sha256": "<64 hex of canonical payload>",
     "payload": {...}}

Two failure modes drive the design:

* **Crash mid-write** (the resumable-jobs contract): results are
  written to a temporary file in the same directory and ``os.replace``d
  into place, so a SIGKILL at any instant leaves either the complete
  previous state or the complete new state — never a half-written
  object.  Leftover temporaries are swept by ``farm gc``.
* **Corruption at rest** (truncated disk, bit rot, a stray editor):
  :meth:`ResultStore.get` re-hashes the payload and verifies both the
  checksum and that the content actually lives at its address; any
  mismatch quarantines the file (it is unlinked) and reports a miss, so
  a corrupt shard is *recomputed*, never silently aggregated.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from repro.farm.keys import canonical_json, digest

#: Temporary-file prefix; gc sweeps strays left by killed writers.
TMP_PREFIX = ".tmp-"


class ResultStore:
    """The on-disk content-addressed store under ``<root>/objects``."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.objects = self.root / "objects"

    def _path(self, key: str) -> Path:
        return self.objects / key[:2] / f"{key}.json"

    def put(self, key: str, payload: Dict[str, Any]) -> Path:
        """Atomically write ``payload`` at its content address."""
        body = {"key": key, "sha256": digest(payload), "payload": payload}
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f"{TMP_PREFIX}{os.getpid()}-{key}.json"
        with open(tmp, "w") as handle:
            handle.write(canonical_json(body))
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The verified payload at ``key``, or None (missing/corrupt).

        A file that fails to parse, whose checksum does not match its
        payload, or whose recorded key disagrees with its address is
        unlinked and treated as a miss — the caller recomputes.
        """
        path = self._path(key)
        try:
            with open(path) as handle:
                body = json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            self._quarantine(path)
            return None
        if (
            not isinstance(body, dict)
            or body.get("key") != key
            or "payload" not in body
            or body.get("sha256") != digest(body["payload"])
        ):
            self._quarantine(path)
            return None
        return body["payload"]

    def has(self, key: str) -> bool:
        """True when a *verified* result exists at ``key``."""
        return self.get(key) is not None

    def delete(self, key: str) -> bool:
        """Remove the object at ``key``; True when something was removed."""
        try:
            self._path(key).unlink()
            return True
        except FileNotFoundError:
            return False

    def keys(self) -> Iterator[str]:
        """Every key with an object file on disk (unverified)."""
        if not self.objects.is_dir():
            return
        for bucket in sorted(self.objects.iterdir()):
            if not bucket.is_dir():
                continue
            for path in sorted(bucket.glob("*.json")):
                if not path.name.startswith(TMP_PREFIX):
                    yield path.stem

    def sweep_tmp(self) -> int:
        """Delete stray temporary files from killed writers; the count."""
        removed = 0
        if not self.objects.is_dir():
            return 0
        for path in self.objects.glob(f"*/{TMP_PREFIX}*"):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - raced or unwritable
                pass
        return removed

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Unlink a failed-verification object so it gets recomputed."""
        try:
            path.unlink()
        except OSError:  # pragma: no cover - raced or unwritable
            pass
