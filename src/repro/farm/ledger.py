"""File-backed job ledger: shard states across process restarts.

The ledger is a single append-only JSON-lines file (``ledger.jsonl`` at
the farm root) guarded by an advisory ``fcntl`` lock — no external
services, no daemons.  Each line is one event::

    {"type": "campaign", "id": "<cid>", "workload": ..., "total": ...}
    {"type": "shard", "campaign": "<cid>", "key": "<object key>",
     "index": 3, "start": 750, "stop": 1000,
     "state": "pending|running|done|failed", "pid": 12345, "ts": ...}

State is *replayed*, not stored: the current state of a shard is its
last record, so writers only ever append (atomic at the line level) and
a reader reconstructs the world by scanning.  Three crash behaviours
fall out:

* a writer killed mid-append leaves at most one truncated final line,
  which replay skips (and the next compaction drops);
* a worker killed mid-shard leaves a ``running`` record whose ``pid``
  is dead — :func:`Ledger.stale_running` detects this and resubmission
  treats the shard as pending again;
* ``ts`` (wall clock) appears *only* here, as operational metadata —
  it never participates in cache keys or result payloads, so ledger
  timestamps cannot perturb bit-identical collection.

``compact`` (used by ``farm gc``) rewrites the file atomically keeping
one final record per entity, dropping entries for campaigns whose spec
no longer exists, and demoting dead-pid ``running`` records.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

try:  # pragma: no cover - POSIX in every supported environment
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback (no locking)
    fcntl = None  # type: ignore[assignment]

#: Shard lifecycle states, in submission order.
SHARD_STATES = ("pending", "running", "done", "failed")


def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for an advisory-lock peer."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another user
        return True
    return True


class Ledger:
    """The JSONL ledger at ``<root>/ledger.jsonl``."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.path = self.root / "ledger.jsonl"
        self._lock_path = self.root / "ledger.lock"

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Hold the advisory exclusive lock (no-op where unsupported)."""
        self.root.mkdir(parents=True, exist_ok=True)
        if fcntl is None:  # pragma: no cover - non-POSIX
            yield
            return
        with open(self._lock_path, "a") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def append(self, record: Dict[str, Any]) -> None:
        """Append one event line under the lock (fsync'd)."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._locked():
            with open(self.path, "a") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    def record_campaign(self, spec: Dict[str, Any]) -> None:
        self.append({"type": "campaign", "ts": time.time(), **spec})

    def record_shard(
        self,
        campaign: str,
        key: str,
        index: int,
        start: int,
        stop: int,
        state: str,
        note: Optional[str] = None,
    ) -> None:
        if state not in SHARD_STATES:
            raise ValueError(f"unknown shard state {state!r}")
        record = {
            "type": "shard",
            "campaign": campaign,
            "key": key,
            "index": index,
            "start": start,
            "stop": stop,
            "state": state,
            "pid": os.getpid(),
            "ts": time.time(),
        }
        if note is not None:
            record["note"] = note
        self.append(record)

    def records(self) -> List[Dict[str, Any]]:
        """Every parseable event, in append order (truncated tail skipped)."""
        out: List[Dict[str, Any]] = []
        try:
            with open(self.path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        # A writer died mid-append; the partial line is
                        # not data.  (Only ever the final line, but any
                        # unparseable line is equally not data.)
                        continue
                    if isinstance(record, dict):
                        out.append(record)
        except FileNotFoundError:
            pass
        return out

    def replay(self) -> Dict[str, Dict[Tuple[str, str], Dict[str, Any]]]:
        """Current state: last record per campaign and per (campaign, key)."""
        campaigns: Dict[str, Dict[str, Any]] = {}
        shards: Dict[Tuple[str, str], Dict[str, Any]] = {}
        for record in self.records():
            if record.get("type") == "campaign" and "id" in record:
                campaigns[record["id"]] = record
            elif record.get("type") == "shard":
                shards[(record.get("campaign", ""), record.get("key", ""))] = record
        return {"campaigns": campaigns, "shards": shards}  # type: ignore[return-value]

    def shard_states(self, campaign: str) -> Dict[str, Dict[str, Any]]:
        """Last record per shard key of one campaign."""
        return {
            key: record
            for (cid, key), record in self.replay()["shards"].items()
            if cid == campaign
        }

    def stale_running(self) -> List[Dict[str, Any]]:
        """``running`` records whose recorded pid is no longer alive."""
        return [
            record
            for record in self.replay()["shards"].values()
            if record.get("state") == "running"
            and not pid_alive(int(record.get("pid", -1)))
        ]

    def compact(self, live_campaigns: Optional[set] = None) -> Dict[str, int]:
        """Rewrite the ledger to its replayed state, atomically.

        Keeps one final record per campaign and per shard; drops every
        entry of campaigns outside ``live_campaigns`` (when given) —
        those are the *orphaned* entries ``farm gc`` reaps — and demotes
        dead-pid ``running`` shards back to ``pending``.  Returns reap
        counters.
        """
        with self._locked():
            state = self.replay()
            orphaned = 0
            demoted = 0
            lines: List[str] = []
            for cid, record in sorted(state["campaigns"].items()):
                if live_campaigns is not None and cid not in live_campaigns:
                    orphaned += 1
                    continue
                lines.append(
                    json.dumps(record, sort_keys=True, separators=(",", ":"))
                )
            for (cid, _key), record in sorted(state["shards"].items()):
                if live_campaigns is not None and cid not in live_campaigns:
                    orphaned += 1
                    continue
                if record.get("state") == "running" and not pid_alive(
                    int(record.get("pid", -1))
                ):
                    record = {**record, "state": "pending", "note": "gc: dead pid"}
                    demoted += 1
                lines.append(
                    json.dumps(record, sort_keys=True, separators=(",", ":"))
                )
            tmp = self.path.with_suffix(".jsonl.tmp")
            with open(tmp, "w") as handle:
                for line in lines:
                    handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        return {"orphaned_entries": orphaned, "demoted_running": demoted}
