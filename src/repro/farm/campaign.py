"""Campaign specs: what a submitted sweep *is*, sharded into jobs.

A :class:`Campaign` is the declarative description of one sweep — a
workload name, workload parameters, a total instance count, and a shard
size.  Sharding is by *fixed-size contiguous index ranges* (not
:func:`~repro.analysis.parallel.shard_evenly`'s balanced split): range
boundaries then depend only on ``shard_size``, never on the total, so
enlarging a campaign from 1M to 2M instances re-derives the identical
keys for the first 1M and only computes the new tail.  (The counter
-based instance streams from PR 5 make every index range independently
computable, which is what makes fixed ranges correct.)

Workloads:

* ``recovery`` — the statistical recovery harness over sampled
  instances (one fault model); the building block of degradation
  curves.
* ``degradation`` — a composite: a full degradation *curve* (fault kind
  × rate grid).  Its jobs resolve to plain ``recovery`` jobs with the
  per-rate fault model, so a degradation campaign and a standalone
  recovery campaign at the same grid point share cache entries.
* ``whp`` — the Theorem 3 with-high-probability experiment (per-seed
  success flags through the anonymous fleet pipeline).
* ``placements`` — the Theorem 1 zero-variance experiment (pulse totals
  over random ID placements).
* ``adversary`` — one adversarial fault plan
  (:class:`repro.adversary.plans.AdversaryPlan` in canonical-dict form)
  evaluated over sampled instances.  Like degradation, its jobs resolve
  to plain ``recovery`` jobs carrying the plan's compiled fault model,
  so a search that revisits a plan — or any recovery campaign at the
  same point — shares cache entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.farm.keys import (
    campaign_id,
    canonical_fault_model,
    shard_key,
)
from repro.faults.model import FaultModel

#: Workload names a campaign may carry.
WORKLOADS = ("recovery", "degradation", "whp", "placements", "ear", "adversary")

#: Default instances per shard when the submitter names none.
DEFAULT_SHARD_SIZE = 250


@dataclass(frozen=True)
class Job:
    """One resumable unit of work: a workload over ``[start, stop)``.

    ``workload``/``params`` are the *resolved* per-job coordinates (a
    degradation campaign's jobs carry workload ``"recovery"`` with the
    grid point's fault model), so :attr:`key` is shared with any other
    campaign that covers the same semantic point and range.
    """

    index: int
    workload: str
    params: Mapping[str, Any]
    start: int
    stop: int

    @property
    def key(self) -> str:
        return shard_key(self.workload, self.params, self.start, self.stop)


def shard_ranges(total: int, shard_size: int) -> List[Tuple[int, int]]:
    """Fixed-size contiguous ``[start, stop)`` ranges covering ``total``."""
    if total < 1:
        raise ConfigurationError(f"campaign needs >= 1 instance, got {total}")
    if shard_size < 1:
        raise ConfigurationError(
            f"shard_size must be >= 1, got {shard_size}"
        )
    return [
        (start, min(start + shard_size, total))
        for start in range(0, total, shard_size)
    ]


def _require(params: Mapping[str, Any], workload: str, *names: str) -> None:
    missing = [name for name in names if name not in params]
    unknown = [name for name in params if name not in names]
    if missing or unknown:
        raise ConfigurationError(
            f"{workload} campaign params: missing {missing or 'none'}, "
            f"unknown {unknown or 'none'}; expected exactly {list(names)}"
        )


def recovery_params(
    algorithm: str = "nonoriented",
    n: int = 6,
    id_max: int = 64,
    seed: int = 0,
    sched_seed: int = 0,
    scheduler: str = "lockstep",
    faults: Optional[FaultModel] = None,
    watchdog_rounds: Optional[int] = None,
) -> Dict[str, Any]:
    """Canonical ``recovery`` workload params from rich arguments."""
    return {
        "algorithm": algorithm,
        "n": n,
        "id_max": id_max,
        "seed": seed,
        "sched_seed": sched_seed,
        "scheduler": scheduler,
        "faults": canonical_fault_model(faults),
        "watchdog_rounds": watchdog_rounds,
    }


def degradation_params(
    kind: str = "drop",
    rates: Tuple[float, ...] = (0.0,),
    algorithm: str = "nonoriented",
    n: int = 6,
    id_max: int = 64,
    seed: int = 0,
    sched_seed: int = 0,
    scheduler: str = "lockstep",
    fault_seed: int = 0,
    watchdog_rounds: Optional[int] = None,
) -> Dict[str, Any]:
    """Canonical ``degradation`` (composite curve) campaign params."""
    ordered = list(rates)
    if not ordered:
        raise ConfigurationError("degradation campaign needs >= 1 rate")
    if ordered != sorted(ordered):
        raise ConfigurationError(
            f"degradation rates must be non-decreasing, got {ordered}"
        )
    return {
        "kind": kind,
        "rates": ordered,
        "algorithm": algorithm,
        "n": n,
        "id_max": id_max,
        "seed": seed,
        "sched_seed": sched_seed,
        "scheduler": scheduler,
        "fault_seed": fault_seed,
        "watchdog_rounds": watchdog_rounds,
    }


def adversary_params(
    plan: Mapping[str, Any],
    algorithm: str = "nonoriented",
    n: int = 6,
    id_max: int = 64,
    seed: int = 0,
    sched_seed: int = 0,
    scheduler: str = "lockstep",
    watchdog_rounds: Optional[int] = None,
) -> Dict[str, Any]:
    """Canonical ``adversary`` campaign params from a canonical plan dict.

    The plan is validated by round-tripping through
    :class:`~repro.adversary.plans.AdversaryPlan`, so two spellings of
    the same plan (e.g. a burst-less plan with a stray drop_rate)
    always canonicalize — and hence key — alike.
    """
    from repro.adversary.plans import plan_from_canonical

    return {
        "plan": plan_from_canonical(plan).to_canonical(),
        "algorithm": algorithm,
        "n": n,
        "id_max": id_max,
        "seed": seed,
        "sched_seed": sched_seed,
        "scheduler": scheduler,
        "watchdog_rounds": watchdog_rounds,
    }


def whp_params(n: int = 16, c: float = 2.0, seed: int = 0) -> Dict[str, Any]:
    """Canonical ``whp`` workload params."""
    return {"n": n, "c": c, "seed": seed}


def placements_params(n: int = 16, seed: int = 0) -> Dict[str, Any]:
    """Canonical ``placements`` workload params."""
    return {"n": n, "seed": seed}


def ear_params(
    graph: Any,
    id_max: int = 64,
    seed: int = 0,
    sched_seed: int = 0,
    scheduler: str = "lockstep",
) -> Dict[str, Any]:
    """Canonical ``ear`` workload params from a 2-edge-connected graph.

    The topology enters the key as its canonical descriptor
    (:meth:`repro.topology.Topology.canonical_descriptor`), so two
    spellings of the same graph — edge lists in different orders, pairs
    in either orientation — always derive the same campaign and shard
    keys.  The non-None ``"topology"`` entry is also what makes
    :func:`repro.farm.keys.shard_key` fold in
    :data:`~repro.farm.keys.TOPOLOGY_SEMANTICS_VERSION`.
    """
    from repro.topology import graph_topology

    return {
        "topology": graph_topology(graph).canonical_descriptor(),
        "id_max": id_max,
        "seed": seed,
        "sched_seed": sched_seed,
        "scheduler": scheduler,
    }


_PARAM_FIELDS = {
    "recovery": (
        "algorithm",
        "n",
        "id_max",
        "seed",
        "sched_seed",
        "scheduler",
        "faults",
        "watchdog_rounds",
    ),
    "degradation": (
        "kind",
        "rates",
        "algorithm",
        "n",
        "id_max",
        "seed",
        "sched_seed",
        "scheduler",
        "fault_seed",
        "watchdog_rounds",
    ),
    "whp": ("n", "c", "seed"),
    "placements": ("n", "seed"),
    "ear": ("topology", "id_max", "seed", "sched_seed", "scheduler"),
    "adversary": (
        "plan",
        "algorithm",
        "n",
        "id_max",
        "seed",
        "sched_seed",
        "scheduler",
        "watchdog_rounds",
    ),
}


@dataclass(frozen=True)
class Campaign:
    """One declarative sweep: workload + params + shard grid."""

    workload: str
    total: int
    params: Mapping[str, Any] = field(default_factory=dict)
    shard_size: int = DEFAULT_SHARD_SIZE

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ConfigurationError(
                f"unknown workload {self.workload!r}; choose from {WORKLOADS}"
            )
        _require(self.params, self.workload, *_PARAM_FIELDS[self.workload])
        shard_ranges(self.total, self.shard_size)  # validates both

    def spec(self) -> Dict[str, Any]:
        """The canonical campaign spec dict (hashed into :attr:`cid`)."""
        return {
            "workload": self.workload,
            "total": self.total,
            "shard_size": self.shard_size,
            "params": dict(self.params),
        }

    @property
    def cid(self) -> str:
        """The campaign's identity (spec digest prefix)."""
        return campaign_id(self.spec())

    def grid(self) -> List[Mapping[str, Any]]:
        """The resolved per-grid-point job params, in grid order.

        Single-point workloads have a one-element grid; a degradation
        campaign has one ``recovery`` param set per rate.
        """
        if self.workload == "adversary":
            from repro.adversary.plans import plan_from_canonical

            return [
                recovery_params(
                    algorithm=self.params["algorithm"],
                    n=self.params["n"],
                    id_max=self.params["id_max"],
                    seed=self.params["seed"],
                    sched_seed=self.params["sched_seed"],
                    scheduler=self.params["scheduler"],
                    faults=plan_from_canonical(self.params["plan"]).to_model(),
                    watchdog_rounds=self.params["watchdog_rounds"],
                )
            ]
        if self.workload != "degradation":
            return [self.params]
        from repro.analysis.degradation import model_for_rate

        out: List[Mapping[str, Any]] = []
        for rate in self.params["rates"]:
            out.append(
                recovery_params(
                    algorithm=self.params["algorithm"],
                    n=self.params["n"],
                    id_max=self.params["id_max"],
                    seed=self.params["seed"],
                    sched_seed=self.params["sched_seed"],
                    scheduler=self.params["scheduler"],
                    faults=model_for_rate(
                        self.params["kind"], rate, self.params["fault_seed"]
                    ),
                    watchdog_rounds=self.params["watchdog_rounds"],
                )
            )
        return out

    @property
    def job_workload(self) -> str:
        """The workload each *job* runs (degradation and adversary jobs
        resolve to recovery — that is the cache-sharing seam)."""
        if self.workload in ("degradation", "adversary"):
            return "recovery"
        return self.workload

    def jobs(self) -> List[Job]:
        """Every job of this campaign, grid-major then range order."""
        ranges = shard_ranges(self.total, self.shard_size)
        out: List[Job] = []
        index = 0
        for point in self.grid():
            for start, stop in ranges:
                out.append(
                    Job(
                        index=index,
                        workload=self.job_workload,
                        params=point,
                        start=start,
                        stop=stop,
                    )
                )
                index += 1
        return out

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "Campaign":
        """Rebuild a campaign from a stored spec dict."""
        return cls(
            workload=spec["workload"],
            total=spec["total"],
            params=spec["params"],
            shard_size=spec["shard_size"],
        )
