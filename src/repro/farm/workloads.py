"""Workload runners and aggregators: shard in, stats out.

Each workload contributes two pure functions:

* ``run_*_shard(params, start, stop, ...)`` — compute the shard payload
  for global indices ``[start, stop)``.  Payloads are JSON-primitive
  dicts (they go straight into the content-addressed store) and are
  *order-preserving*: per-index outcomes appear in index order, so
  concatenating payloads over a partition of ``[0, total)`` reproduces
  the uninterrupted sweep exactly.
* ``aggregate_*(...)`` — fold shard payloads (in range order) into the
  same stats objects the direct analysis modules produce
  (:class:`~repro.analysis.stats.BernoulliEstimate`,
  :class:`~repro.analysis.average_case.PlacementStats`, degradation
  point dicts).  Because every per-index outcome is a pure function of
  ``(params, index)`` — the PR 5 counter streams — aggregation over any
  shard partition is bit-identical to the foreground run.

The ``backend`` and ``block_size`` arguments are execution knobs only:
they are deliberately *not* part of the shard parameters that cache
keys hash (the differential batteries pin all backends bit-identical,
and fleet batch composition is a tested invariant).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.farm.keys import fault_model_from_canonical

#: Fleet block size used inside recovery shards (execution knob; kept
#: modest so one shard never holds a huge block in memory).
DEFAULT_JOB_BLOCK_SIZE = 256


def run_recovery_shard(
    params: Mapping[str, Any],
    start: int,
    stop: int,
    backend: str = "auto",
    block_size: int = DEFAULT_JOB_BLOCK_SIZE,
) -> Dict[str, Any]:
    """Recovery classification of global sample indices ``[start, stop)``."""
    from repro.verification.statistical import run_recovery_shard as run

    counts, non_recovered, events = run(
        algorithm=params["algorithm"],
        n=params["n"],
        id_max=params["id_max"],
        indices=list(range(start, stop)),
        seed=params["seed"],
        sched_seed=params["sched_seed"],
        scheduler=params["scheduler"],
        backend=backend,
        block_size=block_size,
        faults=fault_model_from_canonical(params["faults"]),
        watchdog_rounds=params["watchdog_rounds"],
    )
    return {
        "counts": dict(counts),
        "non_recovered": [list(triple) for triple in non_recovered],
        "fault_events": dict(events),
    }


def run_whp_shard(
    params: Mapping[str, Any],
    start: int,
    stop: int,
    backend: str = "auto",
    block_size: int = DEFAULT_JOB_BLOCK_SIZE,
) -> Dict[str, Any]:
    """Theorem 3 per-seed success flags for attempts ``[start, stop)``.

    Attempt ``i`` uses seed ``params["seed"] + i`` — the exact contract
    of :func:`repro.analysis.whp.measure_anonymous_success`.
    """
    from repro.simulator.fleet import run_anonymous_fleet

    result = run_anonymous_fleet(
        params["n"],
        list(range(params["seed"] + start, params["seed"] + stop)),
        c=params["c"],
        backend=backend,
    )
    return {"succeeded": [int(flag) for flag in result.succeeded]}


def run_placements_shard(
    params: Mapping[str, Any],
    start: int,
    stop: int,
    backend: str = "auto",
    block_size: int = DEFAULT_JOB_BLOCK_SIZE,
) -> Dict[str, Any]:
    """Algorithm 2 pulse totals over placements ``[start, stop)``.

    Placements come from the same sequential seeded shuffle stream as
    :func:`repro.analysis.average_case.random_placements`; the shard
    regenerates the prefix and slices — O(stop) shuffles, negligible
    next to the simulation itself — so any shard partition sees the
    byte-identical placements of the foreground sweep.
    """
    from repro.analysis.average_case import random_placements
    from repro.simulator.fleet import run_terminating_fleet

    placements = random_placements(params["n"], stop, seed=params["seed"])[
        start:stop
    ]
    result = run_terminating_fleet(placements, backend=backend)
    return {"totals": list(result.total_pulses)}


def run_ear_shard(
    params: Mapping[str, Any],
    start: int,
    stop: int,
    backend: str = "auto",
    block_size: int = DEFAULT_JOB_BLOCK_SIZE,
) -> Dict[str, Any]:
    """Ear-election contract checks over sample indices ``[start, stop)``.

    ``params["topology"]`` is the canonical topology descriptor
    (:meth:`repro.topology.Topology.canonical_descriptor`) naming the
    2-edge-connected graph; instance ``i`` draws the same counter-based
    ID stream as the foreground topology battery, so shards compose
    bit-identically with it.
    """
    from repro.verification.statistical import run_topology_shard

    topology = params["topology"]
    failures = run_topology_shard(
        n=topology["n"],
        edges=[tuple(edge) for edge in topology["edges"]],
        id_max=params["id_max"],
        start=start,
        stop=stop,
        seed=params["seed"],
        sched_seed=params["sched_seed"],
        scheduler=params["scheduler"],
        backend=backend,
        block_size=block_size,
    )
    return {
        "samples": stop - start,
        "violations": [[int(index), str(message)] for index, message in failures],
    }


_RUNNERS = {
    "recovery": run_recovery_shard,
    "whp": run_whp_shard,
    "placements": run_placements_shard,
    "ear": run_ear_shard,
}


def run_shard(
    workload: str,
    params: Mapping[str, Any],
    start: int,
    stop: int,
    backend: str = "auto",
    block_size: int = DEFAULT_JOB_BLOCK_SIZE,
) -> Dict[str, Any]:
    """Dispatch one shard to its workload runner."""
    try:
        runner = _RUNNERS[workload]
    except KeyError:
        raise ConfigurationError(
            f"no shard runner for workload {workload!r}; "
            f"choose from {sorted(_RUNNERS)}"
        ) from None
    return runner(params, start, stop, backend=backend, block_size=block_size)


# ---------------------------------------------------------------------------
# Aggregation — shard payloads (range order) → the analysis-layer stats.
# ---------------------------------------------------------------------------


def aggregate_recovery(
    payloads: List[Mapping[str, Any]],
    samples: int,
    confidence: float = 0.99,
) -> Dict[str, Any]:
    """Fold recovery shard payloads into one grid-point summary.

    Field-for-field the numbers :func:`run_recovery_check` reports for
    the same ``samples``: classification counts, merged fault events,
    and the exact Clopper–Pearson interval on the recovered count.
    """
    from repro.analysis.stats import clopper_pearson_interval
    from repro.faults.fleet import merge_events
    from repro.verification.statistical import RECOVERY_CLASSES

    counts = {name: 0 for name in RECOVERY_CLASSES}
    events: Dict[str, int] = {}
    non_recovered: List[Tuple[int, str, str]] = []
    for payload in payloads:
        for name in RECOVERY_CLASSES:
            counts[name] += payload["counts"][name]
        if payload["fault_events"]:
            events = merge_events(events, payload["fault_events"])
        non_recovered.extend(
            (int(idx), str(cls), str(msg))
            for idx, cls, msg in payload["non_recovered"]
        )
    classified = sum(counts.values())
    if classified != samples:
        raise ConfigurationError(
            f"aggregation mismatch: shards classified {classified} "
            f"instances, campaign expects {samples}"
        )
    non_recovered.sort(key=lambda triple: triple[0])
    low, high = clopper_pearson_interval(
        counts["recovered"], samples, confidence=confidence
    )
    return {
        "samples": samples,
        "recovered": counts["recovered"],
        "wrong_stable": counts["wrong_stable"],
        "stuck": counts["stuck"],
        "rate_low": low,
        "rate_high": high,
        "fault_events": dict(events),
        "non_recovered": [list(triple) for triple in non_recovered],
    }


def aggregate_whp(
    payloads: List[Mapping[str, Any]],
    trials: int,
    z: float = 2.576,
    interval: str = "wilson",
) -> "Any":
    """Fold whp shard payloads into a :class:`BernoulliEstimate` —
    the same interval arithmetic as
    :func:`repro.analysis.whp.measure_anonymous_success`."""
    from repro.analysis.stats import (
        BernoulliEstimate,
        clopper_pearson_interval,
        wilson_interval,
    )
    from repro.analysis.whp import _z_to_confidence

    flags: List[int] = []
    for payload in payloads:
        flags.extend(int(flag) for flag in payload["succeeded"])
    if len(flags) != trials:
        raise ConfigurationError(
            f"aggregation mismatch: shards carry {len(flags)} attempts, "
            f"campaign expects {trials}"
        )
    successes = sum(flags)
    if interval == "clopper-pearson":
        low, high = clopper_pearson_interval(
            successes, trials, confidence=_z_to_confidence(z)
        )
    elif interval == "wilson":
        low, high = wilson_interval(successes, trials, z=z)
    else:
        raise ConfigurationError(
            f"unknown interval method {interval!r}; "
            "choose 'wilson' or 'clopper-pearson'"
        )
    return BernoulliEstimate(
        successes=successes, trials=trials, low=low, high=high
    )


def aggregate_placements(
    payloads: List[Mapping[str, Any]], n: int, trials: int
) -> "Any":
    """Fold placements shard payloads into a :class:`PlacementStats`."""
    from repro.analysis.average_case import _stats_from_counts

    totals: List[int] = []
    for payload in payloads:
        totals.extend(int(total) for total in payload["totals"])
    if len(totals) != trials:
        raise ConfigurationError(
            f"aggregation mismatch: shards carry {len(totals)} trials, "
            f"campaign expects {trials}"
        )
    return _stats_from_counts(n, totals)


def aggregate_ear(
    payloads: List[Mapping[str, Any]],
    samples: int,
    confidence: float = 0.99,
) -> Dict[str, Any]:
    """Fold ear shard payloads into one contract summary.

    The same numbers :func:`run_topology_check` reports for the same
    ``samples``: the violation list (index order) and the exact
    Clopper–Pearson interval on the clean count.
    """
    from repro.analysis.stats import clopper_pearson_interval

    checked = 0
    violations: List[Tuple[int, str]] = []
    for payload in payloads:
        checked += int(payload["samples"])
        violations.extend(
            (int(index), str(message))
            for index, message in payload["violations"]
        )
    if checked != samples:
        raise ConfigurationError(
            f"aggregation mismatch: shards checked {checked} "
            f"instances, campaign expects {samples}"
        )
    violations.sort(key=lambda pair: pair[0])
    low, high = clopper_pearson_interval(
        samples - len(violations), samples, confidence=confidence
    )
    return {
        "samples": samples,
        "violations": len(violations),
        "rate_low": low,
        "rate_high": high,
        "failures": [list(pair) for pair in violations],
        "clean": not violations,
    }


def degradation_curve_from_points(
    params: Mapping[str, Any],
    point_summaries: List[Mapping[str, Any]],
    samples: int,
    confidence: float,
    backend_label: str,
) -> "Any":
    """Assemble a :class:`~repro.analysis.degradation.DegradationCurve`
    from per-rate aggregated summaries (grid order)."""
    from repro.analysis.degradation import DegradationCurve, DegradationPoint

    points = [
        DegradationPoint(
            rate=rate,
            samples=summary["samples"],
            recovered=summary["recovered"],
            wrong_stable=summary["wrong_stable"],
            stuck=summary["stuck"],
            low=summary["rate_low"],
            high=summary["rate_high"],
            fault_events=dict(summary["fault_events"]),
        )
        for rate, summary in zip(params["rates"], point_summaries)
    ]
    return DegradationCurve(
        algorithm=params["algorithm"],
        kind=params["kind"],
        n=params["n"],
        id_max=params["id_max"],
        confidence=confidence,
        seed=params["seed"],
        backend=backend_label,
        scheduler=params["scheduler"],
        points=points,
    )


#: Per-workload "did the campaign uphold its contract" predicates used
#: by ``farm collect`` exit codes (None = informational only).
def placements_contract(stats: Any, n: int) -> Optional[str]:
    """Theorem 1: zero spread, every trial exactly ``n(2n+1)``."""
    expected = n * (2 * n + 1)
    if stats.spread != 0 or stats.minimum != expected:
        return (
            f"placement variance detected: min={stats.minimum} "
            f"max={stats.maximum} expected exactly {expected}"
        )
    return None
