"""Graceful-degradation curves: success probability vs fault rate.

The paper's guarantees are all-or-nothing — inside the model (FIFO
channels, no loss or injection) the algorithms are exact; the fault
subsystem (:mod:`repro.faults`) steps outside it on purpose.  This
module quantifies *how* the guarantees die: for each point of a fault
severity grid it runs the recovery harness
(:func:`repro.verification.statistical.run_recovery_check`) over a fresh
sample of instances and records the recovery probability with an exact
Clopper–Pearson band.

The resulting :class:`DegradationCurve` is the repo's robustness
contract, checked in as ``BENCH_faults.json``:

* at fault rate 0 the success rate must be exactly 1.0 (the control arm
  — the fault harness itself must not perturb a fault-free run);
* moving along the grid, success must degrade *monotonically within the
  confidence bands* — a later point may not be significantly better
  than an earlier one (point estimates may wiggle inside their bands;
  that is sampling noise, not a violation).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.parallel import ProcessCount
from repro.exceptions import ConfigurationError
from repro.faults.model import FaultModel

# NOTE: repro.verification.statistical is imported lazily inside
# measure_degradation — it imports repro.analysis.parallel, so a module-level
# import here would cycle through this package's __init__.


@dataclass(frozen=True)
class DegradationPoint:
    """One grid point: a fault severity and its measured recovery rate."""

    rate: float
    samples: int
    recovered: int
    wrong_stable: int
    stuck: int
    low: float
    high: float
    fault_events: Dict[str, int] = field(default_factory=dict)

    @property
    def success_rate(self) -> float:
        """Point estimate of the recovery probability."""
        return self.recovered / self.samples

    def to_dict(self) -> dict:
        return {
            "rate": self.rate,
            "samples": self.samples,
            "recovered": self.recovered,
            "wrong_stable": self.wrong_stable,
            "stuck": self.stuck,
            "success_rate": self.success_rate,
            "low": self.low,
            "high": self.high,
            "fault_events": dict(self.fault_events),
        }


@dataclass
class DegradationCurve:
    """Success-probability-vs-fault-rate curve for one fault kind."""

    algorithm: str
    kind: str
    n: int
    id_max: int
    confidence: float
    seed: int
    backend: str
    scheduler: str
    points: List[DegradationPoint] = field(default_factory=list)

    @property
    def clean_at_zero(self) -> bool:
        """True when the rate-0 point (if present) has success rate 1.0."""
        for point in self.points:
            if point.rate == 0.0:
                return point.success_rate == 1.0
        return True

    def monotone_within_bands(self) -> bool:
        """True when no later point is significantly *better* than an
        earlier one: each point's estimate must not exceed the upper
        confidence bound of every earlier (milder) point."""
        for i, earlier in enumerate(self.points):
            for later in self.points[i + 1 :]:
                if later.success_rate > earlier.high:
                    return False
        return True

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "kind": self.kind,
            "n": self.n,
            "id_max": self.id_max,
            "confidence": self.confidence,
            "seed": self.seed,
            "backend": self.backend,
            "scheduler": self.scheduler,
            "clean_at_zero": self.clean_at_zero,
            "monotone_within_bands": self.monotone_within_bands(),
            "points": [point.to_dict() for point in self.points],
        }


#: Fault kinds the sweep knows how to scale by a single rate knob.
#: ``crash`` is node- rather than channel-scoped: each (instance, node)
#: rolls one counter-based fail-stop decision (see
#: ``FaultModel.crash_rate``), so the curve covers node failures too.
SWEEP_KINDS = ("drop", "duplicate", "spurious", "crash")


def model_for_rate(kind: str, rate: float, seed: int) -> FaultModel:
    """The :class:`FaultModel` of one grid point of a ``kind`` sweep."""
    if kind not in SWEEP_KINDS:
        raise ConfigurationError(
            f"unknown sweep kind {kind!r}; expected one of {SWEEP_KINDS}"
        )
    base = FaultModel(seed=seed)
    if kind == "drop":
        return replace(base, drop_rate=rate)
    if kind == "duplicate":
        return replace(base, duplicate_rate=rate)
    if kind == "crash":
        return replace(base, crash_rate=rate)
    return replace(base, spurious_rate=rate)


def measure_degradation(
    rates: Sequence[float],
    kind: str = "drop",
    algorithm: str = "nonoriented",
    n: int = 6,
    id_max: int = 64,
    samples: int = 200,
    seed: int = 0,
    sched_seed: int = 0,
    scheduler: str = "lockstep",
    backend: str = "auto",
    block_size: int = 256,
    confidence: float = 0.99,
    fault_seed: int = 0,
    watchdog_rounds: Optional[int] = None,
    processes: ProcessCount = 1,
    farm_root: Optional[Union[str, Path]] = None,
) -> DegradationCurve:
    """Measure one degradation curve over the ``rates`` grid.

    Every grid point reruns the same ``samples`` sampled instances (same
    ``seed``) under :func:`model_for_rate` ``(kind, rate)``, so points
    differ only in fault severity — the curve isolates the fault knob.

    With ``farm_root`` set the sweep routes through the sweep farm
    (:mod:`repro.farm`): each (rate, shard-range) cell becomes a
    content-addressed job, cached cells are reused (including cells a
    standalone recovery campaign already computed), and the curve is
    aggregated from the store — bit-identical to the direct path.
    """
    from repro.verification.statistical import run_recovery_check

    if not rates:
        raise ConfigurationError("need at least one fault rate to sweep")
    ordered = list(rates)
    if ordered != sorted(ordered):
        raise ConfigurationError(
            f"sweep rates must be non-decreasing, got {ordered}"
        )
    if farm_root is not None:
        from repro.accel import resolve_backend
        from repro.farm.campaign import Campaign, degradation_params
        from repro.farm.service import Farm

        farm = Farm(farm_root)
        campaign = Campaign(
            "degradation",
            total=samples,
            params=degradation_params(
                kind=kind,
                rates=tuple(ordered),
                algorithm=algorithm,
                n=n,
                id_max=id_max,
                seed=seed,
                sched_seed=sched_seed,
                scheduler=scheduler,
                fault_seed=fault_seed,
                watchdog_rounds=watchdog_rounds,
            ),
        )
        outcome = farm.submit(
            campaign, backend=backend, processes=processes, block_size=block_size
        )
        if not outcome.complete:
            raise ConfigurationError(
                f"farm submit left {len(outcome.failed)} shards failed "
                f"for campaign {outcome.cid}: {outcome.failed[0][2]}"
            )
        curve = farm.collect_object(
            campaign.cid,
            confidence=confidence,
            backend_label=resolve_backend(backend),
        )
        return curve
    points: List[DegradationPoint] = []
    resolved_backend = backend
    for rate in ordered:
        report = run_recovery_check(
            algorithm=algorithm,
            n=n,
            id_max=id_max,
            samples=samples,
            seed=seed,
            sched_seed=sched_seed,
            scheduler=scheduler,
            backend=backend,
            block_size=block_size,
            confidence=confidence,
            faults=model_for_rate(kind, rate, fault_seed),
            max_counterexamples=0,
            watchdog_rounds=watchdog_rounds,
            processes=processes,
        )
        resolved_backend = report.backend
        points.append(
            DegradationPoint(
                rate=rate,
                samples=report.samples,
                recovered=report.recovered,
                wrong_stable=report.wrong_stable,
                stuck=report.stuck,
                low=report.rate_low,
                high=report.rate_high,
                fault_events=dict(report.fault_events),
            )
        )
    return DegradationCurve(
        algorithm=algorithm,
        kind=kind,
        n=n,
        id_max=id_max,
        confidence=confidence,
        seed=seed,
        backend=resolved_backend,
        scheduler=scheduler,
        points=points,
    )
