"""Analytical companions to the experiments: closed forms and statistics."""

from repro.analysis.complexity import (
    ComplexityComparison,
    algorithm2_pulses,
    algorithm3_doubled_pulses,
    algorithm3_successor_pulses,
    compare_with_baselines,
    crossover_id_max,
    lower_bound_gap,
    warmup_pulses,
)
from repro.analysis.average_case import (
    PlacementStats,
    chang_roberts_expected_total,
    harmonic,
    measure_chang_roberts_over_placements,
    measure_oblivious_over_placements,
    random_placements,
)
from repro.analysis.degradation import (
    DegradationCurve,
    DegradationPoint,
    measure_degradation,
    model_for_rate,
)
from repro.analysis.parallel import parallel_map, resolve_processes, shard_evenly
from repro.analysis.whp import measure_anonymous_success
from repro.analysis.stats import (
    BernoulliEstimate,
    clopper_pearson_interval,
    estimate_success_rate,
    wilson_interval,
)

__all__ = [
    "ComplexityComparison",
    "algorithm2_pulses",
    "algorithm3_doubled_pulses",
    "algorithm3_successor_pulses",
    "compare_with_baselines",
    "crossover_id_max",
    "lower_bound_gap",
    "warmup_pulses",
    "BernoulliEstimate",
    "clopper_pearson_interval",
    "estimate_success_rate",
    "wilson_interval",
    "DegradationCurve",
    "DegradationPoint",
    "measure_degradation",
    "model_for_rate",
    "PlacementStats",
    "chang_roberts_expected_total",
    "harmonic",
    "measure_chang_roberts_over_placements",
    "measure_oblivious_over_placements",
    "random_placements",
    "parallel_map",
    "resolve_processes",
    "shard_evenly",
    "measure_anonymous_success",
]
