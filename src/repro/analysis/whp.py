"""The Theorem 3 with-high-probability experiment at fleet scale.

Theorem 3 (via Lemma 18) promises that the anonymous pipeline —
Algorithm 4 sampling feeding Algorithm 3 — elects a unique leader and
a consistent orientation with probability :math:`1 - O(n^{-c})`.
Validating "with high probability" empirically needs *thousands* of
independent seeded attempts per parameter point, which is exactly the
workload the vectorized fleet engine (:mod:`repro.simulator.fleet`)
batches: this module runs one fleet per process shard and summarizes
the per-seed success indicators with a Wilson interval.

The geometric ID sampler has an unbounded tail, so a scalar engine
sweep must either cap its step budget (discarding seeds, which biases
the estimate) or pay :math:`O(n \\cdot \\mathrm{ID_{max}})` deliveries
on tail seeds.  The fleet's lap-skip fast-forward handles tail IDs in
closed form, so ``fleet=True`` takes *every* seed unbiased; the serial
path exists for differential checking at small scale.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.analysis.parallel import (
    ProcessCount,
    parallel_map,
    resolve_processes,
    shard_evenly,
)
from repro.analysis.stats import (
    BernoulliEstimate,
    clopper_pearson_interval,
    estimate_success_rate,
    wilson_interval,
)
from repro.exceptions import ConfigurationError


def whp_target(n: int, c: float) -> float:
    """Lemma 18's success-probability floor :math:`1 - n^{-c}`.

    The w.h.p. experiments and the statistical checker's anonymous
    predicate both test observed success counts against this target
    (via :meth:`~repro.analysis.stats.BernoulliEstimate.consistent_with_at_least`
    or the Clopper–Pearson upper bound).
    """
    if n < 2:
        raise ConfigurationError(f"need a ring of at least 2 nodes, got n={n}")
    if c <= 0:
        raise ConfigurationError(f"sampler exponent c must be > 0, got {c}")
    return 1.0 - float(n) ** (-c)


def _anonymous_fleet_successes(
    job: "Tuple[int, Sequence[int], float, str]",
) -> List[bool]:
    """Picklable worker: per-seed success flags of one fleet shard."""
    from repro.simulator.fleet import run_anonymous_fleet

    n, seeds, c, backend = job
    return run_anonymous_fleet(n, list(seeds), c=c, backend=backend).succeeded


def measure_anonymous_success(
    n: int,
    trials: int,
    c: float = 2.0,
    seed: int = 0,
    processes: ProcessCount = None,
    fleet: bool = True,
    backend: str = "auto",
    z: float = 2.576,
    interval: str = "wilson",
    farm_root: Optional[Union[str, Path]] = None,
) -> BernoulliEstimate:
    """Estimate the Theorem 3 success probability over seeded attempts.

    Attempt ``i`` uses seed ``seed + i`` and succeeds when the pipeline
    elects exactly one leader with a consistent orientation (the
    :attr:`repro.core.anonymous.AnonymousOutcome.succeeded` predicate).

    Args:
        n: Ring size.
        trials: Number of independent seeded attempts.
        c: Sampler exponent; success probability is :math:`1 - O(n^{-c})`.
        seed: First attempt seed (attempts use a contiguous seed range).
        processes: Worker processes; the seed range is sharded evenly and
            each shard runs as one vectorized fleet.
        fleet: When False, run each seed through the scalar
            :func:`repro.core.anonymous.run_anonymous` pipeline instead
            (slow; only viable at small n and lucky seeds — used by the
            differential tests).
        backend: Fleet backend (``"auto"`` / ``"numpy"`` / ``"python"``).
        z: Confidence quantile for the Wilson interval.
        interval: ``"wilson"`` (default) or ``"clopper-pearson"`` — the
            exact interval the statistical checker reports (its ~99%
            level is derived from ``z`` as the matching normal quantile).
        farm_root: When set, route through the sweep farm rooted there
            (:mod:`repro.farm`): shards already in its content-addressed
            store are reused, new shards are computed and cached, and the
            estimate is aggregated from the store — bit-identical to the
            direct path (the per-seed flags are pure in ``seed + i``).
    """
    if interval not in ("wilson", "clopper-pearson"):
        raise ConfigurationError(
            f"unknown interval method {interval!r}; "
            "choose 'wilson' or 'clopper-pearson'"
        )
    if trials < 1:
        raise ConfigurationError(f"need at least one trial, got {trials}")
    if farm_root is not None:
        from repro.farm.campaign import Campaign, whp_params
        from repro.farm.service import Farm

        farm = Farm(farm_root)
        campaign = Campaign(
            "whp", total=trials, params=whp_params(n=n, c=c, seed=seed)
        )
        outcome = farm.submit(campaign, backend=backend, processes=processes)
        if not outcome.complete:
            raise ConfigurationError(
                f"farm submit left {len(outcome.failed)} shards failed "
                f"for campaign {outcome.cid}: {outcome.failed[0][2]}"
            )
        return farm.collect_object(campaign.cid, z=z, interval=interval)
    seeds = range(seed, seed + trials)
    if not fleet:
        from repro.core.anonymous import run_anonymous

        estimate = estimate_success_rate(
            lambda s: run_anonymous(n, c=c, seed=s).succeeded, seeds=seeds, z=z
        )
        if interval == "clopper-pearson":
            low, high = clopper_pearson_interval(
                estimate.successes, estimate.trials, confidence=_z_to_confidence(z)
            )
            estimate = BernoulliEstimate(
                successes=estimate.successes,
                trials=estimate.trials,
                low=low,
                high=high,
            )
        return estimate
    shards = shard_evenly(list(seeds), resolve_processes(processes))
    per_shard = parallel_map(
        _anonymous_fleet_successes,
        [(n, shard, c, backend) for shard in shards],
        processes=processes,
    )
    flags = [flag for shard in per_shard for flag in shard]
    successes = sum(flags)
    if interval == "clopper-pearson":
        low, high = clopper_pearson_interval(
            successes, len(flags), confidence=_z_to_confidence(z)
        )
    else:
        low, high = wilson_interval(successes, len(flags), z=z)
    return BernoulliEstimate(
        successes=successes, trials=len(flags), low=low, high=high
    )


def _z_to_confidence(z: float) -> float:
    """Two-sided coverage of the +-z normal range (so z=2.576 -> ~0.99)."""
    import math

    return max(1e-9, min(1 - 1e-12, math.erf(z / math.sqrt(2.0))))
