"""Process-parallel sweep runner for placement sweeps and benchmarks.

Simulation sweeps (random ID placements, scheduler grids, benchmark
repetitions) are embarrassingly parallel: each trial is an independent,
deterministic function of its inputs.  :func:`parallel_map` fans such
trials out over a :class:`~concurrent.futures.ProcessPoolExecutor` while
keeping three properties the callers rely on:

* **Determinism** — callers build the full input list (including any
  RNG-derived placements) *before* the fan-out, so serial and parallel
  execution see byte-identical inputs and return identical results in
  the input order.
* **Graceful degradation** — ``processes=None``/``0``/``1`` (and any
  resolution to a single worker) run serially in-process; if the pool
  itself cannot be created or breaks (sandboxes without working
  ``fork``/semaphores, interpreter shutdown), the sweep transparently
  falls back to the serial path instead of failing.
* **Picklability** — workers must be module-top-level functions taking
  one picklable argument.  The placement-sweep workers in
  :mod:`repro.analysis.average_case` follow this shape.

Exceptions raised by the mapped function itself are *not* swallowed:
they propagate from the parallel path exactly as from the serial one.
"""

from __future__ import annotations

import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar, Union

from repro.exceptions import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")

#: Accepted by every ``processes=`` parameter in the analysis layer.
ProcessCount = Union[int, str, None]


def resolve_processes(processes: ProcessCount) -> int:
    """Normalize a ``processes`` argument to a concrete worker count.

    ``None``, ``0``, and ``1`` mean *serial* (one in-process worker);
    ``"auto"`` means one worker per available CPU; any other positive
    int is taken literally.
    """
    if processes is None:
        return 1
    if processes == "auto":
        return max(os.cpu_count() or 1, 1)
    if isinstance(processes, bool) or not isinstance(processes, int):
        raise ConfigurationError(
            f"processes must be a non-negative int, 'auto', or None; "
            f"got {processes!r}"
        )
    if processes < 0:
        raise ConfigurationError(
            f"processes must be a non-negative int, 'auto', or None; "
            f"got {processes!r}"
        )
    return max(processes, 1)


def parallel_map(
    func: Callable[[T], R],
    items: Iterable[T],
    processes: ProcessCount = None,
    chunksize: Optional[int] = None,
) -> List[R]:
    """Map ``func`` over ``items``, optionally across worker processes.

    Args:
        func: A module-top-level (picklable) function of one argument.
        items: The inputs; fully materialized before any fan-out so the
            work list is identical in serial and parallel runs.
        processes: Worker count per :func:`resolve_processes`.
        chunksize: Items handed to a worker per dispatch; defaults to a
            value that gives each worker a few batches.

    Returns:
        ``[func(item) for item in items]``, in input order — the serial
        and parallel paths are observationally identical.
    """
    work = list(items)
    # Never spawn more workers than there are items: a sweep smaller than
    # one shard per worker would fork processes that exit without work,
    # and a single-item sweep must not pay pool startup or pickling at
    # all — it short-circuits to the plain list comprehension.
    workers = min(resolve_processes(processes), len(work))
    if workers <= 1:
        return [func(item) for item in work]
    if chunksize is None:
        chunksize = max(1, len(work) // (workers * 4))
    # Pin NUMBA_CACHE_DIR before the pool exists: workers inherit the
    # environment, so every shard that touches the compiled fleet tier
    # reloads the parent's on-disk JIT cache instead of recompiling.
    from repro.accel import pin_jit_cache

    pin_jit_cache()
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(func, work, chunksize=chunksize))
    except (OSError, BrokenExecutor, RuntimeError):
        # Pool-level failure (no fork support, missing POSIX semaphores,
        # interpreter teardown): degrade to the serial path, which is
        # defined to produce identical results.
        return [func(item) for item in work]


def shard_evenly(items: Iterable[T], shards: int) -> List[List[T]]:
    """Split ``items`` into at most ``shards`` contiguous, balanced shards.

    The fleet sweep runners use this to shard an instance list across
    processes (each process then advances its shard as one vectorized
    fleet — processes × SIMD rather than processes × scalar).  Shard
    sizes differ by at most one, order is preserved, and empty shards are
    never produced (fewer items than shards yields fewer shards).
    """
    work = list(items)
    if shards < 1:
        raise ConfigurationError(f"shards must be positive, got {shards}")
    shards = min(shards, len(work))
    if shards == 0:
        return []
    base, extra = divmod(len(work), shards)
    out: List[List[T]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        out.append(work[start : start + size])
        start += size
    return out
