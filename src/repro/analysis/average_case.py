"""Average-case message counts for the classic baselines.

Chang-Roberts' famous analysis: over a uniformly random circular
placement of IDs, the expected number of candidate messages is
:math:`n \\cdot H_n` (the n-th harmonic number) — each node's candidate
message survives ``j`` hops with probability ``1/(j+1)``... summing to
``H_n`` expected hops per candidate.  The paper's algorithm, by
contrast, has *no* placement variance at all: its cost is the constant
``n(2*IDmax+1)``.

These helpers give the closed forms; the tests and the E5 bench compare
them against measured averages over random placements.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.analysis.parallel import (
    ProcessCount,
    parallel_map,
    resolve_processes,
    shard_evenly,
)
from repro.exceptions import ConfigurationError


def harmonic(n: int) -> float:
    """The n-th harmonic number :math:`H_n = \\sum_{k=1}^n 1/k`."""
    if n < 1:
        raise ConfigurationError(f"harmonic number needs n >= 1, got {n}")
    return sum(1.0 / k for k in range(1, n + 1))


def chang_roberts_expected_candidate_messages(n: int) -> float:
    """Expected candidate messages over random placements: :math:`nH_n`."""
    return n * harmonic(n)


def chang_roberts_expected_total(n: int) -> float:
    """Expected total including the ``n`` announcement messages."""
    return chang_roberts_expected_candidate_messages(n) + n


@dataclass(frozen=True)
class PlacementStats:
    """Summary of measured message counts over random ID placements."""

    n: int
    trials: int
    mean: float
    minimum: int
    maximum: int

    @property
    def spread(self) -> int:
        """Max minus min: the placement sensitivity."""
        return self.maximum - self.minimum


def random_placements(n: int, trials: int, seed: int = 0) -> List[List[int]]:
    """``trials`` seeded random circular placements of the IDs ``1..n``.

    Built up front (and always sequentially) so that serial and parallel
    sweeps over the same seed visit byte-identical placements.
    """
    rng = random.Random(seed)
    base = list(range(1, n + 1))
    placements: List[List[int]] = []
    for _ in range(trials):
        ids = base[:]
        rng.shuffle(ids)
        placements.append(ids)
    return placements


def _stats_from_counts(n: int, counts: Sequence[int]) -> PlacementStats:
    return PlacementStats(
        n=n,
        trials=len(counts),
        mean=sum(counts) / len(counts),
        minimum=min(counts),
        maximum=max(counts),
    )


def _chang_roberts_total(ids: Sequence[int]) -> int:
    """Picklable worker: total messages of one Chang-Roberts run."""
    from repro.baselines import run_baseline
    from repro.baselines.chang_roberts import ChangRobertsNode

    return run_baseline(ChangRobertsNode, list(ids)).total_messages


def _oblivious_total(job: "Tuple[Sequence[int], bool]") -> int:
    """Picklable worker: total pulses of one Algorithm 2 run."""
    from repro.core.terminating import run_terminating

    ids, batched = job
    return run_terminating(list(ids), batched=batched).total_pulses


def measure_chang_roberts_over_placements(
    n: int, trials: int, seed: int = 0, processes: ProcessCount = None
) -> PlacementStats:
    """Run Chang-Roberts over ``trials`` random placements of ``1..n``.

    ``processes`` fans the placements out over worker processes (see
    :func:`repro.analysis.parallel.parallel_map`); results are identical
    to the serial sweep for any worker count.
    """
    placements = random_placements(n, trials, seed=seed)
    counts = parallel_map(_chang_roberts_total, placements, processes=processes)
    return _stats_from_counts(n, counts)


def _oblivious_fleet_totals(job: "Tuple[Sequence[Sequence[int]], str]") -> List[int]:
    """Picklable worker: pulse totals of one fleet shard of Algorithm 2."""
    from repro.simulator.fleet import run_terminating_fleet

    shard, backend = job
    return run_terminating_fleet(
        [list(ids) for ids in shard], backend=backend
    ).total_pulses


def measure_oblivious_over_placements(
    n: int,
    trials: int,
    seed: int = 0,
    processes: ProcessCount = None,
    batched: bool = False,
    fleet: bool = False,
    backend: str = "auto",
    farm_root: Optional[Union[str, Path]] = None,
) -> PlacementStats:
    """The same sweep for Algorithm 2: the spread must be exactly zero.

    ``batched`` runs each trial on the engine's counting fast path
    (identical outcomes, much faster for large IDs); ``fleet`` advances
    all trials in lockstep through the vectorized fleet engine
    (:mod:`repro.simulator.fleet`), sharding the fleet across worker
    processes — processes × SIMD rather than processes × scalar.  All
    paths produce identical statistics for identical seeds.

    ``farm_root`` routes the sweep through the sweep farm rooted there
    (:mod:`repro.farm`): cached placement shards are reused, new ones
    are computed (always on the fleet path) and cached, and the stats
    are aggregated from the store — identical to every direct path.
    """
    if farm_root is not None:
        from repro.farm.campaign import Campaign, placements_params
        from repro.farm.service import Farm

        farm = Farm(farm_root)
        campaign = Campaign(
            "placements", total=trials, params=placements_params(n=n, seed=seed)
        )
        outcome = farm.submit(campaign, backend=backend, processes=processes)
        if not outcome.complete:
            raise ConfigurationError(
                f"farm submit left {len(outcome.failed)} shards failed "
                f"for campaign {outcome.cid}: {outcome.failed[0][2]}"
            )
        return farm.collect_object(campaign.cid)
    placements = random_placements(n, trials, seed=seed)
    if fleet:
        shards = shard_evenly(placements, resolve_processes(processes))
        per_shard = parallel_map(
            _oblivious_fleet_totals,
            [(shard, backend) for shard in shards],
            processes=processes,
        )
        counts: List[int] = [total for shard in per_shard for total in shard]
    else:
        counts = parallel_map(
            _oblivious_total,
            [(ids, batched) for ids in placements],
            processes=processes,
        )
    return _stats_from_counts(n, counts)
