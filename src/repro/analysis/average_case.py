"""Average-case message counts for the classic baselines.

Chang-Roberts' famous analysis: over a uniformly random circular
placement of IDs, the expected number of candidate messages is
:math:`n \\cdot H_n` (the n-th harmonic number) — each node's candidate
message survives ``j`` hops with probability ``1/(j+1)``... summing to
``H_n`` expected hops per candidate.  The paper's algorithm, by
contrast, has *no* placement variance at all: its cost is the constant
``n(2*IDmax+1)``.

These helpers give the closed forms; the tests and the E5 bench compare
them against measured averages over random placements.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.exceptions import ConfigurationError


def harmonic(n: int) -> float:
    """The n-th harmonic number :math:`H_n = \\sum_{k=1}^n 1/k`."""
    if n < 1:
        raise ConfigurationError(f"harmonic number needs n >= 1, got {n}")
    return sum(1.0 / k for k in range(1, n + 1))


def chang_roberts_expected_candidate_messages(n: int) -> float:
    """Expected candidate messages over random placements: :math:`nH_n`."""
    return n * harmonic(n)


def chang_roberts_expected_total(n: int) -> float:
    """Expected total including the ``n`` announcement messages."""
    return chang_roberts_expected_candidate_messages(n) + n


@dataclass(frozen=True)
class PlacementStats:
    """Summary of measured message counts over random ID placements."""

    n: int
    trials: int
    mean: float
    minimum: int
    maximum: int

    @property
    def spread(self) -> int:
        """Max minus min: the placement sensitivity."""
        return self.maximum - self.minimum


def measure_chang_roberts_over_placements(
    n: int, trials: int, seed: int = 0
) -> PlacementStats:
    """Run Chang-Roberts over ``trials`` random placements of ``1..n``."""
    from repro.baselines import run_baseline
    from repro.baselines.chang_roberts import ChangRobertsNode

    rng = random.Random(seed)
    counts: List[int] = []
    base = list(range(1, n + 1))
    for _ in range(trials):
        ids = base[:]
        rng.shuffle(ids)
        counts.append(run_baseline(ChangRobertsNode, ids).total_messages)
    return PlacementStats(
        n=n,
        trials=trials,
        mean=sum(counts) / len(counts),
        minimum=min(counts),
        maximum=max(counts),
    )


def measure_oblivious_over_placements(
    n: int, trials: int, seed: int = 0
) -> PlacementStats:
    """The same sweep for Algorithm 2: the spread must be exactly zero."""
    from repro.core.terminating import run_terminating

    rng = random.Random(seed)
    counts: List[int] = []
    base = list(range(1, n + 1))
    for _ in range(trials):
        ids = base[:]
        rng.shuffle(ids)
        counts.append(run_terminating(ids).total_pulses)
    return PlacementStats(
        n=n,
        trials=trials,
        mean=sum(counts) / len(counts),
        minimum=min(counts),
        maximum=max(counts),
    )
