"""Closed-form message complexities and cross-algorithm comparisons.

The paper's headline quantities, as checkable formulas:

* Algorithm 1 (warm-up):            :math:`n \\cdot \\mathsf{ID}_{max}`
* Algorithm 2 (Theorem 1):          :math:`n(2\\,\\mathsf{ID}_{max}+1)`
* Algorithm 3, doubled (Prop 15):   :math:`n(4\\,\\mathsf{ID}_{max}-1)`
* Algorithm 3, successor (Thm 2):   :math:`n(2\\,\\mathsf{ID}_{max}+1)`
* Lower bound (Thm 4/20):           :math:`n\\lfloor\\log_2(\\mathsf{ID}_{max}/n)\\rfloor`

plus the content-carrying baselines' counts for the E5 comparison, and
the crossover solver: since the content-oblivious cost grows linearly in
:math:`\\mathsf{ID}_{max}` while baselines depend only on ``n``, there is
always an ID magnitude beyond which content-obliviousness costs more than
any fixed baseline — Theorem 4 says that is *inherent*, not an artifact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.exceptions import ConfigurationError
from repro.core.lower_bound import lower_bound_pulses


def _check(n: int, id_max: int) -> None:
    if n < 1:
        raise ConfigurationError(f"n must be positive, got {n}")
    if id_max < n:
        raise ConfigurationError(
            f"IDmax={id_max} is impossible for n={n} unique positive IDs"
        )


def warmup_pulses(n: int, id_max: int) -> int:
    """Algorithm 1's exact pulse count (Corollary 13)."""
    _check(n, id_max)
    return n * id_max


def algorithm2_pulses(n: int, id_max: int) -> int:
    """Theorem 1's exact pulse count."""
    _check(n, id_max)
    return n * (2 * id_max + 1)


def algorithm3_doubled_pulses(n: int, id_max: int) -> int:
    """Proposition 15's exact pulse count (virtual IDs ``2*ID-1+i``)."""
    _check(n, id_max)
    return n * (4 * id_max - 1)


def algorithm3_successor_pulses(n: int, id_max: int) -> int:
    """Theorem 2's exact pulse count (virtual IDs ``ID+i``)."""
    _check(n, id_max)
    return n * (2 * id_max + 1)


def lower_bound_gap(n: int, id_max: int) -> float:
    """Upper/lower bound ratio: how unsettled Section 7 leaves the gap.

    Theorem 1 gives :math:`O(n\\,\\mathsf{ID}_{max})` while Theorem 4
    gives :math:`\\Omega(n\\log(\\mathsf{ID}_{max}/n))`; the returned
    ratio is exponential in general — the open problem the paper's
    conclusion highlights.  Returns ``inf`` when the lower bound is 0
    (i.e. :math:`\\mathsf{ID}_{max} < 2n`).
    """
    _check(n, id_max)
    lower = lower_bound_pulses(n, id_max)
    upper = algorithm2_pulses(n, id_max)
    return upper / lower if lower else math.inf


@dataclass(frozen=True)
class ComplexityComparison:
    """One row of the E5 comparison table."""

    n: int
    id_max: int
    content_oblivious: int
    lower_bound: int
    baselines: Dict[str, int]

    @property
    def cheapest_baseline(self) -> str:
        """Name of the cheapest content-carrying competitor."""
        return min(self.baselines, key=self.baselines.get)  # type: ignore[arg-type]

    @property
    def oblivious_overhead(self) -> float:
        """Content-oblivious cost over the cheapest baseline's cost."""
        return self.content_oblivious / self.baselines[self.cheapest_baseline]


def compare_with_baselines(n: int, id_max: int) -> ComplexityComparison:
    """Analytic comparison row (worst-case formulas, not measurements).

    Baseline entries use worst-case counts: Chang-Roberts
    :math:`n(n+1)/2 + n`, Le Lann :math:`n^2`, and the standard
    :math:`O(n\\log n)` ceilings for HS/Peterson/DKR (``4n log n + O(n)``
    -flavoured; the benchmark measures real counts).
    """
    _check(n, id_max)
    log_n = max(1, math.ceil(math.log2(n))) if n > 1 else 1
    return ComplexityComparison(
        n=n,
        id_max=id_max,
        content_oblivious=algorithm2_pulses(n, id_max),
        lower_bound=lower_bound_pulses(n, id_max),
        baselines={
            "chang_roberts_worst": n * (n + 1) // 2 + n,
            "lelann": n * n,
            "hirschberg_sinclair_bound": 8 * n * (log_n + 1) + n,
            "peterson_bound": 2 * n * (log_n + 1) + n,
            "dolev_klawe_rodeh_bound": 2 * n * (log_n + 1) + n,
        },
    )


def crossover_id_max(n: int, baseline_messages: int) -> int:
    """Smallest IDmax making Algorithm 2 dearer than a given baseline cost.

    Solves :math:`n(2\\,\\mathsf{ID}_{max}+1) > B` for the least integer
    :math:`\\mathsf{ID}_{max} \\ge n`.  Below the returned value the
    content-oblivious algorithm is actually *cheaper* than the baseline
    (possible because tight ID spaces make :math:`\\mathsf{ID}_{max}`
    comparable to ``n``).
    """
    if n < 1 or baseline_messages < 0:
        raise ConfigurationError("need n >= 1 and a non-negative baseline cost")
    # n(2m+1) > B  <=>  m > (B/n - 1)/2
    threshold = (baseline_messages / n - 1.0) / 2.0
    return max(n, math.floor(threshold) + 1)
