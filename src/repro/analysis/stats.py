"""Statistics helpers for the randomized experiments (Theorem 3, Lemma 18).

"With high probability" claims cannot be asserted per-run; the anonymous-
ring experiments estimate success rates over many seeded trials and check
them against the paper's :math:`1 - O(n^{-c})` guarantee using binomial
confidence intervals.  Two interval constructions are provided:

* :func:`wilson_interval` — the Wilson score interval (robust at success
  rates near 1, where a normal approximation would degenerate); the
  default for the w.h.p. experiments.
* :func:`clopper_pearson_interval` — the exact (conservative) interval,
  used by the statistical model checker where the observed proportion is
  typically 0/N or N/N and an *exact* guarantee statement is wanted.
  Implemented from scratch (regularized incomplete beta via a Lentz
  continued fraction + bisection) so the checker stays dependency-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Tuple


@dataclass(frozen=True)
class BernoulliEstimate:
    """A success-rate estimate with a binomial confidence interval."""

    successes: int
    trials: int
    low: float
    high: float

    @property
    def rate(self) -> float:
        """Point estimate of the success probability."""
        return self.successes / self.trials

    def consistent_with_at_least(self, p: float) -> bool:
        """Could the true rate plausibly be ``>= p``?  (interval test)"""
        return self.high >= p


def wilson_interval(
    successes: int, trials: int, z: float = 2.576
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Args:
        successes: Number of successful trials.
        trials: Total trials (must be positive).
        z: Normal quantile; the default 2.576 gives a ~99% interval.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes={successes} out of range for trials={trials}")
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return (max(0.0, centre - margin), min(1.0, centre + margin))


def _beta_continued_fraction(a: float, b: float, x: float) -> float:
    """Lentz's continued fraction for the incomplete beta (NR 'betacf')."""
    max_iterations = 300
    eps = 3e-14
    fpmin = 1e-300
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < fpmin:
        d = fpmin
    d = 1.0 / d
    h = d
    for m in range(1, max_iterations + 1):
        m2 = 2 * m
        numerator = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + numerator * d
        if abs(d) < fpmin:
            d = fpmin
        c = 1.0 + numerator / c
        if abs(c) < fpmin:
            c = fpmin
        d = 1.0 / d
        h *= d * c
        numerator = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + numerator * d
        if abs(d) < fpmin:
            d = fpmin
        c = 1.0 + numerator / c
        if abs(c) < fpmin:
            c = fpmin
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < eps:
            break
    return h


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """:math:`I_x(a, b)`, the Beta(a, b) CDF at ``x`` (pure Python).

    Uses the continued fraction on whichever side of the distribution
    converges fast, with the symmetry
    :math:`I_x(a,b) = 1 - I_{1-x}(b,a)`.
    """
    if a <= 0 or b <= 0:
        raise ValueError(f"beta parameters must be positive, got a={a}, b={b}")
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_continued_fraction(a, b, x) / a
    return 1.0 - front * _beta_continued_fraction(b, a, 1.0 - x) / b


def _beta_ppf(q: float, a: float, b: float) -> float:
    """Quantile of Beta(a, b) by bisection on the monotone CDF."""
    low, high = 0.0, 1.0
    for _ in range(100):  # 2^-100: far below float spacing
        mid = 0.5 * (low + high)
        if regularized_incomplete_beta(a, b, mid) < q:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def clopper_pearson_interval(
    successes: int, trials: int, confidence: float = 0.99
) -> Tuple[float, float]:
    """Exact (Clopper–Pearson) confidence interval for a proportion.

    Guaranteed coverage at least ``confidence`` for every true rate —
    conservative, which is the right direction for a model checker's
    "no violation in N samples" statement.  Endpoints are the standard
    beta quantiles: ``low = Beta(alpha/2; s, n-s+1)`` (0 when ``s=0``),
    ``high = Beta(1-alpha/2; s+1, n-s)`` (1 when ``s=n``).

    Args:
        successes: Number of successful trials.
        trials: Total trials (must be positive).
        confidence: Two-sided coverage level in (0, 1); default 99%.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes={successes} out of range for trials={trials}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    alpha = 1.0 - confidence
    if successes == 0:
        low = 0.0
    else:
        low = _beta_ppf(alpha / 2.0, successes, trials - successes + 1)
    if successes == trials:
        high = 1.0
    else:
        high = _beta_ppf(1.0 - alpha / 2.0, successes + 1, trials - successes)
    return (low, high)


def estimate_success_rate(
    trial_fn: Callable[[int], bool], seeds: Iterable[int], z: float = 2.576
) -> BernoulliEstimate:
    """Run ``trial_fn`` over seeds and summarize the success proportion.

    Args:
        trial_fn: Maps a seed to True (success) / False (failure).
        seeds: Seeds to evaluate (one trial each).
        z: Confidence quantile for the Wilson interval.
    """
    successes = 0
    trials = 0
    for seed in seeds:
        trials += 1
        if trial_fn(seed):
            successes += 1
    low, high = wilson_interval(successes, trials, z=z)
    return BernoulliEstimate(successes=successes, trials=trials, low=low, high=high)
