"""Statistics helpers for the randomized experiments (Theorem 3, Lemma 18).

"With high probability" claims cannot be asserted per-run; the anonymous-
ring experiments estimate success rates over many seeded trials and check
them against the paper's :math:`1 - O(n^{-c})` guarantee using Wilson
score intervals (robust at success rates near 1, where a normal
approximation would degenerate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Tuple


@dataclass(frozen=True)
class BernoulliEstimate:
    """A success-rate estimate with its Wilson confidence interval."""

    successes: int
    trials: int
    low: float
    high: float

    @property
    def rate(self) -> float:
        """Point estimate of the success probability."""
        return self.successes / self.trials

    def consistent_with_at_least(self, p: float) -> bool:
        """Could the true rate plausibly be ``>= p``?  (interval test)"""
        return self.high >= p


def wilson_interval(
    successes: int, trials: int, z: float = 2.576
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Args:
        successes: Number of successful trials.
        trials: Total trials (must be positive).
        z: Normal quantile; the default 2.576 gives a ~99% interval.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes={successes} out of range for trials={trials}")
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return (max(0.0, centre - margin), min(1.0, centre + margin))


def estimate_success_rate(
    trial_fn: Callable[[int], bool], seeds: Iterable[int], z: float = 2.576
) -> BernoulliEstimate:
    """Run ``trial_fn`` over seeds and summarize the success proportion.

    Args:
        trial_fn: Maps a seed to True (success) / False (failure).
        seeds: Seeds to evaluate (one trial each).
        z: Confidence quantile for the Wilson interval.
    """
    successes = 0
    trials = 0
    for seed in seeds:
        trials += 1
        if trial_fn(seed):
            successes += 1
    low, high = wilson_interval(successes, trials, z=z)
    return BernoulliEstimate(successes=successes, trials=trials, low=low, high=high)
