"""Exception hierarchy for the ``repro`` package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  The hierarchy is
deliberately shallow: one class per failure *kind*, not per failure *site*.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A simulation or algorithm was configured with invalid parameters.

    Examples: a ring with zero nodes, duplicate IDs handed to an algorithm
    that requires unique IDs, a non-positive ID, or a scheduler seed of the
    wrong type.
    """


class SimulationLimitExceeded(ReproError):
    """The engine hit its safety step limit before reaching quiescence.

    This almost always indicates a livelocked protocol (or a limit that is
    simply too small for the workload).  The exception carries the engine's
    partial statistics to aid debugging.
    """

    def __init__(self, message: str, steps: int) -> None:
        super().__init__(message)
        self.steps = steps


class ProtocolViolation(ReproError):
    """A node behaved in a way the model forbids.

    For instance, a node attempted to send a pulse after entering its
    terminating state, or an algorithm declared two leaders.
    """


class QuiescentTerminationViolation(ProtocolViolation):
    """A pulse was delivered to (or remained queued for) a terminated node.

    Quiescent termination (paper, Section 1.1) requires that when a node
    terminates, no pulse is in transit towards it and none will ever be sent
    to it.  The engine raises or records this violation depending on its
    ``strict`` setting.
    """


class BridgeWitnessError(ConfigurationError):
    """A topology below the 2-edge-connectivity frontier was refused.

    Content-oblivious computation is impossible on graphs with a bridge
    (Censor-Hillel et al.; the Beyond-2EC impossibility line): the
    adversary can starve one side of the bridge of all information.  The
    exception carries the offending edge as a machine-readable witness —
    ``None`` when the graph is outright disconnected.
    """

    def __init__(self, message: str, bridge: "tuple[int, int] | None" = None) -> None:
        super().__init__(message)
        self.bridge = bridge


class DecodingError(ReproError):
    """The defective-network transport failed to decode a pulse stream."""
