"""Simulated content-carrying algorithms for the universal interpreter.

Each class here is an ordinary asynchronous message-passing ring
algorithm — IDs, payloads, directions, the lot — written against
:class:`~repro.defective.universal.SimulatedRingNode`, and therefore
runnable over a **fully defective** ring via the interpreter.  The
flagship is Chang-Roberts: the 1979 algorithm whose every message is an
ID, executing in a network where no message can carry anything at all.

Payload packing: messages are single non-negative ints; structured
payloads use :func:`~repro.defective.encoding.cantor_pair`.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.defective.encoding import cantor_pair, cantor_unpair
from repro.defective.universal import CCW, CW, SimulatedContext, SimulatedRingNode

_CANDIDATE = 0
_ELECTED = 1


class SimChangRoberts(SimulatedRingNode):
    """Chang-Roberts 1979, simulated content-obliviously.

    Identical logic to :class:`repro.baselines.chang_roberts.ChangRobertsNode`
    (candidates clockwise, larger IDs survive, announcement circulates),
    but every "message" is reconstructed from pulse counts by the
    interpreter.  Final output: ``("leader"|"follower", winner_id)``.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.leader_id: Optional[int] = None

    def on_start(self, ctx: SimulatedContext) -> None:
        ctx.send_cw(cantor_pair(_CANDIDATE, self.node_id))

    def on_receive(self, ctx: SimulatedContext, direction: str, payload: int) -> None:
        kind, value = cantor_unpair(payload)
        if kind == _CANDIDATE:
            if value > self.node_id:
                ctx.send_cw(payload)
            elif value == self.node_id:
                self.leader_id = self.node_id
                ctx.send_cw(cantor_pair(_ELECTED, self.node_id))
            # smaller: swallowed
        else:  # _ELECTED
            if value == self.node_id:
                ctx.halt(("leader", self.node_id))
            else:
                self.leader_id = value
                ctx.send_cw(payload)
                ctx.halt(("follower", value))


class SimBroadcast(SimulatedRingNode):
    """Root floods a value both directions; everyone stores and halts.

    Exercises bidirectional simulated messaging: the root sends its
    value CW and CCW; each non-root forwards the first copy onward in
    its direction of travel and halts.  The two waves die where they
    meet (each node forwards at most once).
    """

    def __init__(self, value: Optional[int] = None) -> None:
        self.value = value  # non-None only at the root
        self.received: Optional[int] = None

    def on_start(self, ctx: SimulatedContext) -> None:
        if ctx.is_root:
            assert self.value is not None, "root needs a broadcast value"
            self.received = self.value
            ctx.send_cw(self.value)
            ctx.send_ccw(self.value)
            ctx.halt(self.value)

    def on_receive(self, ctx: SimulatedContext, direction: str, payload: int) -> None:
        if self.received is not None:
            return  # second wave: already have it, let it die
        self.received = payload
        if direction == CW:
            ctx.send_cw(payload)
        else:
            ctx.send_ccw(payload)
        ctx.halt(payload)


class SimConvergecastSum(SimulatedRingNode):
    """Root-coordinated sum: an accumulating token goes CW, result CCW?

    No — simpler and fully asynchronous: the root sends an accumulator
    clockwise; each node adds its input and forwards; when it returns,
    the root broadcasts the total clockwise and everyone halts with it.
    """

    _ACC = 0
    _RESULT = 1

    def __init__(self, input_value: int) -> None:
        self.input_value = input_value

    def on_start(self, ctx: SimulatedContext) -> None:
        if ctx.is_root:
            ctx.send_cw(cantor_pair(self._ACC, self.input_value))

    def on_receive(self, ctx: SimulatedContext, direction: str, payload: int) -> None:
        kind, value = cantor_unpair(payload)
        if kind == self._ACC:
            if ctx.is_root:
                # accumulator returned: value is the global sum
                ctx.send_cw(cantor_pair(self._RESULT, value))
                ctx.halt(value)
            else:
                ctx.send_cw(cantor_pair(self._ACC, value + self.input_value))
        else:  # _RESULT
            if not ctx.is_root:
                ctx.send_cw(payload)
                ctx.halt(value)
            # root already halted; its copy would die here anyway


class SimPingPong(SimulatedRingNode):
    """Adjacent ping-pong: stress bidirectional FIFO of the interpreter.

    The root sends ``k`` down-counting pings CW; its CW neighbor bounces
    each back CCW; the root halts when all pongs returned, the neighbor
    when the zero ping arrives.  All other nodes stay silent.
    """

    def __init__(self, rounds: int) -> None:
        self.rounds = rounds
        self.pongs = 0
        self.pings_seen: List[int] = []

    def on_start(self, ctx: SimulatedContext) -> None:
        if ctx.is_root:
            for k in range(self.rounds, -1, -1):
                ctx.send_cw(k)

    def on_receive(self, ctx: SimulatedContext, direction: str, payload: int) -> None:
        if ctx.is_root:
            self.pongs += 1
            if self.pongs == self.rounds + 1:
                ctx.halt(("root", self.pongs))
            return
        if direction == CW:
            # A ping from the root (we are its CW neighbor).
            self.pings_seen.append(payload)
            ctx.send_ccw(payload)
            if payload == 0:
                ctx.halt(("neighbor", len(self.pings_seen)))
