"""Ready-made programs for the circuit transport.

These are the content-carrying ring computations that Corollary 5 makes
possible on fully defective rings once a leader exists:

* :class:`AllReduceProgram` — fold everyone's input with an associative
  operator and broadcast the result to all nodes (sum, max, min, ...).
* :class:`SizeProgram` — every node learns the ring size ``n`` (the
  quantity whose uncomputability *without* a leader drives the paper's
  anonymous-ring impossibility discussion).
* :class:`GatherProgram` — the leader collects the full input vector in
  clockwise order, then broadcasts it; every node ends with all inputs.
  This is computationally universal (any function of the inputs can then
  be computed locally) at a polynomial unary-encoding cost.

All programs leave each node's result in ``memory['output']``, which the
transport also uses as the node's terminal output.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.defective.encoding import decode_sequence, encode_sequence
from repro.defective.transport import (
    CircuitNode,
    CircuitProgram,
    TransportOutcome,
    run_circuit_transport,
)
from repro.simulator.scheduler import Scheduler


class AllReduceProgram(CircuitProgram):
    """Fold all inputs with ``fold_fn`` and broadcast the result.

    Circuit 0 folds: the leader opens with its own input; every node
    relays ``fold_fn(acc, input)``; the leader closes holding the global
    fold.  Circuit 1 broadcasts that result unchanged.

    Args:
        fold_fn: Associative binary operator over non-negative ints.
            (Associativity is not strictly required — the fold is applied
            in clockwise ring order — but commutative/associative
            operators make the result placement-independent.)
    """

    user_circuits = 2

    def __init__(self, fold_fn: Callable[[int, int], int]) -> None:
        self.fold_fn = fold_fn

    def leader_open(self, circuit: int, ctx: CircuitNode) -> int:
        if circuit == 0:
            return ctx.input_value
        return ctx.memory["output"]  # broadcast circuit carries the result

    def on_relay(self, circuit: int, value: int, ctx: CircuitNode) -> int:
        if circuit == 0:
            return self.fold_fn(value, ctx.input_value)
        ctx.memory["output"] = value
        return value

    def leader_close(self, circuit: int, value: int, ctx: CircuitNode) -> None:
        if circuit == 0:
            ctx.memory["output"] = value
        # circuit 1: the broadcast came back around; nothing left to do.


class SizeProgram(CircuitProgram):
    """Every node learns the ring size.

    The transport's census already tells the leader ``n`` and its closing
    broadcast disseminates it, so this program only needs to copy the
    learned size into the output slot — zero user circuits would suffice,
    but we broadcast explicitly so the value flows through program
    machinery too (exercising the full path).
    """

    user_circuits = 1

    def leader_open(self, circuit: int, ctx: CircuitNode) -> int:
        assert ctx.ring_size is not None
        ctx.memory["output"] = ctx.ring_size
        return ctx.ring_size

    def on_relay(self, circuit: int, value: int, ctx: CircuitNode) -> int:
        ctx.memory["output"] = value
        return value

    def leader_close(self, circuit: int, value: int, ctx: CircuitNode) -> None:
        pass  # already stored at open time


class GatherProgram(CircuitProgram):
    """Collect every input (in clockwise order from the leader), everywhere.

    Circuit 0 gathers: the value is an encoded sequence that every node
    extends with its own input.  Circuit 1 broadcasts the encoded vector;
    each node decodes it locally.  Unary encoding makes this exponential
    in vector length for large inputs — use small demo inputs, as
    Corollary 5 is about possibility, not bandwidth (see module docs).
    """

    user_circuits = 2

    def leader_open(self, circuit: int, ctx: CircuitNode) -> int:
        if circuit == 0:
            return encode_sequence([ctx.input_value])
        return encode_sequence(ctx.memory["output"])

    def on_relay(self, circuit: int, value: int, ctx: CircuitNode) -> int:
        if circuit == 0:
            gathered = decode_sequence(value)
            gathered.append(ctx.input_value)
            return encode_sequence(gathered)
        ctx.memory["output"] = decode_sequence(value)
        return value

    def leader_close(self, circuit: int, value: int, ctx: CircuitNode) -> None:
        if circuit == 0:
            ctx.memory["output"] = decode_sequence(value)


class MultiFoldProgram(CircuitProgram):
    """Several independent folds in one transport session.

    Runs ``len(folds)`` fold circuits followed by one broadcast circuit
    per fold, so every node ends with the full tuple of results in
    ``memory['output']``.  Demonstrates (and tests) transports with many
    user circuits — e.g. sum, max, and min of the inputs in a single
    quiescently-terminating session.

    Args:
        folds: ``(name, fold_fn)`` pairs; each ``fold_fn`` is a binary
            operator over non-negative ints, applied in clockwise order
            starting from the leader's input.
    """

    def __init__(self, folds: Sequence[tuple]) -> None:
        if not folds:
            raise ValueError("need at least one fold")
        self.folds = list(folds)
        self.user_circuits = 2 * len(self.folds)

    def _kind(self, circuit: int) -> tuple:
        """Map a circuit index to ('fold'|'broadcast', fold_index)."""
        k = len(self.folds)
        if circuit < k:
            return ("fold", circuit)
        return ("broadcast", circuit - k)

    def leader_open(self, circuit: int, ctx: CircuitNode) -> int:
        kind, index = self._kind(circuit)
        if kind == "fold":
            return ctx.input_value
        return ctx.memory["results"][index]

    def on_relay(self, circuit: int, value: int, ctx: CircuitNode) -> int:
        kind, index = self._kind(circuit)
        if kind == "fold":
            return self.folds[index][1](value, ctx.input_value)
        ctx.memory.setdefault("results", {})[index] = value
        self._publish(ctx)
        return value

    def leader_close(self, circuit: int, value: int, ctx: CircuitNode) -> None:
        kind, index = self._kind(circuit)
        if kind == "fold":
            ctx.memory.setdefault("results", {})[index] = value
            self._publish(ctx)

    def _publish(self, ctx: CircuitNode) -> None:
        results = ctx.memory.get("results", {})
        if len(results) == len(self.folds):
            ctx.memory["output"] = {
                name: results[index] for index, (name, _fn) in enumerate(self.folds)
            }


def run_defective_computation(
    inputs: Sequence[int],
    operation: str = "sum",
    leader: int = 0,
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 50_000_000,
) -> TransportOutcome:
    """One-call front door: compute ``operation`` over a defective ring.

    Args:
        inputs: Per-node non-negative inputs in clockwise order.
        operation: ``"sum"``, ``"max"``, ``"min"``, ``"size"``, or
            ``"gather"``.
        leader: Index of the pre-elected root (compose with Theorem 1 via
            :mod:`repro.core.composition` to remove this assumption).
        scheduler: Asynchronous adversary; defaults to global FIFO.
        max_steps: Engine safety bound.
    """
    programs: dict[str, CircuitProgram] = {
        "sum": AllReduceProgram(lambda a, b: a + b),
        "max": AllReduceProgram(max),
        "min": AllReduceProgram(min),
        "size": SizeProgram(),
        "gather": GatherProgram(),
    }
    try:
        program = programs[operation]
    except KeyError:
        raise ValueError(
            f"unknown operation {operation!r}; choose from {sorted(programs)}"
        ) from None
    return run_circuit_transport(
        inputs,
        program,
        leader=leader,
        scheduler=scheduler,
        max_steps=max_steps,
    )
