"""A universal content-oblivious interpreter for ring algorithms.

The circuit transport (:mod:`repro.defective.transport`) computes folds;
this module goes the rest of the way to Corollary 5's "any asynchronous
algorithm": given a root, it simulates **arbitrary** asynchronous
message-passing ring algorithms — nodes that react to content-carrying
messages from either neighbor by sending any number of messages to
either neighbor — over channels that deliver only pulses.

Mechanism: a serialization token.  The root launches a *token* that
perpetually circulates clockwise.  Each token hop transfers a **frame**
— a short sequence of small integers describing the bag of in-transit
simulated messages, each a triple ``(offset, direction, payload)`` where
``offset`` is the number of CW hops left to the destination.  One token
hop at node ``w``:

1. receive the frame; deliver every message with ``offset == 0`` to
   ``w``'s simulated node (running its ``on_start`` on the token's first
   visit);
2. handlers may emit new messages: to the CW neighbor with offset 0, to
   the CCW neighbor with offset ``n - 2`` (both land *after* the next
   hop), tagged with their travel direction;
3. decrement surviving offsets, update the *clean-hop* counter (reset on
   any delivery, emission, or first visit; else +1), pass the frame on.

When the root observes ``clean >= n`` — a full silent circle, which
forces the bag empty (any pending message is delivered, resetting the
counter, within ``n - 1`` hops) — the simulated execution is quiescent:
the root replaces the token with a closing frame carrying ``n``, and all
nodes terminate by position countdown, root last — quiescently.

Wire format.  A frame is a list of values, each transferred by the
transport's primitive (unary ticks on the direct CW channel, one ack per
tick on the direct CCW channel, then a delimiter pulse the long way
around).  Between consecutive values of one frame the receiver sends a
*go* pulse on the direct CCW channel after absorbing the delimiter, so
the next value's ticks can never mingle with the previous value's —
keeping each value's count exact under full asynchrony.  Frames:

* token:   ``[0, n, clean, k, (offset, dirbit, payload) * k]``
* closing: ``[1, n]``

Fidelity: the token order is one *legal* asynchronous schedule of the
simulated algorithm (per-ordered-pair FIFO holds; every message is
delivered within one circle).  Since asynchronous algorithms must be
correct under every schedule, the simulation's outputs are genuine
outputs of the simulated algorithm.

Cost: a value ``m`` costs ``2(m+1) + (n-1) [+1 go]`` pulses, so frames
cost linear-in-payload unary — small payloads recommended, as with all
of Corollary 5's machinery.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, ProtocolViolation
from repro.simulator.engine import Engine, RunResult
from repro.simulator.node import Node, NodeAPI, PORT_ONE, PORT_ZERO
from repro.simulator.ring import build_oriented_ring
from repro.simulator.scheduler import Scheduler

TICK_OUT, TICK_IN = PORT_ONE, PORT_ZERO
CCW_OUT, CCW_IN = PORT_ZERO, PORT_ONE

_TOKEN_TAG = 0
_CLOSE_TAG = 1

CW = "cw"
CCW = "ccw"
_DIR_BITS = {CW: 0, CCW: 1}
_BITS_DIR = {0: CW, 1: CCW}

#: Length of a closing frame: [CLOSE_TAG, n].
_CLOSE_FRAME_LEN = 2


class SimulatedContext:
    """What a simulated node may do while handling an event."""

    def __init__(self, interpreter: "UniversalNode") -> None:
        self._interpreter = interpreter

    def send_cw(self, payload: int) -> None:
        """Send ``payload`` to the clockwise neighbor."""
        self._interpreter._emit(CW, payload)

    def send_ccw(self, payload: int) -> None:
        """Send ``payload`` to the counterclockwise neighbor."""
        self._interpreter._emit(CCW, payload)

    def halt(self, output: Any = None) -> None:
        """Record a final output; later messages are ignored."""
        self._interpreter._halt(output)

    @property
    def is_root(self) -> bool:
        """Whether this simulated node runs at the interpreter's root."""
        return self._interpreter.is_leader


class SimulatedRingNode(abc.ABC):
    """An asynchronous content-carrying ring algorithm, one node's worth.

    Payloads are non-negative integers (pack richer data with
    :func:`repro.defective.encoding.cantor_pair`).
    """

    @abc.abstractmethod
    def on_start(self, ctx: SimulatedContext) -> None:
        """Called once before any delivery to this node."""

    @abc.abstractmethod
    def on_receive(self, ctx: SimulatedContext, direction: str, payload: int) -> None:
        """Called per delivered message.

        Args:
            ctx: Send/halt capabilities.
            direction: ``"cw"`` if the message travelled clockwise (sent
                by this node's CCW neighbor via ``send_cw``), else
                ``"ccw"``.
            payload: The message content.
        """


class _Phase(enum.Enum):
    CENSUS = "census"
    TOKEN = "token"
    CLOSING = "closing"


class UniversalNode(Node):
    """One interpreter node hosting one simulated node."""

    def __init__(self, is_leader: bool, simulated: SimulatedRingNode) -> None:
        super().__init__()
        self.is_leader = is_leader
        self.simulated = simulated
        self.position: Optional[int] = 0 if is_leader else None
        self.ring_size: Optional[int] = None
        self.sim_output: Any = None
        self.sim_halted = False
        self.sim_started = False
        self.hops_processed = 0
        self._phase = _Phase.CENSUS
        # receiving state
        self._receiving = False
        self._ticks = 0
        self._frame: List[int] = []
        # sending state
        self._send_queue: List[int] = []
        self._awaiting_acks = False
        self._awaiting_go = False
        self._acks_needed = 0
        self._acks_seen = 0
        self._closing_speech = False
        self._countdown: Optional[int] = None
        self._outbox: List[Tuple[str, int]] = []

    # -- simulated-node plumbing ----------------------------------------------

    def _emit(self, direction: str, payload: int) -> None:
        if not isinstance(payload, int) or isinstance(payload, bool) or payload < 0:
            raise ConfigurationError(
                f"simulated payloads must be non-negative ints, got {payload!r}"
            )
        self._outbox.append((direction, payload))

    def _halt(self, output: Any) -> None:
        self.sim_halted = True
        self.sim_output = output

    def _run_start(self) -> None:
        if not self.sim_started:
            self.sim_started = True
            self.simulated.on_start(SimulatedContext(self))

    def _deliver_sim(self, direction: str, payload: int) -> None:
        if not self.sim_halted:
            self.simulated.on_receive(SimulatedContext(self), direction, payload)

    # -- frame sending -----------------------------------------------------------

    def _begin_frame(self, api: NodeAPI, values: Sequence[int], closing: bool) -> None:
        self._send_queue = list(values)
        self._closing_speech = closing
        self._send_next_value(api)

    def _send_next_value(self, api: NodeAPI) -> None:
        value = self._send_queue.pop(0)
        self._awaiting_acks = True
        self._awaiting_go = False
        self._acks_needed = value + 1
        self._acks_seen = 0
        for _ in range(value + 1):
            api.send(TICK_OUT)

    @property
    def _sending(self) -> bool:
        return self._awaiting_acks or self._awaiting_go

    # -- event handling ------------------------------------------------------------

    def on_init(self, api: NodeAPI) -> None:
        if self.is_leader:
            self._begin_frame(api, [1], closing=False)  # census opens

    def on_message(self, api: NodeAPI, port: int, content: Any) -> None:
        if port == TICK_IN:
            if self._sending:
                raise ProtocolViolation("tick while sending: serialization broken")
            self._receiving = True
            self._ticks += 1
            api.send(CCW_OUT)  # ack
            return
        # CCW arrivals: acks / go while sending, delimiters otherwise.
        if self._awaiting_acks:
            self._acks_seen += 1
            if self._acks_seen == self._acks_needed:
                api.send(CCW_OUT)  # delimiter, the long way to the receiver
                self._awaiting_acks = False
                if self._send_queue:
                    self._awaiting_go = True  # wait for the receiver's go
                else:
                    self._after_frame_sent(api)
            return
        if self._awaiting_go:
            self._awaiting_go = False
            self._send_next_value(api)
            return
        if self._receiving:
            # The delimiter: the current value's tick count is complete.
            value = self._ticks - 1
            self._ticks = 0
            self._receiving = False
            self._frame.append(value)
            if self._frame_complete():
                frame, self._frame = self._frame, []
                self._process_frame(api, frame)
            else:
                api.send(CCW_OUT)  # go: release the next value's ticks
            return
        # IDLE bystander: forward the delimiter along its CCW way.
        api.send(CCW_OUT)
        if self._countdown is not None:
            self._countdown -= 1
            if self._countdown == 0:
                api.terminate(self.sim_output)

    def _after_frame_sent(self, api: NodeAPI) -> None:
        if not self._closing_speech:
            return
        assert self.ring_size is not None and self.position is not None
        remaining = _CLOSE_FRAME_LEN * (self.ring_size - 1 - self.position)
        if remaining == 0:
            api.terminate(self.sim_output)
        else:
            self._countdown = remaining

    # -- frame parsing & processing ---------------------------------------------------

    def _frame_complete(self) -> bool:
        frame = self._frame
        if self._phase is _Phase.CENSUS:
            return len(frame) == 1
        if frame[0] == _CLOSE_TAG:
            return len(frame) == _CLOSE_FRAME_LEN
        if len(frame) < 4:
            return False
        return len(frame) == 4 + 3 * frame[3]

    def _process_frame(self, api: NodeAPI, frame: List[int]) -> None:
        if self._phase is _Phase.CENSUS:
            self._process_census(api, frame[0])
        elif frame[0] == _CLOSE_TAG:
            self._process_close(api, frame)
        else:
            self._process_token(api, frame)

    def _process_census(self, api: NodeAPI, value: int) -> None:
        self._phase = _Phase.TOKEN
        if self.is_leader:
            self.ring_size = value
            self._run_start()
            self._begin_frame(api, self._compose_token(clean=0, survivors=[]), closing=False)
        else:
            self.position = value
            self._begin_frame(api, [value + 1], closing=False)

    def _process_token(self, api: NodeAPI, frame: List[int]) -> None:
        _tag, n, clean, count = frame[0], frame[1], frame[2], frame[3]
        if len(frame) != 4 + 3 * count:  # pragma: no cover - parser enforces
            raise ProtocolViolation(f"malformed token frame {frame}")
        self.ring_size = n
        triples = [
            (frame[i], frame[i + 1], frame[i + 2])
            for i in range(4, len(frame), 3)
        ]
        self._outbox = []
        self._run_start()
        survivors: List[Tuple[int, int, int]] = []
        delivered = 0
        for offset, dirbit, payload in triples:
            if offset == 0:
                delivered += 1
                self._deliver_sim(_BITS_DIR[dirbit], payload)
            else:
                survivors.append((offset - 1, dirbit, payload))
        self.hops_processed += 1
        if delivered or self._outbox or self.hops_processed == 1:
            clean = 0
        else:
            clean += 1
        if self.is_leader and clean >= n and not survivors and not self._outbox:
            # Simulated execution is quiescent: retire the token, close.
            self._phase = _Phase.CLOSING
            self._begin_frame(api, [_CLOSE_TAG, n], closing=True)
            return
        self._begin_frame(
            api, self._compose_token(clean=clean, survivors=survivors), closing=False
        )

    def _compose_token(
        self, clean: int, survivors: Sequence[Tuple[int, int, int]]
    ) -> List[int]:
        assert self.ring_size is not None
        n = self.ring_size
        bag = list(survivors)
        for direction, payload in self._outbox:
            offset = 0 if direction == CW else n - 2
            bag.append((offset, _DIR_BITS[direction], payload))
        self._outbox = []
        frame: List[int] = [_TOKEN_TAG, n, clean, len(bag)]
        for offset, dirbit, payload in bag:
            frame.extend((offset, dirbit, payload))
        return frame

    def _process_close(self, api: NodeAPI, frame: List[int]) -> None:
        if self.is_leader:
            api.terminate(self.sim_output)
            return
        self.ring_size = frame[1]
        self._phase = _Phase.CLOSING
        self._begin_frame(api, list(frame), closing=True)


@dataclass
class UniversalOutcome:
    """Result of one universal-interpreter run."""

    nodes: List[UniversalNode]
    run: RunResult

    @property
    def outputs(self) -> List[Any]:
        """The simulated nodes' halt outputs, in ring order."""
        return [node.sim_output for node in self.nodes]

    @property
    def total_pulses(self) -> int:
        return self.run.total_sent

    @property
    def token_hops(self) -> int:
        """Total token-processing events across the ring."""
        return sum(node.hops_processed for node in self.nodes)

    @property
    def simulated_nodes(self) -> List[SimulatedRingNode]:
        return [node.simulated for node in self.nodes]


def simulate_ring_algorithm(
    simulated_nodes: Sequence[SimulatedRingNode],
    leader: int = 0,
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 20_000_000,
    strict_quiescence: bool = True,
) -> UniversalOutcome:
    """Simulate an arbitrary content-carrying ring algorithm over pulses.

    Args:
        simulated_nodes: One :class:`SimulatedRingNode` per ring position
            (clockwise order).  At least 3 nodes: the interpreter's
            CW/CCW offset arithmetic needs distinct neighbors.
        leader: The pre-elected root (Theorem 1 provides one; see
            :func:`repro.core.composition.run_composed` for the same
            composition pattern).
        scheduler: Asynchronous adversary for the *pulse* layer.
        max_steps: Engine bound (unary encoding is pulse-hungry).
        strict_quiescence: Raise on any quiescent-termination violation.
    """
    n = len(simulated_nodes)
    if n < 3:
        raise ConfigurationError(
            "the universal interpreter needs n >= 3 (distinct CW/CCW neighbors)"
        )
    if not 0 <= leader < n:
        raise ConfigurationError(f"leader index {leader} out of range")
    nodes = [
        UniversalNode(is_leader=(index == leader), simulated=simulated)
        for index, simulated in enumerate(simulated_nodes)
    ]
    topology = build_oriented_ring(nodes)
    run = Engine(
        topology.network,
        scheduler=scheduler,
        max_steps=max_steps,
        strict_quiescence=strict_quiescence,
    ).run()
    return UniversalOutcome(nodes=nodes, run=run)
