"""The circuit transport: content over contentless pulses, given a root.

This is the reproduction's ring-specific stand-in for the CCGS universal
compiler [8] that Corollary 5 composes with.  Requirements: an *oriented*
ring and a single distinguished node (the root/leader — exactly what the
paper's Theorem 1 provides).  It delivers:

* arbitrary non-negative integer payloads between neighbors, using only
  pulse existence and order;
* global computations structured as *circuits* (a value travelling the
  full CW circle, folded at every hop);
* **quiescent termination with the leader terminating last**, matching
  the composability discipline of the paper's Section 1.1.

Protocol.  At every moment exactly one logical *transmission* is active:
the current speaker ``u`` sends value ``m`` to its CW neighbor ``v`` as

1. ``m + 1`` *data ticks* on the direct CW channel ``u -> v``;
2. ``v`` *acknowledges* every tick with one CCW pulse on the direct
   channel ``v -> u``;
3. after collecting all ``m + 1`` acks, ``u`` emits one *delimiter* pulse
   CCW, which travels the long way around the ring — through every other
   node, each forwarding it — and ends at ``v``;
4. ``v`` absorbs the delimiter and decodes ``m`` as (ticks seen) − 1.
   The receiver then becomes the next speaker.

Why this is safe under full asynchrony (the correctness argument):

* *No premature delimiter*: the delimiter is emitted only after the
  receiver acknowledged every tick, so it is causally later than the
  receiver's complete reception; it cannot "overtake" data.
* *Role disambiguation by port*: ticks travel CW and thus arrive at the
  receiver's ``Port_0``; acks and delimiters travel CCW and arrive at
  ``Port_1``.  A node awaiting acks interprets ``Port_1`` arrivals as
  acks; any other node interprets them as delimiters to forward.  These
  interpretations can never collide because transmissions are serialized:
  the next speaker starts only after absorbing the current delimiter, and
  that delimiter passes through every bystander before reaching it —
  so every bystander is back in its idle state, causally, before any
  pulse of the next transmission can reach it.
* *Serialization*: the speaker schedule is a fixed CW round-robin per
  circuit, opened by the leader, so every node always knows its role.

Circuit structure.  A run consists of ``2 + U`` circuits:

* circuit 0 — *census*: the leader opens with value 1 and every node
  relays value + 1, learning its CW distance from the leader (its
  *position*); the leader closes it holding the ring size ``n``;
* circuits 1..U — the user program's circuits (see
  :class:`CircuitProgram`);
* final circuit — *closing broadcast*: the leader circulates ``n``.
  Knowing ``n`` and its position, every node computes exactly how many
  delimiters remain to forward after its own closing speech and
  terminates right after the last one — quiescently, leader last.

Cost: a transmission of value ``m`` on an ``n``-ring costs
``2(m + 1) + (n - 1)`` pulses (ticks + acks + delimiter hops), so content
costs a constant factor over unary — the regime the paper's Section 1
anticipates for fully defective networks.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.exceptions import ConfigurationError, ProtocolViolation
from repro.simulator.engine import Engine, RunResult
from repro.simulator.node import Node, NodeAPI, PORT_ONE, PORT_ZERO
from repro.topology import oriented_ring
from repro.simulator.scheduler import Scheduler

#: Data ticks travel clockwise: sent from Port_1, arriving at Port_0.
TICK_OUT, TICK_IN = PORT_ONE, PORT_ZERO
#: Acks and delimiters travel counterclockwise: sent from Port_0,
#: arriving at Port_1.
CCW_OUT, CCW_IN = PORT_ZERO, PORT_ONE


class CircuitProgram(abc.ABC):
    """A user computation over the circuit transport.

    The transport guarantees: per user circuit, the leader's
    :meth:`leader_open` value travels clockwise, transformed at every
    non-leader node by :meth:`on_relay`, and comes back to the leader's
    :meth:`leader_close`.  All callbacks receive the node (``ctx``) whose
    ``input_value``, ``position``, ``ring_size``, ``is_leader`` and
    ``memory`` dict they may use.  Programs must be stateless — all
    per-node state lives in ``ctx.memory``.
    """

    #: Number of user circuits (census and closing broadcast are added by
    #: the transport itself).
    user_circuits: int = 1

    @abc.abstractmethod
    def leader_open(self, circuit: int, ctx: "CircuitNode") -> int:
        """Value the leader sends when opening user circuit ``circuit``."""

    @abc.abstractmethod
    def on_relay(self, circuit: int, value: int, ctx: "CircuitNode") -> int:
        """Value a non-leader forwards after receiving ``value``."""

    @abc.abstractmethod
    def leader_close(self, circuit: int, value: int, ctx: "CircuitNode") -> None:
        """Leader absorbs user circuit ``circuit``'s final ``value``."""


class _State(enum.Enum):
    IDLE = "idle"
    RECEIVING = "receiving"
    SENDING = "sending"


class CircuitNode(Node):
    """One node of the circuit transport (oriented ring, leader known).

    Attributes:
        is_leader: Whether this node is the distinguished root.
        input_value: This node's private input to the computation.
        position: CW distance from the leader (learned in the census).
        ring_size: ``n`` (leader learns it in the census, everyone else in
            the closing broadcast).
        memory: Program scratch space and outputs.
    """

    def __init__(
        self, is_leader: bool, input_value: int, program: CircuitProgram
    ) -> None:
        super().__init__()
        if input_value < 0:
            raise ConfigurationError(
                f"transport inputs must be non-negative, got {input_value}"
            )
        self.is_leader = is_leader
        self.input_value = input_value
        self.program = program
        self.position: Optional[int] = 0 if is_leader else None
        self.ring_size: Optional[int] = None
        self.memory: Dict[str, Any] = {}
        self._state = _State.IDLE
        self._ticks_seen = 0
        self._acks_needed = 0
        self._acks_seen = 0
        self._circuits_received = 0
        self._closing_speech = False  # current send belongs to the closing circuit
        self._armed_countdown: Optional[int] = None
        self.values_received: List[int] = []  # forensic log
        self.values_sent: List[int] = []

    # -- helpers --------------------------------------------------------------

    @property
    def _total_circuits(self) -> int:
        return self.program.user_circuits + 2  # census + user + closing

    @property
    def _closing_index(self) -> int:
        return self._total_circuits - 1

    def _begin_send(self, api: NodeAPI, value: int, closing: bool) -> None:
        self._state = _State.SENDING
        self._acks_needed = value + 1
        self._acks_seen = 0
        self._closing_speech = closing
        self.values_sent.append(value)
        for _ in range(value + 1):
            api.send(TICK_OUT)

    # -- event handlers --------------------------------------------------------

    def on_init(self, api: NodeAPI) -> None:
        if self.is_leader:
            # The leader opens the census; everyone else waits.
            self._begin_send(api, 1, closing=False)

    def on_message(self, api: NodeAPI, port: int, content: Any) -> None:
        if port == TICK_IN:
            self._on_tick(api)
        else:
            self._on_ccw(api)

    def _on_tick(self, api: NodeAPI) -> None:
        if self._state is _State.SENDING:
            raise ProtocolViolation(
                "data tick arrived while sending; transmissions must be "
                "serialized — transport invariant broken"
            )
        self._state = _State.RECEIVING
        self._ticks_seen += 1
        api.send(CCW_OUT)  # acknowledge every tick

    def _on_ccw(self, api: NodeAPI) -> None:
        if self._state is _State.SENDING:
            self._acks_seen += 1
            if self._acks_seen == self._acks_needed:
                api.send(CCW_OUT)  # the delimiter, long way to the receiver
                self._state = _State.IDLE
                self._after_send(api)
            return
        if self._state is _State.RECEIVING:
            value = self._ticks_seen - 1
            self._ticks_seen = 0
            self._state = _State.IDLE
            self._finalize_reception(api, value)
            return
        # IDLE: a bystander delimiter — forward it along its CCW way.
        api.send(CCW_OUT)
        if self._armed_countdown is not None:
            self._armed_countdown -= 1
            if self._armed_countdown == 0:
                api.terminate(self.memory.get("output"))

    def _after_send(self, api: NodeAPI) -> None:
        """Post-delimiter bookkeeping; arms the termination countdown."""
        if not self._closing_speech:
            return
        assert self.ring_size is not None and self.position is not None
        remaining = self.ring_size - 1 - self.position
        if remaining == 0:
            api.terminate(self.memory.get("output"))
        else:
            self._armed_countdown = remaining

    def _finalize_reception(self, api: NodeAPI, value: int) -> None:
        circuit = self._circuits_received
        self._circuits_received += 1
        self.values_received.append(value)
        if self.is_leader:
            self._leader_finalize(api, circuit, value)
        else:
            self._follower_finalize(api, circuit, value)

    def _leader_finalize(self, api: NodeAPI, circuit: int, value: int) -> None:
        if circuit == 0:  # census closed: value is the ring size
            self.ring_size = value
        elif circuit < self._closing_index:
            self.program.leader_close(circuit - 1, value, self)
        else:  # closing broadcast returned: the entire program is done
            api.terminate(self.memory.get("output"))
            return
        next_circuit = circuit + 1
        if next_circuit < self._closing_index:
            self._begin_send(
                api, self.program.leader_open(next_circuit - 1, self), closing=False
            )
        else:
            assert self.ring_size is not None
            self._begin_send(api, self.ring_size, closing=True)

    def _follower_finalize(self, api: NodeAPI, circuit: int, value: int) -> None:
        if circuit == 0:  # census: learn my CW distance from the leader
            self.position = value
            self._begin_send(api, value + 1, closing=False)
        elif circuit < self._closing_index:
            relay = self.program.on_relay(circuit - 1, value, self)
            if relay < 0:
                raise ProtocolViolation(
                    f"program produced negative relay value {relay}"
                )
            self._begin_send(api, relay, closing=False)
        else:  # closing broadcast: learn n, relay unchanged, prepare to stop
            self.ring_size = value
            self._begin_send(api, value, closing=True)


@dataclass
class TransportOutcome:
    """Result of one circuit-transport run."""

    nodes: List[CircuitNode]
    run: Optional[RunResult]

    @property
    def outputs(self) -> List[Any]:
        """Per-node terminal outputs (``memory['output']``)."""
        return [node.output for node in self.nodes]

    @property
    def total_pulses(self) -> int:
        """Message complexity of the run (0 for the solo ``n = 1`` case)."""
        return self.run.total_sent if self.run is not None else 0

    @property
    def leader_terminated_last(self) -> bool:
        """Composability discipline: the root must be the final terminator."""
        if self.run is None:
            return True
        order = self.run.termination_order
        leader_index = next(
            index for index, node in enumerate(self.nodes) if node.is_leader
        )
        return bool(order) and order[-1] == leader_index


def run_circuit_transport(
    inputs: Sequence[int],
    program: CircuitProgram,
    leader: int = 0,
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 50_000_000,
    strict_quiescence: bool = True,
) -> TransportOutcome:
    """Run ``program`` over a fully defective oriented ring with a root.

    Args:
        inputs: Per-node private inputs, in clockwise order.
        program: The computation to run.
        leader: Index of the distinguished root node.
        scheduler: Asynchronous adversary; defaults to global FIFO.
        max_steps: Engine safety bound.
        strict_quiescence: Raise on any quiescent-termination violation
            (the transport is supposed to have none).
    """
    n = len(inputs)
    if n < 1:
        raise ConfigurationError("need at least one node")
    if not 0 <= leader < n:
        raise ConfigurationError(f"leader index {leader} out of range for n={n}")
    nodes = [
        CircuitNode(is_leader=(index == leader), input_value=inputs[index], program=program)
        for index in range(n)
    ]
    if n == 1:
        _run_solo(nodes[0])
        return TransportOutcome(nodes=nodes, run=None)
    # Ring order follows the input order; the census assigns positions
    # relative to the leader, so no rotation is needed.  The wiring
    # routes through the shared topology layer, like every builder.
    network = oriented_ring(n).wire(nodes)
    result = Engine(
        network,
        scheduler=scheduler,
        max_steps=max_steps,
        strict_quiescence=strict_quiescence,
    ).run()
    return TransportOutcome(nodes=nodes, run=result)


def _run_solo(node: CircuitNode) -> None:
    """Degenerate ``n = 1`` ring: the leader computes alone, no pulses."""
    node.ring_size = 1
    for circuit in range(node.program.user_circuits):
        value = node.program.leader_open(circuit, node)
        node.program.leader_close(circuit, value, node)
    node._mark_terminated(node.memory.get("output"))


def transport_pulse_cost(n: int, transmitted_values: Sequence[int]) -> int:
    """Exact pulse cost of a transport run from its value schedule.

    Each transmission of value ``m`` costs ``m + 1`` ticks, ``m + 1``
    acks, and ``n - 1`` delimiter hops.  Tests reconstruct the schedule
    from the nodes' ``values_sent`` logs and assert exact equality with
    the engine's pulse count.
    """
    if n < 2:
        return 0
    return sum(2 * (value + 1) + (n - 1) for value in transmitted_values)
