"""Content-oblivious computation over a fully defective ring with a root.

This subpackage is the reproduction's stand-in for the root-based
universal compiler of Censor-Hillel, Cohen, Gelles, and Sela [8], which
Corollary 5 composes with the paper's leader election.  It implements a
*circuit transport*: with an elected leader on an oriented ring, nodes
exchange arbitrary non-negative integers using only contentless pulses,
compute global functions, and terminate quiescently with the leader last.

See :mod:`repro.defective.transport` for the protocol and its correctness
argument, :mod:`repro.defective.encoding` for the value codecs, and
:mod:`repro.defective.simulation` for ready-made programs (sum, max,
size, gather, ...).
"""

from repro.defective.encoding import cantor_pair, cantor_unpair, encode_sequence, decode_sequence
from repro.defective.simulation import (
    AllReduceProgram,
    GatherProgram,
    MultiFoldProgram,
    SizeProgram,
    run_defective_computation,
)
from repro.defective.ring_algorithms import (
    SimBroadcast,
    SimChangRoberts,
    SimConvergecastSum,
    SimPingPong,
)
from repro.defective.transport import (
    CircuitNode,
    CircuitProgram,
    TransportOutcome,
    run_circuit_transport,
    transport_pulse_cost,
)
from repro.defective.universal import (
    SimulatedContext,
    SimulatedRingNode,
    UniversalNode,
    UniversalOutcome,
    simulate_ring_algorithm,
)

__all__ = [
    "cantor_pair",
    "cantor_unpair",
    "encode_sequence",
    "decode_sequence",
    "AllReduceProgram",
    "GatherProgram",
    "MultiFoldProgram",
    "SizeProgram",
    "run_defective_computation",
    "CircuitNode",
    "CircuitProgram",
    "TransportOutcome",
    "run_circuit_transport",
    "transport_pulse_cost",
    "SimBroadcast",
    "SimChangRoberts",
    "SimConvergecastSum",
    "SimPingPong",
    "SimulatedContext",
    "SimulatedRingNode",
    "UniversalNode",
    "UniversalOutcome",
    "simulate_ring_algorithm",
]
