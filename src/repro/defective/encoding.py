"""Value codecs for the unary circuit transport.

The circuit transport carries one non-negative integer per transmission,
encoded in unary (a value ``m`` costs ``m + 1`` data pulses).  Structured
payloads therefore need to be packed into single integers:

* :func:`cantor_pair` / :func:`cantor_unpair` — the classic bijection
  :math:`\\mathbb{N}^2 \\to \\mathbb{N}` (pairs only: iterating it nests
  quadratically and the unary cost explodes).
* :func:`encode_sequence` / :func:`decode_sequence` — variable-length
  sequences of non-negative integers as one integer, via concatenated
  self-delimiting Elias-gamma codes behind a sentinel bit.  The encoded
  value is roughly :math:`2^{\\sum_i (2\\log_2 v_i + 1)}`, i.e. the unary
  transmission cost is about :math:`\\prod_i (v_i+1)^2` — steep, but
  vastly below iterated pairing and fine for the small demonstration
  payloads Corollary 5 is about (*possibility*, not bandwidth).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.exceptions import DecodingError


def _check_natural(value: int, what: str = "value") -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise DecodingError(f"{what} must be a non-negative int, got {value!r}")
    return value


def cantor_pair(a: int, b: int) -> int:
    """Bijectively pack two naturals into one: ``(a+b)(a+b+1)/2 + b``."""
    _check_natural(a, "a")
    _check_natural(b, "b")
    s = a + b
    return s * (s + 1) // 2 + b


def cantor_unpair(z: int) -> Tuple[int, int]:
    """Inverse of :func:`cantor_pair`."""
    _check_natural(z, "z")
    # Largest s with s(s+1)/2 <= z, via integer sqrt to avoid float error.
    s = (math.isqrt(8 * z + 1) - 1) // 2
    t = s * (s + 1) // 2
    b = z - t
    a = s - b
    return a, b


def _gamma_bits(value: int) -> str:
    """Elias-gamma code of a *positive* integer as a bit string."""
    binary = bin(value)[2:]
    return "0" * (len(binary) - 1) + binary


def encode_sequence(values: Sequence[int]) -> int:
    """Pack a sequence of naturals into one natural.

    Each item ``v`` is stored as the Elias-gamma code of ``v + 1`` (gamma
    codes are self-delimiting, so no length prefix is needed); the codes
    are concatenated behind a sentinel ``1`` bit that protects leading
    zeros.  The empty sequence encodes to ``1``.
    """
    bits = "".join(_gamma_bits(_check_natural(value) + 1) for value in values)
    return int("1" + bits, 2)


def decode_sequence(encoded: int) -> List[int]:
    """Inverse of :func:`encode_sequence`."""
    _check_natural(encoded)
    if encoded < 1:
        raise DecodingError(f"{encoded} is not a sequence encoding (needs sentinel)")
    bits = bin(encoded)[3:]  # strip '0b' and the sentinel bit
    values: List[int] = []
    index = 0
    total = len(bits)
    while index < total:
        zeros = 0
        while index < total and bits[index] == "0":
            zeros += 1
            index += 1
        if index + zeros + 1 > total:
            raise DecodingError("truncated gamma code in sequence payload")
        value = int(bits[index : index + zeros + 1], 2)
        index += zeros + 1
        values.append(value - 1)
    return values


def unary_pulse_count(value: int) -> int:
    """Data pulses needed to carry ``value``: ``value + 1`` (zero is sendable)."""
    return _check_natural(value) + 1
