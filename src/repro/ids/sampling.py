"""Algorithm 4: message-free random ID sampling for anonymous rings.

Each node, independently and with no communication:

1. sets :math:`p = 2^{-1/(c+2)}` for the confidence parameter :math:`c>0`;
2. samples ``BitCount`` from the geometric distribution with parameter
   :math:`1-p` (support ``{1, 2, ...}``: the number of Bernoulli(1-p)
   trials up to and including the first success);
3. samples its ID uniformly from :math:`\\{0,1\\}^{BitCount}`.

Lemma 18: with high probability (:math:`1 - O(n^{-c})`) the maximal
sampled ID is **unique** and of size :math:`n^{\\Theta(c)}`–
:math:`n^{O(c^2)}`; therefore running Algorithm 3 with these IDs elects a
single leader and orients the ring w.h.p. (Theorem 3).

One engineering shift, documented per DESIGN.md: the paper's bit-strings
include the value 0, but every election algorithm here requires positive
IDs (a node with ID 0 would violate Algorithm 1's counter invariants).
We therefore use ``ID = 1 + int(bits)``.  The shift is a translation of
the support and changes no distributional claim (uniqueness of the max,
polynomial magnitude, geometric tail).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class GeometricIdSampler:
    """Samples IDs per Algorithm 4 with confidence parameter ``c``.

    Attributes:
        c: The paper's confidence knob; failure probability is
            :math:`O(n^{-c})`.  Must be positive.
    """

    c: float

    def __post_init__(self) -> None:
        if not self.c > 0:
            raise ConfigurationError(f"c must be positive, got {self.c}")

    @property
    def p(self) -> float:
        """The geometric tail parameter :math:`p = 2^{-1/(c+2)}` (line 1)."""
        return 2.0 ** (-1.0 / (self.c + 2.0))

    def sample_bit_count(self, rng: random.Random) -> int:
        """Line 2: ``BitCount ~ Geo(1-p)``, support ``{1, 2, ...}``.

        Implemented by inversion: for ``U`` uniform on (0, 1],
        ``ceil(log(U) / log(p))`` is geometric with success probability
        ``1 - p`` — exact, and much faster than trial-by-trial for the
        heavy-tailed parameters large ``c`` induces.
        """
        u = 1.0 - rng.random()  # uniform on (0, 1]
        count = math.ceil(math.log(u) / math.log(self.p))
        return max(1, count)

    def sample_id(self, rng: random.Random) -> int:
        """Lines 2-3: sample ``BitCount`` uniform bits; return ``1 + value``."""
        bits = self.sample_bit_count(rng)
        return 1 + rng.getrandbits(bits)

    def sample_many(self, n: int, rng: random.Random) -> List[int]:
        """Sample ``n`` independent IDs (one per anonymous node)."""
        if n < 1:
            raise ConfigurationError(f"need at least one node, got n={n}")
        return [self.sample_id(rng) for _ in range(n)]


def sample_ids(
    n: int, c: float = 2.0, rng: Optional[random.Random] = None
) -> List[int]:
    """Convenience wrapper: IDs for ``n`` anonymous nodes at confidence ``c``.

    With ``rng=None`` the sampler draws from the
    :data:`~repro.determinism.STREAM_ID_SAMPLING` counter stream
    (deterministic per call, per process) rather than ``os.urandom``.
    """
    sampler = GeometricIdSampler(c=c)
    if rng is None:
        from repro.determinism import STREAM_ID_SAMPLING, counter_rng

        rng = counter_rng(STREAM_ID_SAMPLING)
    return sampler.sample_many(n, rng)


def max_is_unique(ids: Sequence[int]) -> bool:
    """Does exactly one node hold the maximal ID?  (Lemma 18's event.)"""
    top = max(ids)
    return sum(1 for node_id in ids if node_id == top) == 1


def expected_bit_count(c: float) -> float:
    """Expected ``BitCount`` for confidence ``c``: :math:`1/(1-p)`.

    Useful for calibrating test expectations; the paper notes each ID has
    expected length :math:`\\Theta(c)` while the *maximum* over ``n``
    nodes concentrates around :math:`\\Theta(c^2 \\log n)` bits.
    """
    sampler = GeometricIdSampler(c=c)
    return 1.0 / (1.0 - sampler.p)


def predicted_max_bits(n: int, c: float) -> float:
    """Location of the maximum of ``n`` geometric samples: ``log_{1/p}(n)``.

    The maximum of ``n`` iid Geo(1-p) variables concentrates around
    :math:`\\log_{1/p} n = \\Theta((c+2) \\log n)` bits; the sampled IDs
    are then of magnitude :math:`2^{\\Theta((c+2)\\log n)} = n^{\\Theta(c)}`.
    """
    sampler = GeometricIdSampler(c=c)
    return math.log(max(n, 2)) / math.log(1.0 / sampler.p)
