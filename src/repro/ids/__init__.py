"""Random ID generation for anonymous rings (paper, Section 5)."""

from repro.ids.sampling import (
    GeometricIdSampler,
    expected_bit_count,
    max_is_unique,
    sample_ids,
)

__all__ = [
    "GeometricIdSampler",
    "expected_bit_count",
    "max_is_unique",
    "sample_ids",
]
