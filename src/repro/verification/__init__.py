"""Bounded model checking: verify claims over *all* schedules, not samples.

The paper's theorems are universally quantified over asynchronous
schedules.  Randomized and adversarial scheduler sweeps (the test-suite's
bread and butter) sample that space; this subpackage *exhausts* it for
small instances: an explorer enumerates every reachable global state of
a network under every possible delivery choice, with memoization on
state fingerprints, and certifies that

* every maximal execution ends quiescent,
* all terminal states agree (confluence: same outputs, same counters —
  the schedule-invariance the exact complexity formulas imply), and
* user-supplied invariants hold at every reachable state.

For, e.g., Algorithm 2 on a 3-ring this covers tens of thousands of
schedules in a few seconds — a machine-checked ∀-schedules proof for
that instance.
"""

from repro.verification.explorer import (
    ExplorationLimitExceeded,
    ExplorationResult,
    explore_all_schedules,
)

__all__ = [
    "ExplorationLimitExceeded",
    "ExplorationResult",
    "explore_all_schedules",
]
