"""Bounded model checking: verify claims over *all* schedules, not samples.

The paper's theorems are universally quantified over asynchronous
schedules.  Randomized and adversarial scheduler sweeps (the test-suite's
bread and butter) sample that space; this subpackage *exhausts* it for
small instances, certifying that

* every maximal execution ends quiescent,
* all terminal states agree (confluence: same outputs, same counters —
  the schedule-invariance the exact complexity formulas imply), and
* user-supplied invariants and the executable lemmas of
  :mod:`repro.core.invariants` hold at the explored states.

Two explorers share that contract:

* :func:`explore_all_schedules` — the trusted reference search.  It
  branches on every non-empty channel at every state, so it visits every
  reachable global state and certifies invariants over all of them.
* :func:`explore_reduced` — the partial-order-reduced, counting-state
  search.  It expands one persistent set of commuting deliveries per
  state where soundness allows, visiting one interleaving per
  Mazurkiewicz trace instead of all of them, and reaches instances the
  reference search cannot (see ``docs/VERIFICATION.md`` for the
  soundness argument and what the reduction does / does not preserve).

``repro verify`` on the command line drives both and reports states
explored, the reduction factor, confluence, and the exact-message-count
certification (e.g. Theorem 1's :math:`n(2\\cdot\\mathsf{ID}_{max}+1)`).
"""

from repro.verification.common import (
    EngineView,
    FaultProfile,
    VisitedStore,
    build_fault_profile,
    freeze_value,
    node_fingerprint,
    node_state_dict,
    pack_frozen,
    packed_fingerprint,
)
from repro.verification.explorer import (
    ExplorationLimitExceeded,
    ExplorationResult,
    explore_all_schedules,
)
from repro.verification.reduced import (
    REDUCTION_MODES,
    ReducedExplorationResult,
    explore_reduced,
)
from repro.verification.symmetry import GroupElement, RingSymmetry

__all__ = [
    "EngineView",
    "ExplorationLimitExceeded",
    "ExplorationResult",
    "FaultProfile",
    "GroupElement",
    "REDUCTION_MODES",
    "ReducedExplorationResult",
    "RingSymmetry",
    "VisitedStore",
    "build_fault_profile",
    "explore_all_schedules",
    "explore_reduced",
    "freeze_value",
    "node_fingerprint",
    "node_state_dict",
    "pack_frozen",
    "packed_fingerprint",
]
