"""Partial-order-reduced + symmetry-reduced model checking of the
schedule space.

The unreduced explorer (:mod:`repro.verification.explorer`) expands one
successor per non-empty channel at every state, which makes the visited
state count explode combinatorially: schedules that differ only in the
order of *commuting* deliveries drag the search through every
intermediate state of every interleaving.  This module stacks three
reductions the content-oblivious model admits, selectable via the
``reduction`` argument (``"ample"``, ``"sleep"``, ``"symmetry"``,
``"full"`` = sleep + symmetry):

1. **Counting states** (all modes).  A fully defective channel carries
   contentless pulses, so its queue is fully described by its pulse
   *count*.  State fingerprints are additionally lowered to compact
   packed bytes (:func:`repro.core.schema.pack_frozen`), and the visited
   set can spill to disk (:class:`~repro.verification.common.VisitedStore`)
   so frontier budgets fit in memory.

2. **Persistent/ample sets** (all modes).  Delivering the head of
   channel ``c`` mutates only ``c``'s queue (a pop), the receiver's
   local state, and the tails of the receiver's outgoing channels
   (appends); deliveries into distinct nodes commute.  At each state the
   search expands only the enabled deliveries into one receiver when
   that set is provably persistent (:func:`_persistent`); otherwise it
   expands in full.  The reduction degrades, never lies.

3. **Sleep sets** (``sleep``/``full``).  The ample computation prunes per
   *state*; sleep sets prune per *path*: after expanding commuting
   siblings ``t_1 .. t_k`` from a state, the successor via ``t_i``
   inherits a sleep set containing the earlier independent siblings, so
   the search stops re-executing the other orders of the same
   Mazurkiewicz trace.  This is the classical state-matching variant
   (Godefroid): the visited store remembers, per state, the sleep set it
   was last explored with; re-reaching a state with a sleep set that is
   not a superset re-explores it with the intersection.  Sleep sets
   mostly cut *transitions* — each executed transition is a deep copy,
   so they cut exactly the dominant cost.

4. **Symmetry** (``symmetry``/``full``).  Visited-set keys are
   canonicalized under the ring's automorphism group
   (:class:`~repro.verification.symmetry.RingSymmetry`): rotations, plus
   orientation-duals when ``include_duals`` is set.  One exploration
   then certifies the whole *orbit of instances* — all ``n`` rotations
   (``2n`` with duals) of the ID-and-flip assignment — reported as
   ``orbit_factor``/``instances_certified``.  With duplicate IDs the
   group also merges genuinely distinct states of the one instance.
   Sleep/stored-sleep labels are translated through the canonicalizing
   group element so both reductions compose.  Unsound under fault
   profiles (drops are per-channel, breaking the symmetry), so that
   combination is rejected with
   :class:`~repro.exceptions.ConfigurationError`.

What the reduction preserves (``docs/VERIFICATION.md`` has the proofs):

* every terminal (quiescent) state of the full schedule space — up to
  the group action in symmetry modes, which is exact (orbit factor
  aside) whenever IDs are unique — hence the confluence verdict,
  elected leader, and exact per-terminal message counts;
* the existence of quiescent-termination violations (their *count* may
  shrink: fewer redundant interleavings witness the same violation);
* invariant hooks are evaluated at every **visited** state — a subset of
  all reachable states.  In symmetry modes each hook battery is
  additionally re-run under one non-identity group element per visited
  representative (``spot_checks``), certifying the lemmas at states of
  the *other* orbit instances too.  For an all-states invariant
  certificate, run the unreduced explorer.

The differential battery in ``tests/test_verification_differential.py``
and the four-way matrix in ``tests/test_reduction_matrix.py`` hold every
mode and the live engine to identical terminal verdicts.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.exceptions import ConfigurationError, ProtocolViolation
from repro.simulator.network import Network
from repro.simulator.node import NodeAPI, check_port
from repro.core.schema import (
    freeze_value,
    node_fingerprint,
    node_state_dict,
    pack_frozen,
)
from repro.verification.common import (
    EngineView,
    VisitedStore,
    build_fault_profile,
    run_state_checks,
)
from repro.verification.explorer import ExplorationLimitExceeded, StateHook
from repro.verification.symmetry import RingSymmetry

#: Recognized ``reduction`` arguments, weakest to strongest.
REDUCTION_MODES = ("ample", "sleep", "symmetry", "full")

_EMPTY: FrozenSet[int] = frozenset()


class _Static:
    """Immutable per-exploration context shared by every explored state."""

    __slots__ = (
        "n_nodes",
        "n_channels",
        "src_node",
        "src_port",
        "dst_node",
        "dst_port",
        "contentless",
        "silent",
        "in_channels",
        "out_channels",
        "out_channel",
        "num_ports",
        "content_out",
        "fault_profile",
    )

    def __init__(self, network: Network) -> None:
        channels = network.channels
        self.n_nodes = len(network.nodes)
        self.n_channels = len(channels)
        self.src_node = [channel.src_node for channel in channels]
        self.src_port = [channel.src_port for channel in channels]
        self.dst_node = [channel.dst_node for channel in channels]
        self.dst_port = [channel.dst_port for channel in channels]
        # Defective channels erase content, so a pulse count is the whole
        # queue state (counting representation); content-carrying channels
        # keep real queues.
        self.contentless = [channel.defective for channel in channels]
        self.silent = [
            channel.src_port in network.nodes[channel.src_node].SILENT_SEND_PORTS
            for channel in channels
        ]
        self.in_channels: List[List[int]] = [[] for _ in range(self.n_nodes)]
        self.out_channels: List[List[int]] = [[] for _ in range(self.n_nodes)]
        for channel in channels:
            self.in_channels[channel.dst_node].append(channel.channel_id)
            self.out_channels[channel.src_node].append(channel.channel_id)
        self.out_channel = dict(network.out_channel)
        # Per-node port counts for send-path validation (>= 2 keeps ring
        # diagnostics stable; general topologies extend per degree).
        self.num_ports = [2] * self.n_nodes
        for (node, port) in self.out_channel:
            self.num_ports[node] = max(self.num_ports[node], port + 1)
        for channel in channels:
            self.num_ports[channel.dst_node] = max(
                self.num_ports[channel.dst_node], channel.dst_port + 1
            )
        # Content-carrying out-channels per node: two deliveries into
        # distinct receivers still fail to commute if both receivers can
        # append to the same *content* queue (append order is observable
        # there; on counting queues it is not).
        self.content_out: List[FrozenSet[int]] = [
            frozenset(
                cid for cid in self.out_channels[v] if not self.contentless[cid]
            )
            for v in range(self.n_nodes)
        ]
        self.fault_profile = build_fault_profile(network)


class _RState:
    """One explored global state in counting representation."""

    __slots__ = ("nodes", "queues", "fault_idx", "total_sent")

    def __init__(self, network: Network, static: _Static) -> None:
        self.nodes = network.nodes
        self.queues: List[Any] = [
            0 if static.contentless[cid] else [] for cid in range(static.n_channels)
        ]
        self.fault_idx = (
            [0] * static.n_channels if static.fault_profile is not None else None
        )
        self.total_sent = 0

    def clone(self) -> "_RState":
        new = _RState.__new__(_RState)
        new.nodes = copy.deepcopy(self.nodes)
        new.queues = [
            queue if isinstance(queue, int) else list(queue) for queue in self.queues
        ]
        new.fault_idx = None if self.fault_idx is None else list(self.fault_idx)
        new.total_sent = self.total_sent
        return new

    def qlen(self, channel_id: int) -> int:
        queue = self.queues[channel_id]
        return queue if isinstance(queue, int) else len(queue)

    def pending_messages(self) -> int:
        return sum(
            queue if isinstance(queue, int) else len(queue) for queue in self.queues
        )

    def enabled(self) -> List[int]:
        return [cid for cid in range(len(self.queues)) if self.qlen(cid)]

    def packed_components(self) -> Tuple[List[bytes], List[bytes]]:
        """Per-node and per-channel packed byte components of this state.

        Each component is self-delimiting and the counts are fixed per
        exploration, so any concatenation of them is injective — the raw
        material for both the plain visited key and the symmetry-canonical
        key (which permutes the components before joining).
        """
        node_packed = [
            pack_frozen(freeze_value(node_state_dict(node))) for node in self.nodes
        ]
        queue_packed = [
            pack_frozen(
                queue
                if isinstance(queue, int)
                else tuple(freeze_value(item) for item in queue)
            )
            for queue in self.queues
        ]
        return node_packed, queue_packed


class _ReducedAPI(NodeAPI):
    """Capability object handed to nodes while exploring a _RState."""

    __slots__ = ("_static", "_state", "_node_index")

    def __init__(self, static: _Static, state: _RState, node_index: int) -> None:
        self._static = static
        self._state = state
        self._node_index = node_index

    def send(self, port: int, content: Any = None) -> None:
        static, state, sender = self._static, self._state, self._node_index
        node = state.nodes[sender]
        if node.terminated:
            raise ProtocolViolation(
                f"node {sender} attempted to send after terminating"
            )
        if check_port(port, static.num_ports[sender]) in node.SILENT_SEND_PORTS:
            raise ProtocolViolation(
                f"node {sender} sent on port {port}, which its class "
                f"{type(node).__qualname__} declares silent (SILENT_SEND_PORTS)"
            )
        channel_id = static.out_channel[(sender, port)]
        copies = 1
        if static.fault_profile is not None:
            copies = static.fault_profile.copies(
                channel_id, state.fault_idx[channel_id]
            )
            state.fault_idx[channel_id] += 1
        if copies:
            if static.contentless[channel_id]:
                state.queues[channel_id] += copies
            else:
                for _ in range(copies):
                    state.queues[channel_id].append(content)
        state.total_sent += 1

    def terminate(self, output: Any = None) -> None:
        self._state.nodes[self._node_index]._mark_terminated(output)


def _deliver(static: _Static, state: _RState, channel_id: int) -> bool:
    """Deliver ``channel_id``'s FIFO head; True on a quiescence violation."""
    queue = state.queues[channel_id]
    if isinstance(queue, int):
        state.queues[channel_id] = queue - 1
        content = None
    else:
        content = queue.pop(0)
    receiver_index = static.dst_node[channel_id]
    receiver = state.nodes[receiver_index]
    if receiver.terminated:
        return True
    receiver.on_message(
        _ReducedAPI(static, state, receiver_index),
        static.dst_port[channel_id],
        content,
    )
    return False


def _independent(static: _Static, a: int, b: int) -> bool:
    """Do deliveries ``a`` and ``b`` commute from every state enabling both?

    Distinct receivers suffice on counting queues: each delivery pops its
    own channel, mutates only its own receiver, and *appends* to the
    receiver's out-channels — and on a counting queue (or under a fault
    profile, whose per-send copies sum identically in either order) the
    append order is unobservable.  If both receivers can append into the
    same content-carrying queue, order becomes observable and the pair is
    conservatively declared dependent.
    """
    ra, rb = static.dst_node[a], static.dst_node[b]
    if ra == rb:
        return False
    return not (static.content_out[ra] & static.content_out[rb])


def _reach(static: _Static, state: _RState, frozen: int) -> Set[int]:
    """Nodes that can process ≥1 delivery while node ``frozen`` never does.

    Sound over-approximation: seed with every non-terminated node (other
    than ``frozen``) holding a deliverable message, then propagate along
    non-silent outgoing channels — a node that acts may send, enabling a
    delivery at the channel's destination.  Anything outside the result
    provably stays inert in every execution avoiding ``frozen``.
    """
    nodes = state.nodes
    reach: Set[int] = set()
    stack: List[int] = []
    for x in range(static.n_nodes):
        if x == frozen or nodes[x].terminated:
            continue
        if any(state.qlen(cid) for cid in static.in_channels[x]):
            reach.add(x)
            stack.append(x)
    while stack:
        actor = stack.pop()
        for cid in static.out_channels[actor]:
            if static.silent[cid]:
                continue
            dst = static.dst_node[cid]
            if dst == frozen or dst in reach or nodes[dst].terminated:
                continue
            reach.add(dst)
            stack.append(dst)
    return reach


def _persistent(static: _Static, state: _RState, receiver: int) -> bool:
    """Is "all enabled deliveries into ``receiver``" a persistent set?

    It is unless some *other* node could send into one of ``receiver``'s
    currently-empty in-channels without ``receiver`` ever acting: then an
    execution avoiding the set could create a new, dependent delivery.
    Non-empty in-channels need no check — their heads are already in the
    set, and FIFO pins everything behind the heads.
    """
    dangerous: List[int] = []
    for cid in static.in_channels[receiver]:
        if state.qlen(cid):
            continue
        src = static.src_node[cid]
        if src == receiver:  # self-loop: the frozen receiver never sends
            continue
        if static.silent[cid] or state.nodes[src].terminated:
            continue
        dangerous.append(src)
    if not dangerous:
        return True
    reach = _reach(static, state, receiver)
    return not any(src in reach for src in dangerous)


def _ample(static: _Static, state: _RState, enabled: List[int]) -> List[int]:
    """The subset of ``enabled`` deliveries to expand at this state.

    Deterministic in the state (required for the memoized search to be a
    well-defined reduced graph): candidate receivers are tried smallest
    delivery-group first, node index breaking ties; the first persistent
    group wins, and full expansion is the fallback.
    """
    by_receiver: Dict[int, List[int]] = {}
    for cid in enabled:
        by_receiver.setdefault(static.dst_node[cid], []).append(cid)
    if len(by_receiver) == 1:
        return enabled  # single receiver: dependent set, no choice to prune
    for receiver in sorted(
        by_receiver, key=lambda node: (len(by_receiver[node]), node)
    ):
        if _persistent(static, state, receiver):
            return by_receiver[receiver]
    return enabled


@dataclass
class ReducedExplorationResult:
    """Certificate produced by one reduced exploration.

    Attributes:
        states_explored: Distinct states visited by the reduced search
            (distinct *canonical* states in symmetry modes).
        transitions: Deliveries executed (reduced-graph edges examined;
            sleep-mode revisits may re-execute an edge).
        enabled_transitions: Sum over expanded states of enabled
            deliveries — what the unreduced search would have branched
            on; ``transitions / enabled_transitions`` quantifies the
            per-state pruning.
        ample_states: States where a proper persistent subset was
            expanded.
        full_expansion_states: States where no receiver's delivery set
            was provably persistent and all branches were taken.
        terminal_node_fingerprints: Distinct quiescent end states (node
            component only; all queues are empty at quiescence).  In
            symmetry modes: one representative per terminal orbit.
        terminal_outputs: Per-node outputs of each distinct terminal
            state (parallel to ``terminal_node_fingerprints``).
        terminal_total_sent: Messages sent on the way into each distinct
            terminal state — the certified exact message complexity.
        quiescence_violations: Executed deliveries that reached a
            terminated node.  Preserved existentially: zero here means
            zero in the full space; a positive count may undercount the
            full space's redundant witnesses.
        max_in_flight: Largest in-flight pulse total over visited states.
        reduction: The reduction mode this certificate was produced
            under (``"ample"``, ``"sleep"``, ``"symmetry"``, ``"full"``).
        include_duals: Whether orientation-duals were in the symmetry
            group.
        sleep_skipped: Ample-set transitions skipped because they were
            asleep (covered by a commuting sibling order).
        orbit_factor: Distinct group images of the initial state — the
            number of instances this run certifies (1 without symmetry).
        instances_certified: Alias of ``orbit_factor`` in spirit: how
            many concrete (ID, flip) assignments the certificate covers.
        spot_checks: Invariant-battery evaluations performed on a
            non-identity group image of a visited representative.
        visited_bytes: Peak estimated footprint of the visited store.
        spilled: Whether the visited store spilled to disk.
        canonical_terminal_fingerprints: Canonical packed form of each
            distinct terminal state (symmetry modes only) — the orbit-
            level terminal certificate.
    """

    states_explored: int
    transitions: int
    enabled_transitions: int
    ample_states: int
    full_expansion_states: int
    terminal_node_fingerprints: List[Tuple]
    terminal_outputs: List[Tuple]
    terminal_total_sent: List[int]
    quiescence_violations: int
    max_in_flight: int
    reduction: str = "ample"
    include_duals: bool = False
    sleep_skipped: int = 0
    orbit_factor: int = 1
    instances_certified: int = 1
    spot_checks: int = 0
    visited_bytes: int = 0
    spilled: bool = False
    canonical_terminal_fingerprints: List[bytes] = field(default_factory=list)

    @property
    def confluent(self) -> bool:
        """All schedules funnel into one terminal state."""
        return len(self.terminal_node_fingerprints) == 1

    @property
    def branch_reduction(self) -> float:
        """Enabled-to-expanded delivery ratio (≥ 1; higher = more pruning)."""
        if not self.transitions:
            return 1.0
        return self.enabled_transitions / self.transitions

    def state_reduction_vs(self, unreduced_states: int) -> float:
        """Certified-work reduction against an unreduced state count.

        Counts orbit breadth: one run certifies ``orbit_factor``
        instances, each of which would cost ``unreduced_states``
        unreduced states to certify individually.
        """
        if not self.states_explored:
            return float(self.orbit_factor)
        return self.orbit_factor * unreduced_states / self.states_explored

    def summary(self) -> Dict[str, Any]:
        """The telemetry dict the CLI and the bench both report."""
        return {
            "reduction": self.reduction,
            "include_duals": self.include_duals,
            "states": self.states_explored,
            "transitions": self.transitions,
            "enabled_transitions": self.enabled_transitions,
            "branch_reduction": round(self.branch_reduction, 3),
            "ample_states": self.ample_states,
            "full_expansion_states": self.full_expansion_states,
            "sleep_skipped": self.sleep_skipped,
            "orbit_factor": self.orbit_factor,
            "instances_certified": self.instances_certified,
            "spot_checks": self.spot_checks,
            "terminal_states": len(self.terminal_node_fingerprints),
            "confluent": self.confluent,
            "quiescence_violations": self.quiescence_violations,
            "max_in_flight": self.max_in_flight,
            "visited_bytes": self.visited_bytes,
            "spilled": self.spilled,
        }


def explore_reduced(
    network_factory: Callable[[], Network],
    invariant: Optional[Callable[[Sequence[Any]], None]] = None,
    max_states: int = 2_000_000,
    invariant_hooks: Sequence[StateHook] = (),
    *,
    reduction: str = "ample",
    include_duals: bool = False,
    spill_dir: Optional[str] = None,
    spill_threshold: Optional[int] = None,
) -> ReducedExplorationResult:
    """Explore the schedule space under the selected reduction stack.

    Same positional calling convention as
    :func:`~repro.verification.explorer.explore_all_schedules`; the
    result certifies the identical terminal-state facts while visiting a
    fraction of the states (reduction telemetry included).

    Args:
        network_factory: Builds a *fresh* network (fresh node objects).
        invariant: Optional callback receiving the node list at every
            visited state; raise ``AssertionError`` to abort.  Evaluated
            at representatives only (it may be instance-specific, e.g.
            name concrete IDs), never spot-checked under the group.
        max_states: Budget on distinct visited states before raising
            :class:`~repro.verification.explorer.ExplorationLimitExceeded`.
        invariant_hooks: Engine-style hooks (e.g.
            :data:`repro.core.invariants.ALGORITHM2_HOOKS`) evaluated at
            every visited state via an
            :class:`~repro.verification.common.EngineView` — and, in
            symmetry modes, additionally at one non-identity group image
            per visited state (the ``spot_checks`` counter).
        reduction: One of :data:`REDUCTION_MODES`.  ``"ample"`` is the
            persistent-set search; ``"sleep"`` stacks sleep sets on it;
            ``"symmetry"`` canonicalizes visited keys under the ring
            automorphisms; ``"full"`` stacks all three.
        include_duals: Add orientation-duals (reflections) to the
            symmetry group.  Sound for the non-oriented setting; leave
            False for chirality-asymmetric oriented algorithms.
        spill_dir: Directory for the disk-spilled visited set (a private
            temp dir by default).
        spill_threshold: Estimated visited-set bytes above which the
            store spills to disk; None (default) never spills.

    Returns:
        A :class:`ReducedExplorationResult`.
    """
    if reduction not in REDUCTION_MODES:
        raise ConfigurationError(
            f"unknown reduction {reduction!r}; expected one of {REDUCTION_MODES}"
        )
    use_sleep = reduction in ("sleep", "full")
    use_sym = reduction in ("symmetry", "full")

    network = network_factory()
    static = _Static(network)
    sym: Optional[RingSymmetry] = None
    if use_sym:
        if static.fault_profile is not None:
            raise ConfigurationError(
                "symmetry reduction is unsound under a fault profile "
                "(drops/duplicates are per-channel and break the ring "
                "automorphisms); use reduction='sleep' for faulted networks"
            )
        sym = RingSymmetry.from_network(network, include_duals=include_duals)

    root = _RState(network, static)
    for index, node in enumerate(root.nodes):
        node.on_init(_ReducedAPI(static, root, index))

    def state_key(state: _RState) -> Tuple[bytes, int, bool]:
        """Visited key, canonicalizing element index, label ambiguity.

        The ambiguity flag is True when the state has a nontrivial
        stabilizer (duplicate-ID instances only): canonical channel
        labels are then ill-defined and the sleep layer must not rely
        on them.
        """
        node_packed, queue_packed = state.packed_components()
        if sym is not None:
            return sym.canonical(node_packed, queue_packed)
        key = b"".join(node_packed) + b"".join(queue_packed)
        if state.fault_idx is not None:
            key += pack_frozen(tuple(state.fault_idx))
        return key, 0, False

    spot_element = 1 if (sym is not None and sym.order > 1) else None
    spot_checks = 0

    def check(state: _RState) -> None:
        nonlocal spot_checks
        pending = state.pending_messages()
        run_state_checks(state.nodes, pending, invariant, invariant_hooks)
        if spot_element is not None and invariant_hooks:
            # Satellite certificate: the hook battery also holds at the
            # image of this representative inside another orbit instance.
            view = EngineView(sym.permute_nodes(spot_element, state.nodes), pending)
            for hook in invariant_hooks:
                hook(view)
            spot_checks += 1

    store = VisitedStore(
        track_payload=use_sleep,
        spill_dir=spill_dir,
        spill_threshold=spill_threshold,
    )
    try:
        root_key, root_elem, _root_ambiguous = state_key(root)
        if use_sleep:
            store.set_payload(root_key, _EMPTY)
        else:
            store.add(root_key)
        check(root)

        orbit_factor = 1
        if sym is not None:
            orbit_factor = sym.orbit_factor(*root.packed_components())

        terminal_node_fps: List[Tuple] = []
        terminal_outputs: List[Tuple] = []
        terminal_total_sent: List[int] = []
        canonical_terminals: List[bytes] = []
        transitions = 0
        enabled_transitions = 0
        ample_states = 0
        full_expansions = 0
        violations = 0
        sleep_skipped = 0
        max_in_flight = root.pending_messages()

        # Stack entries: (state, sleep set in this representative's actual
        # channel labels, canonicalizing element of the state's key, fresh).
        # ``fresh`` is True exactly once per distinct key (its first push),
        # so per-state statistics are counted exactly once.
        stack: List[Tuple[_RState, FrozenSet[int], int, bool]] = [
            (root, _EMPTY, root_elem, True)
        ]
        while stack:
            state, sleep, elem, fresh = stack.pop()
            enabled = state.enabled()
            if not enabled:
                fp = node_fingerprint(state.nodes)
                if fp not in terminal_node_fps:
                    terminal_node_fps.append(fp)
                    terminal_outputs.append(
                        tuple(
                            freeze_value(getattr(node, "output", None))
                            for node in state.nodes
                        )
                    )
                    terminal_total_sent.append(state.total_sent)
                    if sym is not None:
                        canonical_terminals.append(state_key(state)[0])
                continue
            ample = _ample(static, state, enabled)
            if fresh:
                enabled_transitions += len(enabled)
                if len(ample) < len(enabled):
                    ample_states += 1
                else:
                    full_expansions += 1
            taken: List[int] = []
            for channel_id in ample:
                if channel_id in sleep:
                    sleep_skipped += 1
                    continue
                successor = state.clone()
                transitions += 1
                if _deliver(static, successor, channel_id):
                    violations += 1
                if use_sleep:
                    child_sleep = frozenset(
                        x
                        for x in sleep.union(taken)
                        if _independent(static, x, channel_id)
                    )
                    taken.append(channel_id)
                else:
                    child_sleep = _EMPTY
                key, child_elem, ambiguous = state_key(successor)
                if use_sleep:
                    if ambiguous:
                        # Nontrivial stabilizer: canonical channel labels
                        # are ill-defined, so take no sleep credit here
                        # and record full coverage — always sound.
                        child_sleep = _EMPTY
                        stored_sleep = _EMPTY
                    elif sym is not None:
                        stored_sleep = frozenset(
                            sym.to_canonical_channel(child_elem, cid)
                            for cid in child_sleep
                        )
                    else:
                        stored_sleep = child_sleep
                    previous = store.get_payload(key)
                    if previous is None:
                        store.set_payload(key, stored_sleep)
                    elif previous <= stored_sleep:
                        continue  # already explored at least this much
                    else:
                        # Reached with a strictly smaller sleep set:
                        # re-explore with the intersection (classical
                        # state-matching sleep sets).
                        merged = previous & stored_sleep
                        store.set_payload(key, merged)
                        if sym is not None:
                            merged = frozenset(
                                sym.elements[child_elem].chan_src[label]
                                for label in merged
                            )
                        stack.append((successor, merged, child_elem, False))
                        continue
                else:
                    if not store.add(key):
                        continue
                if len(store) > max_states:
                    raise ExplorationLimitExceeded(
                        f"more than {max_states} reachable states; "
                        "shrink the instance or raise max_states"
                    )
                check(successor)
                max_in_flight = max(max_in_flight, successor.pending_messages())
                stack.append((successor, child_sleep, child_elem, True))

        return ReducedExplorationResult(
            states_explored=len(store),
            transitions=transitions,
            enabled_transitions=enabled_transitions,
            ample_states=ample_states,
            full_expansion_states=full_expansions,
            terminal_node_fingerprints=terminal_node_fps,
            terminal_outputs=terminal_outputs,
            terminal_total_sent=terminal_total_sent,
            quiescence_violations=violations,
            max_in_flight=max_in_flight,
            reduction=reduction,
            include_duals=bool(sym is not None and include_duals),
            sleep_skipped=sleep_skipped,
            orbit_factor=orbit_factor,
            instances_certified=orbit_factor,
            spot_checks=spot_checks,
            visited_bytes=store.peak_bytes,
            spilled=store.spilled,
            canonical_terminal_fingerprints=canonical_terminals,
        )
    finally:
        store.close()
