"""Partial-order-reduced model checking of the schedule space.

The unreduced explorer (:mod:`repro.verification.explorer`) expands one
successor per non-empty channel at every state, which makes the visited
state count explode combinatorially: schedules that differ only in the
order of *commuting* deliveries drag the search through every
intermediate state of every interleaving.  This module exploits the two
structural facts the content-oblivious model hands us:

1. **Counting states.**  A fully defective channel carries contentless
   pulses, so its queue is fully described by its pulse *count* (the same
   observation behind the engine's counting-mode channels in
   :mod:`repro.simulator.channel`).  Explored states store an ``int`` per
   defective channel instead of a queue object, which makes state
   copying, hashing, and memoization cheap.  Send sequence numbers are
   bookkeeping the model cannot observe and are excluded from
   fingerprints.

2. **Partial-order reduction.**  Delivering the head of channel ``c``
   mutates only: ``c``'s queue (a pop), the receiver's local state, and
   the tails of the receiver's outgoing channels (appends).  Two enabled
   deliveries into *distinct* nodes therefore commute — executing them in
   either order reaches the identical global state — while successive
   deliveries from one FIFO channel are a fixed sequence.  At each state
   the search tries to expand only a *persistent set*: the enabled
   deliveries into one receiver ``v``, valid whenever no other node could
   feed one of ``v``'s currently-empty in-channels before ``v`` acts
   (checked by :func:`_reach`, a sound reachability over-approximation,
   plus the statically declared
   :attr:`~repro.simulator.node.Node.SILENT_SEND_PORTS`).  When no
   receiver qualifies, the state is expanded in full — the reduction
   degrades, never lies.

What the reduction preserves (``docs/VERIFICATION.md`` has the proofs):

* every terminal (quiescent) state of the full schedule space, hence the
  confluence verdict, elected leader, and exact per-terminal message
  counts;
* the existence of quiescent-termination violations (their *count* may
  shrink: fewer redundant interleavings witness the same violation);
* invariant hooks are evaluated at every **visited** state — a subset of
  all reachable states.  For an all-states invariant certificate, run
  the unreduced explorer.

The differential battery in ``tests/test_verification_differential.py``
holds both explorers and the live engine (per-pulse and batched) to
identical terminal verdicts.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.exceptions import ProtocolViolation
from repro.simulator.network import Network
from repro.simulator.node import NodeAPI, check_port
from repro.core.schema import freeze_value, node_fingerprint
from repro.verification.common import EngineView, build_fault_profile
from repro.verification.explorer import ExplorationLimitExceeded, StateHook


class _Static:
    """Immutable per-exploration context shared by every explored state."""

    __slots__ = (
        "n_nodes",
        "n_channels",
        "src_node",
        "src_port",
        "dst_node",
        "dst_port",
        "contentless",
        "silent",
        "in_channels",
        "out_channels",
        "out_channel",
        "fault_profile",
    )

    def __init__(self, network: Network) -> None:
        channels = network.channels
        self.n_nodes = len(network.nodes)
        self.n_channels = len(channels)
        self.src_node = [channel.src_node for channel in channels]
        self.src_port = [channel.src_port for channel in channels]
        self.dst_node = [channel.dst_node for channel in channels]
        self.dst_port = [channel.dst_port for channel in channels]
        # Defective channels erase content, so a pulse count is the whole
        # queue state (counting representation); content-carrying channels
        # keep real queues.
        self.contentless = [channel.defective for channel in channels]
        self.silent = [
            channel.src_port in network.nodes[channel.src_node].SILENT_SEND_PORTS
            for channel in channels
        ]
        self.in_channels: List[List[int]] = [[] for _ in range(self.n_nodes)]
        self.out_channels: List[List[int]] = [[] for _ in range(self.n_nodes)]
        for channel in channels:
            self.in_channels[channel.dst_node].append(channel.channel_id)
            self.out_channels[channel.src_node].append(channel.channel_id)
        self.out_channel = dict(network.out_channel)
        self.fault_profile = build_fault_profile(network)


class _RState:
    """One explored global state in counting representation."""

    __slots__ = ("nodes", "queues", "fault_idx", "total_sent")

    def __init__(self, network: Network, static: _Static) -> None:
        self.nodes = network.nodes
        self.queues: List[Any] = [
            0 if static.contentless[cid] else [] for cid in range(static.n_channels)
        ]
        self.fault_idx = (
            [0] * static.n_channels if static.fault_profile is not None else None
        )
        self.total_sent = 0

    def clone(self) -> "_RState":
        new = _RState.__new__(_RState)
        new.nodes = copy.deepcopy(self.nodes)
        new.queues = [
            queue if isinstance(queue, int) else list(queue) for queue in self.queues
        ]
        new.fault_idx = None if self.fault_idx is None else list(self.fault_idx)
        new.total_sent = self.total_sent
        return new

    def qlen(self, channel_id: int) -> int:
        queue = self.queues[channel_id]
        return queue if isinstance(queue, int) else len(queue)

    def pending_messages(self) -> int:
        return sum(
            queue if isinstance(queue, int) else len(queue) for queue in self.queues
        )

    def enabled(self) -> List[int]:
        return [cid for cid in range(len(self.queues)) if self.qlen(cid)]

    def fingerprint(self, static: _Static) -> Tuple:
        queues = tuple(
            queue
            if isinstance(queue, int)
            else tuple(freeze_value(item) for item in queue)
            for queue in self.queues
        )
        if self.fault_idx is not None:
            return (node_fingerprint(self.nodes), queues, tuple(self.fault_idx))
        return (node_fingerprint(self.nodes), queues)


class _ReducedAPI(NodeAPI):
    """Capability object handed to nodes while exploring a _RState."""

    __slots__ = ("_static", "_state", "_node_index")

    def __init__(self, static: _Static, state: _RState, node_index: int) -> None:
        self._static = static
        self._state = state
        self._node_index = node_index

    def send(self, port: int, content: Any = None) -> None:
        static, state, sender = self._static, self._state, self._node_index
        node = state.nodes[sender]
        if node.terminated:
            raise ProtocolViolation(
                f"node {sender} attempted to send after terminating"
            )
        if check_port(port) in node.SILENT_SEND_PORTS:
            raise ProtocolViolation(
                f"node {sender} sent on port {port}, which its class "
                f"{type(node).__qualname__} declares silent (SILENT_SEND_PORTS)"
            )
        channel_id = static.out_channel[(sender, port)]
        copies = 1
        if static.fault_profile is not None:
            copies = static.fault_profile.copies(
                channel_id, state.fault_idx[channel_id]
            )
            state.fault_idx[channel_id] += 1
        if copies:
            if static.contentless[channel_id]:
                state.queues[channel_id] += copies
            else:
                for _ in range(copies):
                    state.queues[channel_id].append(content)
        state.total_sent += 1

    def terminate(self, output: Any = None) -> None:
        self._state.nodes[self._node_index]._mark_terminated(output)


def _deliver(static: _Static, state: _RState, channel_id: int) -> bool:
    """Deliver ``channel_id``'s FIFO head; True on a quiescence violation."""
    queue = state.queues[channel_id]
    if isinstance(queue, int):
        state.queues[channel_id] = queue - 1
        content = None
    else:
        content = queue.pop(0)
    receiver_index = static.dst_node[channel_id]
    receiver = state.nodes[receiver_index]
    if receiver.terminated:
        return True
    receiver.on_message(
        _ReducedAPI(static, state, receiver_index),
        static.dst_port[channel_id],
        content,
    )
    return False


def _reach(static: _Static, state: _RState, frozen: int) -> Set[int]:
    """Nodes that can process ≥1 delivery while node ``frozen`` never does.

    Sound over-approximation: seed with every non-terminated node (other
    than ``frozen``) holding a deliverable message, then propagate along
    non-silent outgoing channels — a node that acts may send, enabling a
    delivery at the channel's destination.  Anything outside the result
    provably stays inert in every execution avoiding ``frozen``.
    """
    nodes = state.nodes
    reach: Set[int] = set()
    stack: List[int] = []
    for x in range(static.n_nodes):
        if x == frozen or nodes[x].terminated:
            continue
        if any(state.qlen(cid) for cid in static.in_channels[x]):
            reach.add(x)
            stack.append(x)
    while stack:
        actor = stack.pop()
        for cid in static.out_channels[actor]:
            if static.silent[cid]:
                continue
            dst = static.dst_node[cid]
            if dst == frozen or dst in reach or nodes[dst].terminated:
                continue
            reach.add(dst)
            stack.append(dst)
    return reach


def _persistent(static: _Static, state: _RState, receiver: int) -> bool:
    """Is "all enabled deliveries into ``receiver``" a persistent set?

    It is unless some *other* node could send into one of ``receiver``'s
    currently-empty in-channels without ``receiver`` ever acting: then an
    execution avoiding the set could create a new, dependent delivery.
    Non-empty in-channels need no check — their heads are already in the
    set, and FIFO pins everything behind the heads.
    """
    dangerous: List[int] = []
    for cid in static.in_channels[receiver]:
        if state.qlen(cid):
            continue
        src = static.src_node[cid]
        if src == receiver:  # self-loop: the frozen receiver never sends
            continue
        if static.silent[cid] or state.nodes[src].terminated:
            continue
        dangerous.append(src)
    if not dangerous:
        return True
    reach = _reach(static, state, receiver)
    return not any(src in reach for src in dangerous)


def _ample(static: _Static, state: _RState, enabled: List[int]) -> List[int]:
    """The subset of ``enabled`` deliveries to expand at this state.

    Deterministic in the state (required for the memoized search to be a
    well-defined reduced graph): candidate receivers are tried smallest
    delivery-group first, node index breaking ties; the first persistent
    group wins, and full expansion is the fallback.
    """
    by_receiver: Dict[int, List[int]] = {}
    for cid in enabled:
        by_receiver.setdefault(static.dst_node[cid], []).append(cid)
    if len(by_receiver) == 1:
        return enabled  # single receiver: dependent set, no choice to prune
    for receiver in sorted(
        by_receiver, key=lambda node: (len(by_receiver[node]), node)
    ):
        if _persistent(static, state, receiver):
            return by_receiver[receiver]
    return enabled


@dataclass
class ReducedExplorationResult:
    """Certificate produced by one reduced exploration.

    Attributes:
        states_explored: Distinct states visited by the reduced search.
        transitions: Deliveries executed (reduced-graph edges examined).
        enabled_transitions: Sum over expanded states of enabled
            deliveries — what the unreduced search would have branched
            on; ``transitions / enabled_transitions`` quantifies the
            per-state pruning.
        ample_states: States where a proper persistent subset was
            expanded.
        full_expansion_states: States where no receiver's delivery set
            was provably persistent and all branches were taken.
        terminal_node_fingerprints: Distinct quiescent end states (node
            component only; all queues are empty at quiescence).
        terminal_outputs: Per-node outputs of each distinct terminal
            state (parallel to ``terminal_node_fingerprints``).
        terminal_total_sent: Messages sent on the way into each distinct
            terminal state — the certified exact message complexity.
        quiescence_violations: Executed deliveries that reached a
            terminated node.  Preserved existentially: zero here means
            zero in the full space; a positive count may undercount the
            full space's redundant witnesses.
        max_in_flight: Largest in-flight pulse total over visited states.
    """

    states_explored: int
    transitions: int
    enabled_transitions: int
    ample_states: int
    full_expansion_states: int
    terminal_node_fingerprints: List[Tuple]
    terminal_outputs: List[Tuple]
    terminal_total_sent: List[int]
    quiescence_violations: int
    max_in_flight: int

    @property
    def confluent(self) -> bool:
        """All schedules funnel into one terminal state."""
        return len(self.terminal_node_fingerprints) == 1

    @property
    def branch_reduction(self) -> float:
        """Enabled-to-expanded delivery ratio (≥ 1; higher = more pruning)."""
        if not self.transitions:
            return 1.0
        return self.enabled_transitions / self.transitions


def explore_reduced(
    network_factory: Callable[[], Network],
    invariant: Optional[Callable[[Sequence[Any]], None]] = None,
    max_states: int = 2_000_000,
    invariant_hooks: Sequence[StateHook] = (),
) -> ReducedExplorationResult:
    """Explore the schedule space under partial-order reduction.

    Same calling convention as
    :func:`~repro.verification.explorer.explore_all_schedules`; the
    result certifies the identical terminal-state facts while visiting a
    fraction of the states (reduction telemetry included).

    Args:
        network_factory: Builds a *fresh* network (fresh node objects).
        invariant: Optional callback receiving the node list at every
            visited state; raise ``AssertionError`` to abort.
        max_states: Budget on distinct visited states before raising
            :class:`~repro.verification.explorer.ExplorationLimitExceeded`.
        invariant_hooks: Engine-style hooks (e.g.
            :data:`repro.core.invariants.ALGORITHM2_HOOKS`) evaluated at
            every visited state via an
            :class:`~repro.verification.common.EngineView`.

    Returns:
        A :class:`ReducedExplorationResult`.
    """
    network = network_factory()
    static = _Static(network)
    root = _RState(network, static)
    for index, node in enumerate(root.nodes):
        node.on_init(_ReducedAPI(static, root, index))

    def check(state: _RState) -> None:
        if invariant is not None:
            invariant(state.nodes)
        if invariant_hooks:
            view = EngineView(state.nodes, state.pending_messages())
            for hook in invariant_hooks:
                hook(view)

    check(root)

    seen: Set[Tuple] = {root.fingerprint(static)}
    terminal_node_fps: List[Tuple] = []
    terminal_outputs: List[Tuple] = []
    terminal_total_sent: List[int] = []
    transitions = 0
    enabled_transitions = 0
    ample_states = 0
    full_expansions = 0
    violations = 0
    max_in_flight = root.pending_messages()

    stack: List[_RState] = [root]
    while stack:
        state = stack.pop()
        enabled = state.enabled()
        if not enabled:
            fp = node_fingerprint(state.nodes)
            if fp not in terminal_node_fps:
                terminal_node_fps.append(fp)
                terminal_outputs.append(
                    tuple(
                        freeze_value(getattr(node, "output", None))
                        for node in state.nodes
                    )
                )
                terminal_total_sent.append(state.total_sent)
            continue
        ample = _ample(static, state, enabled)
        enabled_transitions += len(enabled)
        if len(ample) < len(enabled):
            ample_states += 1
        else:
            full_expansions += 1
        for channel_id in ample:
            successor = state.clone()
            transitions += 1
            if _deliver(static, successor, channel_id):
                violations += 1
            fp = successor.fingerprint(static)
            if fp in seen:
                continue
            seen.add(fp)
            if len(seen) > max_states:
                raise ExplorationLimitExceeded(
                    f"more than {max_states} reachable states; "
                    "shrink the instance or raise max_states"
                )
            check(successor)
            max_in_flight = max(max_in_flight, successor.pending_messages())
            stack.append(successor)

    return ReducedExplorationResult(
        states_explored=len(seen),
        transitions=transitions,
        enabled_transitions=enabled_transitions,
        ample_states=ample_states,
        full_expansion_states=full_expansions,
        terminal_node_fingerprints=terminal_node_fps,
        terminal_outputs=terminal_outputs,
        terminal_total_sent=terminal_total_sent,
        quiescence_violations=violations,
        max_in_flight=max_in_flight,
    )
