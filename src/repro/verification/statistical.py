"""Statistical model checking over fleet-sampled schedules.

The exhaustive explorers (:mod:`repro.verification.explorer`,
:mod:`repro.verification.reduced`) certify *every* schedule of one small
instance.  This module attacks the complementary regime — instances far
too large to enumerate — by sampling: it draws millions of random ID
assignments, runs each through the vectorized fleet engine
(:mod:`repro.simulator.fleet`), evaluates the executable-lemma battery
(:mod:`repro.core.invariants`, column forms) at every fleet round plus
the end-state contract, and reports the invariant pass-rate with an
exact Clopper–Pearson confidence interval
(:func:`repro.analysis.stats.clopper_pearson_interval`).

Two algorithms are covered:

* ``"terminating"`` (Algorithm 2): Theorem 1's end state — every node
  terminated, the unique maximal-ID leader elected, and exactly
  :math:`n(2\\,\\mathsf{ID}_{max}+1)` pulses spent.
* ``"nonoriented"`` (Algorithm 3, successor IDs): the *stabilized
  verdict* contract of Theorem 2 — at quiescence every node is decided
  (via the kernel's ``stabilized_verdict``), the unique maximal-ID node
  is the one leader, all nodes agree on a ring orientation, and the
  exact pulse bound :math:`n(2\\,\\mathsf{ID}_{max}+1)` holds.

Everything is a pure function of ``(seed, sched_seed)``:

* sample ``index`` gets the ID assignment
  :func:`ids_for_instance` ``(seed, index, n, id_max)`` and (for the
  non-oriented ring) the port flips :func:`flips_for_instance` — both
  counter-based derivations, independent of block sharding and process
  count;
* the fleet's seeded scheduler (when selected) is already counter-based;
* injected faults (:mod:`repro.faults`) roll counter-based per-pulse
  decisions keyed on the *global* sample index.

So a violation found at sample ``index`` is *replayable*: the returned
:class:`Counterexample` carries everything needed to re-run exactly that
instance (:meth:`Counterexample.replay`) and re-raise the violation.

Violation localization.  The fleet simulates a block of ``B`` instances
at once, and a column invariant raises for the whole block.  The checker
then bisects the failing block — re-running halves until single
instances — which costs ``O(log B)`` extra fleet runs per violating
instance and attributes pass/fail exactly.  With many violations, the
search stops after ``max_counterexamples`` are localized and counts the
remaining failing sub-blocks' instances as failures (conservative for
the pass-rate, and the interval inherits the conservatism).

Fault injection serves two roles:

* **Self-test** (``repro verify --statistical --inject-drop``): a
  :class:`~repro.simulator.fleet.FleetFault` deletes in-flight pulses at
  a chosen round.  Pulse loss is outside the model, so a correct kernel
  + invariant battery must flag it, demonstrating the full find →
  localize → replay loop.
* **Recovery harness** (:func:`run_recovery_check`): a full
  :class:`~repro.faults.model.FaultModel` perturbs every sampled run
  mid-flight, and each run is classified by where it *ends up* —
  ``recovered`` (correct stable state despite the faults),
  ``wrong_stable`` (quiesced into an incorrect stable state), or
  ``stuck`` (undecided at quiescence, or cut off by the stuck-run
  watchdog).  Non-recovered runs become replayable counterexamples
  annotated with the first violated invariant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.parallel import (
    ProcessCount,
    parallel_map,
    resolve_processes,
    shard_evenly,
)
from repro.analysis.stats import clopper_pearson_interval
from repro.core.common import LeaderState
from repro.core.invariants import InvariantViolation, column_invariants_for
from repro.exceptions import ConfigurationError
from repro.faults.fleet import merge_events
from repro.faults.model import FaultModel
from repro.simulator.fleet import (
    DEFAULT_MAX_ROUNDS,
    FleetFault,
    FleetResult,
    _mix64,
    run_nonoriented_fleet,
    run_terminating_fleet,
)

#: Default fleet block size: big enough to amortize array dispatch,
#: small enough that bisecting a failing block stays cheap.
DEFAULT_BLOCK_SIZE = 8192

#: Algorithms with both a column invariant battery and an exact
#: end-state contract to check against.
CHECKABLE_ALGORITHMS = ("terminating", "nonoriented")

_KEY_SAMPLE = 0xA24BAED4963EE407  # odd constant for the per-sample stream
_KEY_FLIP = 0x9E6C63D0876A9A35  # odd constant for the per-sample flip stream

#: Anything the fleet entry points accept as a fault argument.
FaultArg = Optional[Union[FleetFault, FaultModel]]


def ids_for_instance(seed: int, index: int, n: int, id_max: int) -> List[int]:
    """The ID assignment of sample ``index`` — pure in ``(seed, index)``.

    Draws ``n`` distinct IDs uniformly from ``[1, id_max]`` using a
    counter-derived RNG stream, so any shard layout (block size, process
    count) sees the same assignment for the same global sample index.
    """
    derived = _mix64(_mix64(seed) + index * _KEY_SAMPLE)
    rng = random.Random(derived)
    return rng.sample(range(1, id_max + 1), n)


def flips_for_instance(seed: int, index: int, n: int) -> List[bool]:
    """The adversarial port flips of sample ``index`` — pure in
    ``(seed, index)``, drawn from a stream independent of the ID stream
    (so the same sample keeps its IDs if only ``n`` changes the flips).
    """
    derived = _mix64(_mix64(seed) + index * _KEY_SAMPLE + _KEY_FLIP)
    rng = random.Random(derived)
    return [rng.random() < 0.5 for _ in range(n)]


@dataclass(frozen=True)
class Counterexample:
    """One localized, replayable violation (or non-recovered faulted run).

    ``instance`` is the global sample index; ``ids`` its ID assignment
    and ``flips`` its port flips (non-oriented rings only) — both
    recomputable from ``(seed, instance)``, stored for forensics.

    When produced by :func:`run_recovery_check`, ``classification`` is
    ``"wrong_stable"`` or ``"stuck"`` and ``first_invariant`` names the
    first column invariant the faulted run violated (None when the run
    degraded without tripping a mid-run invariant).
    """

    instance: int
    ids: Tuple[int, ...]
    message: str
    algorithm: str
    seed: int
    sched_seed: int
    scheduler: str
    backend: str
    fault: FaultArg = None
    flips: Optional[Tuple[bool, ...]] = None
    watchdog_rounds: Optional[int] = None
    classification: Optional[str] = None
    first_invariant: Optional[str] = None

    def replay(self) -> Optional[str]:
        """Re-run exactly this instance; the violation message, or None.

        Returns the (possibly refined) violation message when the re-run
        reproduces a violation, None when it does not — determinism of
        the whole pipeline means a genuine counterexample always
        reproduces.  Recovery-harness counterexamples re-classify the
        run and reproduce when it is again not ``recovered``.
        """
        flip_lists = [list(self.flips)] if self.flips is not None else None
        if self.classification is not None:
            result = _run_fleet(
                algorithm=self.algorithm,
                id_lists=[list(self.ids)],
                flip_lists=flip_lists,
                offset=self.instance,
                scheduler=self.scheduler,
                backend=self.backend,
                sched_seed=self.sched_seed,
                fault=self.fault,
                max_rounds=DEFAULT_MAX_ROUNDS,
                observer=None,
                watchdog_rounds=self.watchdog_rounds,
            )
            classification, message = _classify_instance(
                self.algorithm, result, 0, self.instance
            )
            return None if classification == "recovered" else message
        failures = _check_block(
            algorithm=self.algorithm,
            id_lists=[list(self.ids)],
            flip_lists=flip_lists,
            offset=self.instance,
            scheduler=self.scheduler,
            backend=self.backend,
            sched_seed=self.sched_seed,
            fault=self.fault,
            max_rounds=DEFAULT_MAX_ROUNDS,
            watchdog_rounds=self.watchdog_rounds,
            budget=1,
        )
        for index, message in failures:
            if index == self.instance:
                return message
        return None


@dataclass
class StatisticalReport:
    """Outcome of one statistical-checking run.

    ``violations`` counts failing samples; the pass-rate interval is the
    exact Clopper–Pearson interval at ``confidence`` for
    ``samples - violations`` successes out of ``samples``.
    """

    algorithm: str
    n: int
    id_max: int
    samples: int
    violations: int
    confidence: float
    rate_low: float
    rate_high: float
    backend: str
    scheduler: str
    seed: int
    sched_seed: int
    block_size: int
    counterexamples: List[Counterexample] = field(default_factory=list)

    @property
    def pass_rate(self) -> float:
        """Observed proportion of samples with no invariant violation."""
        return (self.samples - self.violations) / self.samples

    @property
    def clean(self) -> bool:
        """True when no sample violated any invariant."""
        return self.violations == 0


def _observer_for(algorithm: str) -> Optional[Callable[[Any], None]]:
    """Per-round battery: run every column invariant on the view."""
    try:
        battery = column_invariants_for(algorithm)
    except KeyError:
        return None

    def observe(view: Any) -> None:
        for check in battery:
            check(view)

    return observe


def _run_fleet(
    algorithm: str,
    id_lists: List[List[int]],
    flip_lists: Optional[List[List[bool]]],
    offset: int,
    scheduler: str,
    backend: str,
    sched_seed: int,
    fault: FaultArg,
    max_rounds: int,
    observer: Optional[Callable[[Any], None]],
    watchdog_rounds: Optional[int],
) -> FleetResult:
    """One fleet run of ``algorithm`` — the single dispatch point."""
    if algorithm == "nonoriented":
        return run_nonoriented_fleet(
            id_lists,
            flip_lists=flip_lists,
            backend=backend,
            scheduler=scheduler,
            seed=sched_seed,
            max_rounds=max_rounds,
            faults=fault,
            observer=observer,
            instance_offset=offset,
            watchdog_rounds=watchdog_rounds,
        )
    return run_terminating_fleet(
        id_lists,
        backend=backend,
        scheduler=scheduler,
        seed=sched_seed,
        max_rounds=max_rounds,
        observer=observer,
        fault=fault,
        instance_offset=offset,
        watchdog_rounds=watchdog_rounds,
    )


def _end_state_failures(
    algorithm: str, result: FleetResult, offset: int
) -> List[Tuple[int, str]]:
    """The end-state contract of ``algorithm``, attributed per instance.

    ``"terminating"``: Theorem 1 — all terminated, the unique maximal-ID
    leader, exact pulse count.  ``"nonoriented"``: Theorem 2's stabilized
    verdict — all decided, the unique maximal-ID leader, a consistent
    orientation, exact pulse count (successor scheme).
    """
    failures: List[Tuple[int, str]] = []
    unfinished = result.unfinished or [False] * result.size
    for b, ids in enumerate(result.ids):
        index = offset + b
        n, id_max = len(ids), max(ids)
        expected_leader = max(range(n), key=lambda v: ids[v])
        if unfinished[b]:
            failures.append(
                (
                    index,
                    f"instance {index}: did not quiesce "
                    "(stuck-run watchdog cut the run)",
                )
            )
            continue
        if algorithm == "nonoriented":
            undecided = [
                v
                for v, s in enumerate(result.states[b])
                if s is LeaderState.UNDECIDED
            ]
            consistent = (
                result.orientation_consistent is not None
                and bool(result.orientation_consistent[b])
            )
            if undecided:
                failures.append(
                    (
                        index,
                        f"instance {index}: nodes {undecided} undecided at "
                        "quiescence (stabilized-verdict guard unmet)",
                    )
                )
            elif result.leaders[b] != [expected_leader]:
                failures.append(
                    (
                        index,
                        f"instance {index}: leaders {result.leaders[b]} != "
                        f"[{expected_leader}] (the maximal-ID node)",
                    )
                )
            elif not consistent:
                failures.append(
                    (
                        index,
                        f"instance {index}: inconsistent orientation: "
                        f"cw_port_labels="
                        f"{result.cw_port_labels[b] if result.cw_port_labels else None}",
                    )
                )
            elif result.total_pulses[b] != n * (2 * id_max + 1):
                failures.append(
                    (
                        index,
                        f"instance {index}: total pulses "
                        f"{result.total_pulses[b]} != n(2*IDmax+1) = "
                        f"{n * (2 * id_max + 1)} (Theorem 2, successor IDs)",
                    )
                )
            continue
        if result.terminated is not None and not all(result.terminated[b]):
            failures.append(
                (index, f"instance {index}: not all nodes terminated")
            )
        elif result.leaders[b] != [expected_leader]:
            failures.append(
                (
                    index,
                    f"instance {index}: leaders {result.leaders[b]} != "
                    f"[{expected_leader}] (the maximal-ID node)",
                )
            )
        elif result.total_pulses[b] != n * (2 * id_max + 1):
            failures.append(
                (
                    index,
                    f"instance {index}: total pulses {result.total_pulses[b]} "
                    f"!= n(2*IDmax+1) = {n * (2 * id_max + 1)}",
                )
            )
    return failures


def _check_block(
    algorithm: str,
    id_lists: List[List[int]],
    flip_lists: Optional[List[List[bool]]],
    offset: int,
    scheduler: str,
    backend: str,
    sched_seed: int,
    fault: FaultArg,
    max_rounds: int,
    watchdog_rounds: Optional[int],
    budget: int,
) -> List[Tuple[int, str]]:
    """Failing ``(global_index, message)`` pairs within one block.

    Runs the whole block as one fleet; a per-round violation aborts the
    fleet run, so the block is bisected to localize it.  ``budget`` caps
    how many violations are localized exactly; once exceeded, a failing
    sub-block is attributed wholesale (every instance counted failing,
    with the block-level message).
    """
    try:
        result = _run_fleet(
            algorithm=algorithm,
            id_lists=id_lists,
            flip_lists=flip_lists,
            offset=offset,
            scheduler=scheduler,
            backend=backend,
            sched_seed=sched_seed,
            fault=fault,
            max_rounds=max_rounds,
            observer=_observer_for(algorithm),
            watchdog_rounds=watchdog_rounds,
        )
    except InvariantViolation as violation:
        if len(id_lists) == 1:
            return [(offset, str(violation))]
        if budget <= 0:
            return [
                (offset + b, f"unlocalized (budget exhausted): {violation}")
                for b in range(len(id_lists))
            ]
        half = len(id_lists) // 2
        left = _check_block(
            algorithm,
            id_lists[:half],
            flip_lists[:half] if flip_lists is not None else None,
            offset,
            scheduler,
            backend,
            sched_seed,
            fault,
            max_rounds,
            watchdog_rounds,
            budget,
        )
        right = _check_block(
            algorithm,
            id_lists[half:],
            flip_lists[half:] if flip_lists is not None else None,
            offset + half,
            scheduler,
            backend,
            sched_seed,
            fault,
            max_rounds,
            watchdog_rounds,
            budget - len(left),
        )
        return left + right
    return _end_state_failures(algorithm, result, offset)


def _worker(job: Tuple) -> List[Tuple[int, str]]:
    """Picklable shard worker: failing pairs across this shard's blocks."""
    (
        algorithm,
        n,
        id_max,
        indices,
        seed,
        sched_seed,
        scheduler,
        backend,
        block_size,
        fault,
        max_rounds,
        watchdog_rounds,
        budget,
    ) = job
    failures: List[Tuple[int, str]] = []
    for start in range(0, len(indices), block_size):
        chunk = indices[start : start + block_size]
        id_lists = [ids_for_instance(seed, i, n, id_max) for i in chunk]
        flip_lists = (
            [flips_for_instance(seed, i, n) for i in chunk]
            if algorithm == "nonoriented"
            else None
        )
        failures.extend(
            _check_block(
                algorithm,
                id_lists,
                flip_lists,
                chunk[0],
                scheduler,
                backend,
                sched_seed,
                fault,
                max_rounds,
                watchdog_rounds,
                budget - len(failures),
            )
        )
    return failures


def _validate_common(
    algorithm: str, samples: int, n: int, id_max: int, block_size: int
) -> None:
    if algorithm not in CHECKABLE_ALGORITHMS:
        raise ConfigurationError(
            "statistical checking supports algorithm='terminating' "
            f"(Algorithm 2) or 'nonoriented' (Algorithm 3), got {algorithm!r}"
        )
    if samples < 1:
        raise ConfigurationError(f"need at least one sample, got {samples}")
    if n < 2:
        raise ConfigurationError(f"need a ring of at least 2 nodes, got n={n}")
    if id_max < n:
        raise ConfigurationError(
            f"id_max={id_max} cannot host {n} distinct IDs"
        )
    if block_size < 1:
        raise ConfigurationError(f"block_size must be >= 1, got {block_size}")


def _resolved_backend(backend: str) -> str:
    """Report label only (the fleet re-resolves per block): the shared
    registry's dispatch, compiled → numpy → python.  Note the invariant
    checker always installs a per-round observer, which the compiled
    tier cannot host — those blocks run on the numpy columns (the
    fallback seam); the observer-free recovery harness keeps the JIT."""
    from repro.accel import resolve_backend

    return resolve_backend(backend)


def run_statistical_check(
    algorithm: str = "terminating",
    n: int = 8,
    id_max: int = 1000,
    samples: int = 1000,
    seed: int = 0,
    sched_seed: int = 0,
    scheduler: str = "lockstep",
    backend: str = "auto",
    block_size: int = DEFAULT_BLOCK_SIZE,
    confidence: float = 0.99,
    fault: FaultArg = None,
    max_counterexamples: int = 5,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    watchdog_rounds: Optional[int] = None,
    processes: ProcessCount = 1,
) -> StatisticalReport:
    """Statistically model-check ``algorithm`` over sampled instances.

    Args:
        algorithm: ``"terminating"`` (Algorithm 2, Theorem 1 contract) or
            ``"nonoriented"`` (Algorithm 3, Theorem 2 stabilized-verdict
            contract with per-sample adversarial port flips).
        n: Ring size of every sampled instance.
        id_max: IDs are drawn uniformly (distinct) from ``[1, id_max]``.
        samples: Number of sampled instances.
        seed: Master seed of the ID/flip sampling streams (see
            :func:`ids_for_instance`, :func:`flips_for_instance`).
        sched_seed: Seed of the fleet's ``"seeded"`` scheduler stream.
        scheduler: ``"lockstep"`` (default; lap-skip makes large
            ``id_max`` cheap) or ``"seeded"`` (random schedules, runtime
            grows with ``id_max``).
        backend: Fleet backend (``"auto"`` / ``"numpy"`` / ``"python"``).
        block_size: Instances per fleet run.
        confidence: Clopper–Pearson coverage for the pass-rate interval.
        fault: Optional injected fault — a single
            :class:`~repro.simulator.fleet.FleetFault` pulse loss (the
            checker's classic self-test) or a full
            :class:`~repro.faults.model.FaultModel`.
        max_counterexamples: How many violations to localize exactly
            (and record as replayable :class:`Counterexample` objects).
        max_rounds: Fleet safety bound.
        watchdog_rounds: Stuck-run watchdog override (None = automatic
            when faults are injected; see the fleet module).
        processes: Worker processes; samples are sharded evenly.
    """
    _validate_common(algorithm, samples, n, id_max, block_size)

    indices = list(range(samples))
    shards = shard_evenly(indices, resolve_processes(processes))
    jobs = [
        (
            algorithm,
            n,
            id_max,
            shard,
            seed,
            sched_seed,
            scheduler,
            backend,
            block_size,
            fault,
            max_rounds,
            watchdog_rounds,
            max_counterexamples,
        )
        for shard in shards
        if shard
    ]
    per_shard = parallel_map(_worker, jobs, processes=processes)
    failures = sorted(
        (pair for shard in per_shard for pair in shard), key=lambda p: p[0]
    )

    resolved_backend = _resolved_backend(backend)
    counterexamples = [
        Counterexample(
            instance=index,
            ids=tuple(ids_for_instance(seed, index, n, id_max)),
            message=message,
            algorithm=algorithm,
            seed=seed,
            sched_seed=sched_seed,
            scheduler=scheduler,
            backend=resolved_backend,
            fault=fault,
            flips=(
                tuple(flips_for_instance(seed, index, n))
                if algorithm == "nonoriented"
                else None
            ),
            watchdog_rounds=watchdog_rounds,
        )
        for index, message in failures[:max_counterexamples]
    ]
    violations = len(failures)
    low, high = clopper_pearson_interval(
        samples - violations, samples, confidence=confidence
    )
    return StatisticalReport(
        algorithm=algorithm,
        n=n,
        id_max=id_max,
        samples=samples,
        violations=violations,
        confidence=confidence,
        rate_low=low,
        rate_high=high,
        backend=resolved_backend,
        scheduler=scheduler,
        seed=seed,
        sched_seed=sched_seed,
        block_size=block_size,
        counterexamples=counterexamples,
    )


# ---------------------------------------------------------------------------
# Recovery harness — classify faulted runs by their stable end state.
# ---------------------------------------------------------------------------

#: The three recovery verdicts, in decreasing order of health.
RECOVERY_CLASSES = ("recovered", "wrong_stable", "stuck")


def _classify_instance(
    algorithm: str, result: FleetResult, b: int, index: int
) -> Tuple[str, str]:
    """Classify instance ``b`` of a faulted fleet ``result``.

    Returns ``(classification, message)`` with classification one of
    :data:`RECOVERY_CLASSES`:

    * ``stuck`` — the watchdog cut the run (deadlock/livelock), or the
      run quiesced with undecided nodes or no leader at all;
    * ``wrong_stable`` — quiesced and fully decided, but the stable
      state is wrong (wrong/multiple leaders, inconsistent orientation);
    * ``recovered`` — the correct stable state despite the faults.
    """
    ids = result.ids[b]
    expected_leader = max(range(len(ids)), key=lambda v: ids[v])
    unfinished = bool(result.unfinished[b]) if result.unfinished else False
    if unfinished:
        return (
            "stuck",
            f"instance {index}: watchdog cut the run before quiescence "
            "(deadlock or fault-sustained livelock)",
        )
    if algorithm == "nonoriented":
        undecided = [
            v
            for v, s in enumerate(result.states[b])
            if s is LeaderState.UNDECIDED
        ]
        if undecided:
            return (
                "stuck",
                f"instance {index}: quiesced with nodes {undecided} "
                "undecided (no valid stable verdict)",
            )
    elif result.terminated is not None and not all(result.terminated[b]):
        stragglers = [
            v for v, t in enumerate(result.terminated[b]) if not t
        ]
        return (
            "stuck",
            f"instance {index}: quiesced with nodes {stragglers} "
            "unterminated",
        )
    if not result.leaders[b]:
        return (
            "stuck",
            f"instance {index}: quiesced with no leader at all",
        )
    if result.leaders[b] != [expected_leader]:
        return (
            "wrong_stable",
            f"instance {index}: stable but wrong leaders "
            f"{result.leaders[b]} != [{expected_leader}]",
        )
    if algorithm == "nonoriented":
        consistent = (
            result.orientation_consistent is not None
            and bool(result.orientation_consistent[b])
        )
        if not consistent:
            return (
                "wrong_stable",
                f"instance {index}: stable correct leader but inconsistent "
                f"orientation: cw_port_labels="
                f"{result.cw_port_labels[b] if result.cw_port_labels else None}",
            )
    return ("recovered", f"instance {index}: recovered to the correct state")


@dataclass
class RecoveryReport:
    """Outcome of one recovery-harness run.

    ``recovered + wrong_stable + stuck == samples``; the rate interval
    is the exact Clopper–Pearson interval for the *recovered* count.
    ``fault_events`` totals the fault events actually applied across all
    sampled runs (see :data:`repro.faults.fleet.EVENT_KEYS`).
    """

    algorithm: str
    n: int
    id_max: int
    samples: int
    recovered: int
    wrong_stable: int
    stuck: int
    confidence: float
    rate_low: float
    rate_high: float
    backend: str
    scheduler: str
    seed: int
    sched_seed: int
    block_size: int
    watchdog_rounds: Optional[int]
    faults: FaultModel
    fault_events: Dict[str, int] = field(default_factory=dict)
    counterexamples: List[Counterexample] = field(default_factory=list)

    @property
    def recovery_rate(self) -> float:
        """Observed proportion of samples that recovered."""
        return self.recovered / self.samples

    @property
    def all_recovered(self) -> bool:
        """True when every sampled run recovered."""
        return self.recovered == self.samples


def _recovery_worker(
    job: Tuple,
) -> Tuple[Dict[str, int], List[Tuple[int, str, str]], Dict[str, int]]:
    """Picklable shard worker for the recovery harness.

    Returns ``(class_counts, non_recovered, fault_events)`` where
    ``non_recovered`` holds ``(global_index, classification, message)``
    triples.  Blocks run *without* per-round observers: mid-run
    invariant breakage is expected under faults; only the stable end
    state is judged here (first-invariant forensics happen later, per
    counterexample).
    """
    (
        algorithm,
        n,
        id_max,
        indices,
        seed,
        sched_seed,
        scheduler,
        backend,
        block_size,
        faults,
        max_rounds,
        watchdog_rounds,
    ) = job
    counts = {name: 0 for name in RECOVERY_CLASSES}
    non_recovered: List[Tuple[int, str, str]] = []
    events: Dict[str, int] = {}
    for start in range(0, len(indices), block_size):
        chunk = indices[start : start + block_size]
        id_lists = [ids_for_instance(seed, i, n, id_max) for i in chunk]
        flip_lists = (
            [flips_for_instance(seed, i, n) for i in chunk]
            if algorithm == "nonoriented"
            else None
        )
        result = _run_fleet(
            algorithm=algorithm,
            id_lists=id_lists,
            flip_lists=flip_lists,
            offset=chunk[0],
            scheduler=scheduler,
            backend=backend,
            sched_seed=sched_seed,
            fault=faults,
            max_rounds=max_rounds,
            observer=None,
            watchdog_rounds=watchdog_rounds,
        )
        if result.fault_events:
            events = merge_events(events, result.fault_events)
        for b in range(result.size):
            index = chunk[0] + b
            classification, message = _classify_instance(
                algorithm, result, b, index
            )
            counts[classification] += 1
            if classification != "recovered":
                non_recovered.append((index, classification, message))
    return counts, non_recovered, events


def run_recovery_shard(
    algorithm: str,
    n: int,
    id_max: int,
    indices: List[int],
    seed: int = 0,
    sched_seed: int = 0,
    scheduler: str = "lockstep",
    backend: str = "auto",
    block_size: int = DEFAULT_BLOCK_SIZE,
    faults: Optional[FaultModel] = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    watchdog_rounds: Optional[int] = None,
) -> Tuple[Dict[str, int], List[Tuple[int, str, str]], Dict[str, int]]:
    """Public shard seam: classify exactly the given global ``indices``.

    This is the unit of work the sweep farm caches: a pure function of
    the semantics coordinates (everything here except ``backend`` and
    ``block_size``, which are bit-identical execution knobs).  Any
    partition of ``range(samples)`` into shards sums to the same counts
    and the same sorted ``non_recovered`` list that
    :func:`run_recovery_check` computes in one pass, because every
    instance's IDs, flips, and fault rolls are counter-derived from
    ``(seed, index)`` alone.
    """
    if faults is None:
        faults = FaultModel.none()
    if isinstance(faults, FleetFault):
        faults = FaultModel(drops=(faults,))
    return _recovery_worker(
        (
            algorithm,
            n,
            id_max,
            list(indices),
            seed,
            sched_seed,
            scheduler,
            backend,
            block_size,
            faults,
            max_rounds,
            watchdog_rounds,
        )
    )


def _first_violation(
    algorithm: str,
    ids: List[int],
    flips: Optional[List[bool]],
    index: int,
    scheduler: str,
    backend: str,
    sched_seed: int,
    faults: FaultArg,
    max_rounds: int,
    watchdog_rounds: Optional[int],
) -> Optional[Tuple[str, str]]:
    """Forensic solo re-run: the first column invariant the faulted run
    violates, as ``(check_name, message)``, or None when the run degrades
    without tripping any mid-run invariant.

    The observer records the first violation and *swallows* it so the
    run continues to its stable end state (unlike the checking path,
    which aborts and bisects).
    """
    try:
        battery = column_invariants_for(algorithm)
    except KeyError:
        return None
    found: List[Tuple[str, str]] = []

    def observe(view: Any) -> None:
        if found:
            return
        for check in battery:
            try:
                check(view)
            except InvariantViolation as violation:
                found.append((check.__name__, str(violation)))
                return

    _run_fleet(
        algorithm=algorithm,
        id_lists=[list(ids)],
        flip_lists=[list(flips)] if flips is not None else None,
        offset=index,
        scheduler=scheduler,
        backend=backend,
        sched_seed=sched_seed,
        fault=faults,
        max_rounds=max_rounds,
        observer=observe,
        watchdog_rounds=watchdog_rounds,
    )
    return found[0] if found else None


def run_recovery_check(
    algorithm: str = "nonoriented",
    n: int = 8,
    id_max: int = 100,
    samples: int = 256,
    seed: int = 0,
    sched_seed: int = 0,
    scheduler: str = "lockstep",
    backend: str = "auto",
    block_size: int = DEFAULT_BLOCK_SIZE,
    confidence: float = 0.99,
    faults: Optional[FaultModel] = None,
    max_counterexamples: int = 5,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    watchdog_rounds: Optional[int] = None,
    processes: ProcessCount = 1,
) -> RecoveryReport:
    """Classify every faulted sampled run by its stable end state.

    This is the self-stabilization harness: inject the declarative
    ``faults`` (:class:`~repro.faults.model.FaultModel`) into every
    sampled instance and ask where each run *ends up* — ``recovered``,
    ``wrong_stable``, or ``stuck`` (see :func:`_classify_instance`).
    Non-recovered runs are returned as replayable
    :class:`Counterexample` objects annotated with the first violated
    invariant (forensic solo re-run with a non-aborting observer).

    With ``faults=None`` (or a no-op model) every run must classify
    ``recovered`` — a useful control arm.
    """
    _validate_common(algorithm, samples, n, id_max, block_size)
    if faults is None:
        faults = FaultModel.none()
    if isinstance(faults, FleetFault):
        faults = FaultModel(drops=(faults,))

    indices = list(range(samples))
    shards = shard_evenly(indices, resolve_processes(processes))
    jobs = [
        (
            algorithm,
            n,
            id_max,
            shard,
            seed,
            sched_seed,
            scheduler,
            backend,
            block_size,
            faults,
            max_rounds,
            watchdog_rounds,
        )
        for shard in shards
        if shard
    ]
    per_shard = parallel_map(_recovery_worker, jobs, processes=processes)
    counts = {name: 0 for name in RECOVERY_CLASSES}
    non_recovered: List[Tuple[int, str, str]] = []
    events: Dict[str, int] = {}
    for shard_counts, shard_failures, shard_events in per_shard:
        for name in RECOVERY_CLASSES:
            counts[name] += shard_counts[name]
        non_recovered.extend(shard_failures)
        if shard_events:
            events = merge_events(events, shard_events)
    non_recovered.sort(key=lambda t: t[0])

    resolved_backend = _resolved_backend(backend)
    counterexamples: List[Counterexample] = []
    for index, classification, message in non_recovered[:max_counterexamples]:
        ids = ids_for_instance(seed, index, n, id_max)
        flips = (
            flips_for_instance(seed, index, n)
            if algorithm == "nonoriented"
            else None
        )
        first = _first_violation(
            algorithm,
            ids,
            flips,
            index,
            scheduler,
            resolved_backend,
            sched_seed,
            faults,
            max_rounds,
            watchdog_rounds,
        )
        if first is not None:
            message = f"{message}; first violated invariant: {first[0]}"
        counterexamples.append(
            Counterexample(
                instance=index,
                ids=tuple(ids),
                message=message,
                algorithm=algorithm,
                seed=seed,
                sched_seed=sched_seed,
                scheduler=scheduler,
                backend=resolved_backend,
                fault=faults,
                flips=tuple(flips) if flips is not None else None,
                watchdog_rounds=watchdog_rounds,
                classification=classification,
                first_invariant=first[0] if first is not None else None,
            )
        )

    low, high = clopper_pearson_interval(
        counts["recovered"], samples, confidence=confidence
    )
    return RecoveryReport(
        algorithm=algorithm,
        n=n,
        id_max=id_max,
        samples=samples,
        recovered=counts["recovered"],
        wrong_stable=counts["wrong_stable"],
        stuck=counts["stuck"],
        confidence=confidence,
        rate_low=low,
        rate_high=high,
        backend=resolved_backend,
        scheduler=scheduler,
        seed=seed,
        sched_seed=sched_seed,
        block_size=block_size,
        watchdog_rounds=watchdog_rounds,
        faults=faults,
        fault_events=events,
        counterexamples=counterexamples,
    )


# ---------------------------------------------------------------------------
# Lemma 18 — the anonymous pipeline's w.h.p. success predicate.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AnonymousCounterexample:
    """One failed anonymous-pipeline attempt, replayable by its seed.

    The whole Algorithm 4 → Algorithm 3 pipeline is a pure function of
    ``(n, c, attempt_seed)``, so the seed alone reproduces the failure
    in a fresh process.
    """

    attempt_seed: int
    n: int
    c: float
    backend: str
    message: str

    def replay(self) -> Optional[str]:
        """Re-run exactly this attempt; the failure message, or None."""
        from repro.simulator.fleet import run_anonymous_fleet

        outcome = run_anonymous_fleet(
            self.n, [self.attempt_seed], c=self.c, backend=self.backend
        )
        return None if outcome.succeeded[0] else self.message


@dataclass
class AnonymousWhpReport:
    """Outcome of one Lemma 18 w.h.p. check.

    ``target`` is Lemma 18's floor :math:`1 - n^{-c}`; the predicate
    :attr:`holds` is the one-sided binomial test — the observed successes
    are *consistent* with a true rate at or above the target exactly when
    the Clopper–Pearson upper bound reaches it (rejecting only when even
    the exact conservative interval excludes the floor).
    """

    n: int
    c: float
    trials: int
    successes: int
    confidence: float
    rate_low: float
    rate_high: float
    target: float
    seed: int
    backend: str
    counterexamples: List[AnonymousCounterexample] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        """Observed proportion of succeeded attempts."""
        return self.successes / self.trials

    @property
    def holds(self) -> bool:
        """Whether the data are consistent with Lemma 18's floor."""
        return self.rate_high >= self.target

    @property
    def failures(self) -> int:
        return self.trials - self.successes


def _anonymous_whp_worker(job: Tuple) -> List[Tuple[int, bool]]:
    """Picklable shard worker: (attempt_seed, succeeded) pairs."""
    from repro.simulator.fleet import run_anonymous_fleet

    n, seeds, c, backend = job
    outcome = run_anonymous_fleet(n, list(seeds), c=c, backend=backend)
    return list(zip(seeds, outcome.succeeded))


def run_anonymous_whp_check(
    n: int = 8,
    c: float = 2.0,
    trials: int = 400,
    seed: int = 0,
    backend: str = "auto",
    confidence: float = 0.99,
    max_counterexamples: int = 5,
    processes: ProcessCount = 1,
) -> AnonymousWhpReport:
    """Check Lemma 18's w.h.p. guarantee over seeded pipeline attempts.

    Attempt ``i`` runs the anonymous pipeline (Algorithm 4's geometric
    ID sampling at exponent ``c`` feeding Algorithm 3) with seed
    ``seed + i`` and succeeds on a unique leader + consistent
    orientation.  The report's :attr:`~AnonymousWhpReport.holds`
    predicate is the one-sided test of the success probability against
    Lemma 18's :math:`1 - n^{-c}` floor via the exact Clopper–Pearson
    upper bound; failed attempts come back as seed-replayable
    :class:`AnonymousCounterexample` objects.
    """
    from repro.analysis.whp import whp_target

    if trials < 1:
        raise ConfigurationError(f"need at least one trial, got {trials}")
    if n < 2:
        raise ConfigurationError(f"need a ring of at least 2 nodes, got n={n}")
    target = whp_target(n, c)
    seeds = list(range(seed, seed + trials))
    shards = shard_evenly(seeds, resolve_processes(processes))
    per_shard = parallel_map(
        _anonymous_whp_worker,
        [(n, shard, c, backend) for shard in shards if shard],
        processes=processes,
    )
    pairs = sorted(
        (pair for shard in per_shard for pair in shard), key=lambda p: p[0]
    )
    successes = sum(1 for _seed, ok in pairs if ok)
    failing = [s for s, ok in pairs if not ok]
    low, high = clopper_pearson_interval(
        successes, trials, confidence=confidence
    )
    resolved_backend = _resolved_backend(backend)
    counterexamples = [
        AnonymousCounterexample(
            attempt_seed=s,
            n=n,
            c=c,
            backend=resolved_backend,
            message=(
                f"attempt seed {s}: anonymous pipeline failed (no unique "
                "leader with consistent orientation)"
            ),
        )
        for s in failing[:max_counterexamples]
    ]
    return AnonymousWhpReport(
        n=n,
        c=c,
        trials=trials,
        successes=successes,
        confidence=confidence,
        rate_low=low,
        rate_high=high,
        target=target,
        seed=seed,
        backend=resolved_backend,
        counterexamples=counterexamples,
    )


# ---------------------------------------------------------------------------
# Topology battery — the 2-edge-connected election's statistical contract.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TopologyCounterexample:
    """One replayable violation of the ear-election contract.

    Self-contained: carries the graph's edge list alongside the sampled
    IDs, so :meth:`replay` can rebuild the exact instance from scratch
    in a fresh process.
    """

    instance: int
    ids: Tuple[int, ...]
    message: str
    n: int
    edges: Tuple[Tuple[int, int], ...]
    seed: int
    sched_seed: int
    scheduler: str
    backend: str

    def replay(self) -> Optional[str]:
        """Re-run exactly this instance; the violation message, or None."""
        from repro.graphs.connectivity import Graph

        graph = Graph.from_edges(self.n, list(self.edges))
        failures = _topology_failures(
            graph,
            [list(self.ids)],
            offset=self.instance,
            scheduler=self.scheduler,
            backend=self.backend,
            sched_seed=self.sched_seed,
            max_rounds=DEFAULT_MAX_ROUNDS,
        )
        for index, message in failures:
            if index == self.instance:
                return message
        return None


@dataclass
class TopologyReport:
    """Outcome of one topology-battery run (mirrors StatisticalReport)."""

    n: int
    edges: int
    walk_length: int
    stride: int
    id_max: int
    samples: int
    violations: int
    confidence: float
    rate_low: float
    rate_high: float
    backend: str
    scheduler: str
    seed: int
    sched_seed: int
    counterexamples: List[TopologyCounterexample] = field(default_factory=list)

    @property
    def pass_rate(self) -> float:
        return (self.samples - self.violations) / self.samples

    @property
    def clean(self) -> bool:
        return self.violations == 0


def _topology_failures(
    graph: Any,
    id_lists: List[List[int]],
    offset: int,
    scheduler: str,
    backend: str,
    sched_seed: int,
    max_rounds: int,
) -> List[Tuple[int, str]]:
    """Run one ear-fleet block and collect per-instance contract failures.

    Checks, per instance: the warm-up column battery at every round of
    the virtual ring (the ear kernel *is* Algorithm 1 over virtual IDs,
    so the Lemma 6 / Corollary 14 / conservation column forms apply
    verbatim), then the end state — a unique physical leader at the
    argmax vertex, every virtual counter settled at ``VIDmax``, and the
    exact ``L * IDmax * C`` pulse count.
    """
    from repro.simulator.fleet import run_ear_fleet

    failures: List[Tuple[int, str]] = []
    try:
        result = run_ear_fleet(
            graph,
            id_lists,
            backend=backend,
            scheduler=scheduler,
            seed=sched_seed,
            max_rounds=max_rounds,
            observer=_observer_for("warmup"),
            instance_offset=offset,
        )
    except InvariantViolation as violation:
        # A column invariant indicts the whole block; localize by
        # bisection exactly like the ring checker.
        if len(id_lists) == 1:
            return [(offset, f"column invariant: {violation}")]
        half = len(id_lists) // 2
        failures.extend(
            _topology_failures(
                graph, id_lists[:half], offset, scheduler, backend,
                sched_seed, max_rounds,
            )
        )
        failures.extend(
            _topology_failures(
                graph, id_lists[half:], offset + half, scheduler, backend,
                sched_seed, max_rounds,
            )
        )
        return failures

    routing = result.routing
    vid_max_rows = [max(vids) for vids in result.virtual.ids]
    for b, ids in enumerate(id_lists):
        index = offset + b
        expected = max(range(len(ids)), key=lambda v: ids[v])
        problems: List[str] = []
        if result.leaders[b] != expected:
            problems.append(
                f"leader {result.leaders[b]} != argmax vertex {expected}"
            )
        vid_max = vid_max_rows[b]
        if any(rho != vid_max for rho in result.virtual.rho_cw[b]):
            problems.append(
                f"virtual counters not settled at VIDmax={vid_max}"
            )
        expected_pulses = routing.length * max(ids) * routing.stride
        if result.virtual.total_pulses[b] != expected_pulses:
            problems.append(
                f"total pulses {result.virtual.total_pulses[b]} != "
                f"L*IDmax*C = {expected_pulses}"
            )
        if problems:
            failures.append((index, "; ".join(problems)))
    return failures


def run_topology_shard(
    n: int,
    edges: Sequence[Tuple[int, int]],
    id_max: int,
    start: int,
    stop: int,
    seed: int = 0,
    sched_seed: int = 0,
    scheduler: str = "lockstep",
    backend: str = "auto",
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> List[Tuple[int, str]]:
    """Ear-election contract failures over global indices ``[start, stop)``.

    The sweep farm's shard primitive for the ``ear`` workload: a pure
    function of ``(topology, id_max, seed, sched_seed, scheduler)`` and
    the index range — instance ``i`` always draws
    ``ids_for_instance(seed, i, n, id_max)`` regardless of sharding, so
    any partition of ``[0, total)`` reproduces the uninterrupted sweep.
    Returns the (index, message) failures in index order; an empty list
    is a clean shard.
    """
    from repro.graphs.connectivity import Graph, require_two_edge_connected

    graph = Graph.from_edges(n, [tuple(edge) for edge in edges])
    require_two_edge_connected(graph)
    failures: List[Tuple[int, str]] = []
    for block_start in range(start, stop, block_size):
        block_stop = min(block_start + block_size, stop)
        id_lists = [
            ids_for_instance(seed, index, n, id_max)
            for index in range(block_start, block_stop)
        ]
        failures.extend(
            _topology_failures(
                graph, id_lists, block_start, scheduler, backend,
                sched_seed, DEFAULT_MAX_ROUNDS,
            )
        )
    failures.sort(key=lambda pair: pair[0])
    return failures


def run_topology_check(
    graph: Any,
    id_max: int = 1000,
    samples: int = 200,
    seed: int = 0,
    sched_seed: int = 0,
    scheduler: str = "lockstep",
    backend: str = "auto",
    block_size: int = DEFAULT_BLOCK_SIZE,
    confidence: float = 0.99,
    max_counterexamples: int = 5,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> TopologyReport:
    """Statistically check the ear election's contract on one graph.

    Refuses graphs below the 2-edge-connectivity frontier with the
    bridge edge as witness (via the fleet's shared refusal path), then
    samples ID assignments — :func:`ids_for_instance`, the same
    counter-derived stream as the ring checker — and verifies the
    invariant battery plus the unique-leader / settled-counters /
    exact-pulse-count end state per instance.
    """
    if samples < 1:
        raise ConfigurationError(f"need at least one sample, got {samples}")
    if id_max < graph.n:
        raise ConfigurationError(
            f"id_max={id_max} cannot host {graph.n} distinct IDs"
        )
    if block_size < 1:
        raise ConfigurationError(f"block_size must be >= 1, got {block_size}")

    from repro.core.kernels import ear as ear_kernel
    from repro.graphs.connectivity import require_two_edge_connected

    require_two_edge_connected(graph)
    routing = ear_kernel.build_routing(graph)

    failures: List[Tuple[int, str]] = []
    for start in range(0, samples, block_size):
        stop = min(start + block_size, samples)
        id_lists = [
            ids_for_instance(seed, index, graph.n, id_max)
            for index in range(start, stop)
        ]
        failures.extend(
            _topology_failures(
                graph, id_lists, start, scheduler, backend, sched_seed,
                max_rounds,
            )
        )
    failures.sort(key=lambda pair: pair[0])

    resolved_backend = _resolved_backend(backend)
    edges = tuple(sorted(graph.edges))
    counterexamples = [
        TopologyCounterexample(
            instance=index,
            ids=tuple(ids_for_instance(seed, index, graph.n, id_max)),
            message=message,
            n=graph.n,
            edges=edges,
            seed=seed,
            sched_seed=sched_seed,
            scheduler=scheduler,
            backend=resolved_backend,
        )
        for index, message in failures[:max_counterexamples]
    ]
    violations = len(failures)
    low, high = clopper_pearson_interval(
        samples - violations, samples, confidence=confidence
    )
    return TopologyReport(
        n=graph.n,
        edges=len(edges),
        walk_length=routing.length,
        stride=routing.stride,
        id_max=id_max,
        samples=samples,
        violations=violations,
        confidence=confidence,
        rate_low=low,
        rate_high=high,
        backend=resolved_backend,
        scheduler=scheduler,
        seed=seed,
        sched_seed=sched_seed,
        counterexamples=counterexamples,
    )
