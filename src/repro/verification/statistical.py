"""Statistical model checking over fleet-sampled schedules.

The exhaustive explorers (:mod:`repro.verification.explorer`,
:mod:`repro.verification.reduced`) certify *every* schedule of one small
instance.  This module attacks the complementary regime — instances far
too large to enumerate — by sampling: it draws millions of random ID
assignments, runs each through the vectorized fleet engine
(:mod:`repro.simulator.fleet`), evaluates the executable-lemma battery
(:mod:`repro.core.invariants`, column forms) at every fleet round plus
the end-state Theorem 1 contract, and reports the invariant pass-rate
with an exact Clopper–Pearson confidence interval
(:func:`repro.analysis.stats.clopper_pearson_interval`).

Everything is a pure function of ``(seed, sched_seed)``:

* sample ``index`` gets the ID assignment
  :func:`ids_for_instance` ``(seed, index, n, id_max)`` — a counter-based
  derivation, independent of block sharding and process count;
* the fleet's seeded scheduler (when selected) is already counter-based.

So a violation found at sample ``index`` is *replayable*: the returned
:class:`Counterexample` carries everything needed to re-run exactly that
instance (:meth:`Counterexample.replay`) and re-raise the violation.

Violation localization.  The fleet simulates a block of ``B`` instances
at once, and a column invariant raises for the whole block.  The checker
then bisects the failing block — re-running halves until single
instances — which costs ``O(log B)`` extra fleet runs per violating
instance and attributes pass/fail exactly.  With many violations, the
search stops after ``max_counterexamples`` are localized and counts the
remaining failing sub-blocks' instances as failures (conservative for
the pass-rate, and the interval inherits the conservatism).

Fault injection (the checker's self-test): a
:class:`~repro.simulator.fleet.FleetFault` deletes in-flight pulses at a
chosen round.  Pulse loss is outside the model, so a correct kernel +
invariant battery must flag it; ``repro verify --statistical
--inject-drop`` demonstrates the full find → localize → replay loop.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.analysis.parallel import (
    ProcessCount,
    parallel_map,
    resolve_processes,
    shard_evenly,
)
from repro.analysis.stats import clopper_pearson_interval
from repro.core.invariants import InvariantViolation, column_invariants_for
from repro.exceptions import ConfigurationError
from repro.simulator.fleet import (
    DEFAULT_MAX_ROUNDS,
    FleetFault,
    FleetResult,
    _mix64,
    run_terminating_fleet,
)

#: Default fleet block size: big enough to amortize array dispatch,
#: small enough that bisecting a failing block stays cheap.
DEFAULT_BLOCK_SIZE = 8192

_KEY_SAMPLE = 0xA24BAED4963EE407  # odd constant for the per-sample stream


def ids_for_instance(seed: int, index: int, n: int, id_max: int) -> List[int]:
    """The ID assignment of sample ``index`` — pure in ``(seed, index)``.

    Draws ``n`` distinct IDs uniformly from ``[1, id_max]`` using a
    counter-derived RNG stream, so any shard layout (block size, process
    count) sees the same assignment for the same global sample index.
    """
    derived = _mix64(_mix64(seed) + index * _KEY_SAMPLE)
    rng = random.Random(derived)
    return rng.sample(range(1, id_max + 1), n)


@dataclass(frozen=True)
class Counterexample:
    """One localized, replayable invariant violation.

    ``instance`` is the global sample index; ``ids`` its ID assignment
    (recomputable from ``(seed, instance)``, stored for forensics).
    """

    instance: int
    ids: Tuple[int, ...]
    message: str
    algorithm: str
    seed: int
    sched_seed: int
    scheduler: str
    backend: str
    fault: Optional[FleetFault] = None

    def replay(self) -> Optional[str]:
        """Re-run exactly this instance; the violation message, or None.

        Returns the (possibly refined) violation message when the re-run
        reproduces a violation, None when it does not — determinism of
        the whole pipeline means a genuine counterexample always
        reproduces.
        """
        failures = _check_block(
            algorithm=self.algorithm,
            id_lists=[list(self.ids)],
            offset=self.instance,
            scheduler=self.scheduler,
            backend=self.backend,
            sched_seed=self.sched_seed,
            fault=self.fault,
            max_rounds=DEFAULT_MAX_ROUNDS,
            budget=1,
        )
        for index, message in failures:
            if index == self.instance:
                return message
        return None


@dataclass
class StatisticalReport:
    """Outcome of one statistical-checking run.

    ``violations`` counts failing samples; the pass-rate interval is the
    exact Clopper–Pearson interval at ``confidence`` for
    ``samples - violations`` successes out of ``samples``.
    """

    algorithm: str
    n: int
    id_max: int
    samples: int
    violations: int
    confidence: float
    rate_low: float
    rate_high: float
    backend: str
    scheduler: str
    seed: int
    sched_seed: int
    block_size: int
    counterexamples: List[Counterexample] = field(default_factory=list)

    @property
    def pass_rate(self) -> float:
        """Observed proportion of samples with no invariant violation."""
        return (self.samples - self.violations) / self.samples

    @property
    def clean(self) -> bool:
        """True when no sample violated any invariant."""
        return self.violations == 0


def _observer_for(algorithm: str) -> Optional[Callable[[Any], None]]:
    """Per-round battery: run every column invariant on the view."""
    try:
        battery = column_invariants_for(algorithm)
    except KeyError:
        return None

    def observe(view: Any) -> None:
        for check in battery:
            check(view)

    return observe


def _end_state_failures(
    algorithm: str, result: FleetResult, offset: int
) -> List[Tuple[int, str]]:
    """Theorem 1's end-state contract, attributed per instance."""
    failures: List[Tuple[int, str]] = []
    for b, ids in enumerate(result.ids):
        index = offset + b
        n, id_max = len(ids), max(ids)
        expected_leader = max(range(n), key=lambda v: ids[v])
        if result.terminated is not None and not all(result.terminated[b]):
            failures.append(
                (index, f"instance {index}: not all nodes terminated")
            )
        elif result.leaders[b] != [expected_leader]:
            failures.append(
                (
                    index,
                    f"instance {index}: leaders {result.leaders[b]} != "
                    f"[{expected_leader}] (the maximal-ID node)",
                )
            )
        elif result.total_pulses[b] != n * (2 * id_max + 1):
            failures.append(
                (
                    index,
                    f"instance {index}: total pulses {result.total_pulses[b]} "
                    f"!= n(2*IDmax+1) = {n * (2 * id_max + 1)}",
                )
            )
        elif result.ignored_deliveries:
            # Whole-fleet counter; only reachable when some instance also
            # fails a per-instance check, but keep it as a backstop.
            pass
    return failures


def _check_block(
    algorithm: str,
    id_lists: List[List[int]],
    offset: int,
    scheduler: str,
    backend: str,
    sched_seed: int,
    fault: Optional[FleetFault],
    max_rounds: int,
    budget: int,
) -> List[Tuple[int, str]]:
    """Failing ``(global_index, message)`` pairs within one block.

    Runs the whole block as one fleet; a per-round violation aborts the
    fleet run, so the block is bisected to localize it.  ``budget`` caps
    how many violations are localized exactly; once exceeded, a failing
    sub-block is attributed wholesale (every instance counted failing,
    with the block-level message).
    """
    try:
        result = run_terminating_fleet(
            id_lists,
            backend=backend,
            scheduler=scheduler,
            seed=sched_seed,
            max_rounds=max_rounds,
            observer=_observer_for(algorithm),
            fault=fault,
            instance_offset=offset,
        )
    except InvariantViolation as violation:
        if len(id_lists) == 1:
            return [(offset, str(violation))]
        if budget <= 0:
            return [
                (offset + b, f"unlocalized (budget exhausted): {violation}")
                for b in range(len(id_lists))
            ]
        half = len(id_lists) // 2
        left = _check_block(
            algorithm,
            id_lists[:half],
            offset,
            scheduler,
            backend,
            sched_seed,
            fault,
            max_rounds,
            budget,
        )
        right = _check_block(
            algorithm,
            id_lists[half:],
            offset + half,
            scheduler,
            backend,
            sched_seed,
            fault,
            max_rounds,
            budget - len(left),
        )
        return left + right
    return _end_state_failures(algorithm, result, offset)


def _worker(job: Tuple) -> List[Tuple[int, str]]:
    """Picklable shard worker: failing pairs across this shard's blocks."""
    (
        algorithm,
        n,
        id_max,
        indices,
        seed,
        sched_seed,
        scheduler,
        backend,
        block_size,
        fault,
        max_rounds,
        budget,
    ) = job
    failures: List[Tuple[int, str]] = []
    for start in range(0, len(indices), block_size):
        chunk = indices[start : start + block_size]
        id_lists = [ids_for_instance(seed, i, n, id_max) for i in chunk]
        failures.extend(
            _check_block(
                algorithm,
                id_lists,
                chunk[0],
                scheduler,
                backend,
                sched_seed,
                fault,
                max_rounds,
                budget - len(failures),
            )
        )
    return failures


def run_statistical_check(
    algorithm: str = "terminating",
    n: int = 8,
    id_max: int = 1000,
    samples: int = 1000,
    seed: int = 0,
    sched_seed: int = 0,
    scheduler: str = "lockstep",
    backend: str = "auto",
    block_size: int = DEFAULT_BLOCK_SIZE,
    confidence: float = 0.99,
    fault: Optional[FleetFault] = None,
    max_counterexamples: int = 5,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    processes: ProcessCount = 1,
) -> StatisticalReport:
    """Statistically model-check ``algorithm`` over sampled instances.

    Args:
        algorithm: Only ``"terminating"`` (Algorithm 2) today — the one
            algorithm with both a column invariant battery and an exact
            end-state theorem to check against.
        n: Ring size of every sampled instance.
        id_max: IDs are drawn uniformly (distinct) from ``[1, id_max]``.
        samples: Number of sampled instances.
        seed: Master seed of the ID-sampling stream (see
            :func:`ids_for_instance`).
        sched_seed: Seed of the fleet's ``"seeded"`` scheduler stream.
        scheduler: ``"lockstep"`` (default; lap-skip makes large
            ``id_max`` cheap) or ``"seeded"`` (random schedules, runtime
            grows with ``id_max``).
        backend: Fleet backend (``"auto"`` / ``"numpy"`` / ``"python"``).
        block_size: Instances per fleet run.
        confidence: Clopper–Pearson coverage for the pass-rate interval.
        fault: Optional injected pulse loss (the checker's self-test).
        max_counterexamples: How many violations to localize exactly
            (and record as replayable :class:`Counterexample` objects).
        max_rounds: Fleet safety bound.
        processes: Worker processes; samples are sharded evenly.
    """
    if algorithm != "terminating":
        raise ConfigurationError(
            "statistical checking currently supports algorithm='terminating' "
            f"only, got {algorithm!r}"
        )
    if samples < 1:
        raise ConfigurationError(f"need at least one sample, got {samples}")
    if n < 2:
        raise ConfigurationError(f"need a ring of at least 2 nodes, got n={n}")
    if id_max < n:
        raise ConfigurationError(
            f"id_max={id_max} cannot host {n} distinct IDs"
        )
    if block_size < 1:
        raise ConfigurationError(f"block_size must be >= 1, got {block_size}")

    indices = list(range(samples))
    shards = shard_evenly(indices, resolve_processes(processes))
    jobs = [
        (
            algorithm,
            n,
            id_max,
            shard,
            seed,
            sched_seed,
            scheduler,
            backend,
            block_size,
            fault,
            max_rounds,
            max_counterexamples,
        )
        for shard in shards
        if shard
    ]
    per_shard = parallel_map(_worker, jobs, processes=processes)
    failures = sorted(
        (pair for shard in per_shard for pair in shard), key=lambda p: p[0]
    )

    resolved_backend = backend
    if backend == "auto":
        from repro.simulator.fleet import HAVE_NUMPY

        resolved_backend = "numpy" if HAVE_NUMPY else "python"
    counterexamples = [
        Counterexample(
            instance=index,
            ids=tuple(ids_for_instance(seed, index, n, id_max)),
            message=message,
            algorithm=algorithm,
            seed=seed,
            sched_seed=sched_seed,
            scheduler=scheduler,
            backend=resolved_backend,
            fault=fault,
        )
        for index, message in failures[:max_counterexamples]
    ]
    violations = len(failures)
    low, high = clopper_pearson_interval(
        samples - violations, samples, confidence=confidence
    )
    return StatisticalReport(
        algorithm=algorithm,
        n=n,
        id_max=id_max,
        samples=samples,
        violations=violations,
        confidence=confidence,
        rate_low=low,
        rate_high=high,
        backend=resolved_backend,
        scheduler=scheduler,
        seed=seed,
        sched_seed=sched_seed,
        block_size=block_size,
        counterexamples=counterexamples,
    )
