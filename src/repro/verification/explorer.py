"""Exhaustive exploration of the asynchronous scheduling nondeterminism.

The asynchronous adversary's only power in this model is choosing, at
each step, which non-empty FIFO channel delivers its head message.  For
a fixed input, the set of executions therefore forms a finite branching
structure whose nodes are global states (all node states + all channel
queues).  This module walks that structure exhaustively:

* **State fingerprints.**  A global state is fingerprinted from every
  node's ``__dict__`` (recursively frozen) plus every channel's queue
  content.  Two schedules reaching the same fingerprint have
  behaviourally identical futures, so the search memoizes on it —
  turning the execution *tree* (exponential) into the reachable-state
  *graph* (typically small for the paper's algorithms, whose counters
  are bounded by IDmax).
* **Branching.**  From each state, one successor per non-empty channel
  (deep-copying the state and delivering that channel's head).
* **Certificates.**  The explorer records every terminal (quiescent)
  state's fingerprint and evaluates user invariants at every reachable
  state; `ExplorationResult.confluent` says whether all executions end
  in the same terminal state — exactly the schedule-invariance that
  Theorem 1's exact message count implies.

This is bounded model checking, not proof: it certifies one instance
(one ring, one ID assignment) over *all* its schedules.  The test-suite
runs it on a battery of small instances.

This module is the **unreduced reference search**: it expands every
enabled delivery at every state.  The partial-order-reduced search in
:mod:`repro.verification.reduced` visits far fewer states while
preserving the terminal-state certificates; the differential battery in
the test-suite holds the two (and the live engine) to identical
verdicts.  See ``docs/VERIFICATION.md``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.exceptions import ProtocolViolation, ReproError
from repro.simulator.network import Network
from repro.simulator.node import NodeAPI, check_port
from repro.core.schema import freeze_value, node_fingerprint
from repro.verification.common import build_fault_profile, run_state_checks

#: An engine-style invariant hook, evaluated at every explored state via
#: an :class:`~repro.verification.common.EngineView` adapter.
StateHook = Callable[[Any], None]


class ExplorationLimitExceeded(ReproError):
    """The reachable state space outgrew the configured budget."""


class _ExplorerAPI(NodeAPI):
    """Capability object used during exploration; writes into a _SimState."""

    __slots__ = ("_state", "_node_index")

    def __init__(self, state: "_SimState", node_index: int) -> None:
        self._state = state
        self._node_index = node_index

    def send(self, port: int, content: Any = None) -> None:
        num_ports = self._state.num_ports[self._node_index]
        self._state.send(self._node_index, check_port(port, num_ports), content)

    def terminate(self, output: Any = None) -> None:
        self._state.terminate(self._node_index, output)


class _SimState:
    """One global state: nodes + channel queues, deep-copyable."""

    __slots__ = (
        "nodes",
        "queues",
        "channel_dst",
        "channel_src_defective",
        "total_sent",
        "out_channel",
        "num_ports",
        "fault_profile",
        "fault_idx",
    )

    def __init__(self, network: Network) -> None:
        self.nodes = network.nodes
        self.queues: List[List[Any]] = [[] for _ in network.channels]
        self.channel_dst = [channel.dst for channel in network.channels]
        self.channel_src_defective = [channel.defective for channel in network.channels]
        self.out_channel = dict(network.out_channel)
        # Per-node port counts (>= 2 so ring diagnostics stay stable);
        # shared by all deep-copied states via the list's per-copy clone.
        self.num_ports = [2] * len(network.nodes)
        for (node, port) in self.out_channel:
            self.num_ports[node] = max(self.num_ports[node], port + 1)
        for channel in network.channels:
            self.num_ports[channel.dst_node] = max(
                self.num_ports[channel.dst_node], channel.dst_port + 1
            )
        self.total_sent = 0
        # Faulty networks: replay FaultyChannel's drop/duplicate decisions
        # per (channel, enqueue index); the profile is shared (its
        # __deepcopy__ returns self), only the indices are per-state.
        self.fault_profile = build_fault_profile(network)
        self.fault_idx = (
            [0] * len(network.channels) if self.fault_profile else None
        )

    # -- node-facing ----------------------------------------------------------

    def send(self, node_index: int, port: int, content: Any) -> None:
        node = self.nodes[node_index]
        if node.terminated:
            raise ProtocolViolation(
                f"node {node_index} attempted to send after terminating"
            )
        if port in node.SILENT_SEND_PORTS:
            raise ProtocolViolation(
                f"node {node_index} sent on port {port}, which its class "
                f"{type(node).__qualname__} declares silent (SILENT_SEND_PORTS)"
            )
        channel_id = self.out_channel[(node_index, port)]
        payload = None if self.channel_src_defective[channel_id] else content
        copies = 1
        if self.fault_profile is not None:
            copies = self.fault_profile.copies(
                channel_id, self.fault_idx[channel_id]
            )
            self.fault_idx[channel_id] += 1
        for _ in range(copies):
            self.queues[channel_id].append(payload)
        self.total_sent += 1

    def terminate(self, node_index: int, output: Any) -> None:
        self.nodes[node_index]._mark_terminated(output)

    # -- exploration plumbing ---------------------------------------------------

    def nonempty(self) -> List[int]:
        return [cid for cid, queue in enumerate(self.queues) if queue]

    def pending_messages(self) -> int:
        return sum(len(queue) for queue in self.queues)

    def deliver(self, channel_id: int) -> bool:
        """Deliver the FIFO head of ``channel_id``.

        Returns True when the pulse was delivered to (and ignored by) an
        already-terminated node — a quiescent-termination violation.
        """
        content = self.queues[channel_id].pop(0)
        receiver_index, receiver_port = self.channel_dst[channel_id]
        receiver = self.nodes[receiver_index]
        if receiver.terminated:
            return True
        receiver.on_message(
            _ExplorerAPI(self, receiver_index), receiver_port, content
        )
        return False

    def init_all(self) -> None:
        for index, node in enumerate(self.nodes):
            node.on_init(_ExplorerAPI(self, index))

    def fingerprint(self) -> Tuple:
        queues = tuple(
            tuple(freeze_value(item) for item in queue) for queue in self.queues
        )
        if self.fault_idx is not None:
            # With faults, future behaviour depends on each channel's roll
            # position, so it is part of the state.
            return (node_fingerprint(self.nodes), queues, tuple(self.fault_idx))
        return (node_fingerprint(self.nodes), queues)


@dataclass
class ExplorationResult:
    """Outcome of exhausting one instance's schedule space.

    Attributes:
        states_explored: Number of distinct reachable global states.
        transitions: Number of state transitions examined (≈ schedules
            collapsed by memoization).
        terminal_fingerprints: Distinct quiescent end states reached.
        terminal_outputs: The per-node outputs/states of each distinct
            terminal state (parallel to ``terminal_fingerprints``).
        terminal_total_sent: Total messages sent on the way into each
            distinct terminal state (parallel again) — the exact message
            complexity certified per end state.
        quiescence_violations: Number of explored transitions that
            delivered a pulse to a terminated node.
        max_in_flight: Largest number of simultaneously in-flight pulses
            seen anywhere in the state space.
    """

    states_explored: int
    transitions: int
    terminal_fingerprints: List[Tuple]
    terminal_outputs: List[Tuple]
    quiescence_violations: int
    max_in_flight: int
    terminal_total_sent: List[int] = field(default_factory=list)

    @property
    def confluent(self) -> bool:
        """All schedules funnel into one terminal state."""
        return len(self.terminal_fingerprints) == 1

    @property
    def terminal_node_fingerprints(self) -> List[Tuple]:
        """The node-state component of each terminal fingerprint.

        Channel queues are empty at quiescence, so this component is the
        whole observable end state; it is the shared currency of the
        reduced-vs-unreduced-vs-engine differential tests.
        """
        return [fingerprint[0] for fingerprint in self.terminal_fingerprints]


def explore_all_schedules(
    network_factory: Callable[[], Network],
    invariant: Optional[Callable[[Sequence[Any]], None]] = None,
    max_states: int = 2_000_000,
    invariant_hooks: Sequence[StateHook] = (),
) -> ExplorationResult:
    """Exhaustively explore every delivery schedule of a network.

    Args:
        network_factory: Builds a *fresh* network (fresh node objects) —
            called once; exploration proceeds by deep-copying states.
        invariant: Optional callback receiving the node list at every
            newly reached state; it should raise ``AssertionError`` to
            report a violation (aborting the exploration).
        max_states: Budget on distinct states before raising
            :class:`ExplorationLimitExceeded`.
        invariant_hooks: Engine-style hooks (e.g. the executable lemmas
            in :mod:`repro.core.invariants`) evaluated at every explored
            state through an :class:`~repro.verification.common.EngineView`.

    Returns:
        An :class:`ExplorationResult` certificate for this instance.
    """
    root = _SimState(network_factory())
    root.init_all()

    def check(state: _SimState) -> None:
        run_state_checks(
            state.nodes, state.pending_messages(), invariant, invariant_hooks
        )

    check(root)

    seen: Set[Tuple] = set()
    terminal_fingerprints: List[Tuple] = []
    terminal_outputs: List[Tuple] = []
    terminal_total_sent: List[int] = []
    transitions = 0
    violations = 0
    max_in_flight = root.pending_messages()

    stack: List[_SimState] = [root]
    seen.add(root.fingerprint())

    while stack:
        state = stack.pop()
        candidates = state.nonempty()
        if not candidates:
            fp = state.fingerprint()
            if fp not in set(terminal_fingerprints):
                terminal_fingerprints.append(fp)
                terminal_outputs.append(
                    tuple(freeze_value(getattr(node, "output", None)) for node in state.nodes)
                )
                terminal_total_sent.append(state.total_sent)
            continue
        for channel_id in candidates:
            successor = copy.deepcopy(state)
            transitions += 1
            if successor.deliver(channel_id):
                violations += 1
            fp = successor.fingerprint()
            if fp in seen:
                continue
            seen.add(fp)
            if len(seen) > max_states:
                raise ExplorationLimitExceeded(
                    f"more than {max_states} reachable states; "
                    "shrink the instance or raise max_states"
                )
            check(successor)
            in_flight = successor.pending_messages()
            max_in_flight = max(max_in_flight, in_flight)
            stack.append(successor)

    return ExplorationResult(
        states_explored=len(seen),
        transitions=transitions,
        terminal_fingerprints=terminal_fingerprints,
        terminal_outputs=terminal_outputs,
        quiescence_violations=violations,
        max_in_flight=max_in_flight,
        terminal_total_sent=terminal_total_sent,
    )
