"""Ring-symmetry reduction: canonicalize explorer states under the ring's
automorphism group.

Leader election on a ring is maximally symmetric: rotating the clockwise
node numbering, and (for the non-oriented setting) reflecting the walk
direction, are isomorphisms of the *model* — they permute nodes, edges,
and port-flip bits but leave every transition kernel's behaviour alone,
because a node's reaction depends only on its own local state and the
local port a pulse arrives at, never on its global position.  Formally,
for every group element :math:`g` and every enabled delivery :math:`t`,

.. math::  g(\\mathrm{deliver}_t(s)) = \\mathrm{deliver}_{g(t)}(g(s)),

so :math:`g` maps reachable states of instance :math:`I` to reachable
states of instance :math:`g(I)` (the rotated/reflected ID-and-flip
assignment) and terminal states to terminal states.  One exploration of a
representative therefore certifies the **whole orbit of instances** —
all :math:`n` rotations, and with orientation-duals all :math:`2n`
dihedral images — at the cost of one.

:class:`RingSymmetry` holds the group concretely: per element, a
node-source permutation, a channel-source permutation, and the image of
the static per-node port-flip bits.  The canonical form of a state is
the lexicographic minimum, over group elements, of the packed byte
serialization (``flip image ‖ permuted node fingerprints ‖ permuted
queue states``); packed bytes (:func:`repro.core.schema.pack_frozen`)
compare totally even when node states mix ``None``/enums/ints, which
raw tuples do not.  The flip bits are part of the serialization so two
orbit instances with identical counters but different wirings can never
collide.

Within a single instance with **unique IDs** the stabilizer is trivial
(every non-identity image carries a different ID arrangement), so
canonicalization merges no intra-instance states — the reduction factor
is exactly the orbit size, realized as certificate breadth.  With
duplicate IDs (Algorithm 1 allows them, Lemma 16) the stabilizer is the
rotation subgroup fixing the ID-and-flip pattern and genuinely distinct
reachable states merge.

Soundness boundary: a per-channel fault profile breaks the symmetry
(channel :math:`c` and :math:`g(c)` see different drop patterns), so
:func:`RingSymmetry.from_network` refuses faulted networks.  The
structural requirements — builder-convention channel numbering, fully
defective channels — are validated, never assumed; an unrecognized
topology raises :class:`~repro.exceptions.ConfigurationError` rather
than silently unsound reduction.  See ``docs/VERIFICATION.md`` for the
full argument and for how the sleep-set layer composes with this one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.schema import pack_frozen
from repro.exceptions import ConfigurationError
from repro.simulator.network import Network
from repro.simulator.node import PORT_ONE, PORT_ZERO


@dataclass(frozen=True)
class GroupElement:
    """One ring automorphism, in source-index form.

    The element maps a state ``s`` to its image ``s'`` with
    ``s'.node[j] = s.node[node_src[j]]`` and
    ``s'.queue[c] = s.queue[chan_src[c]]``; ``flip_image[j]`` is the
    image instance's port-flip bit at position ``j``.
    """

    name: str
    node_src: Tuple[int, ...]
    chan_src: Tuple[int, ...]
    flip_image: Tuple[bool, ...]


def _ring_flips(network: Network) -> Tuple[bool, ...]:
    """Recover per-node flip bits, validating the ring builder convention.

    The builders in :mod:`repro.simulator.ring` emit, for edge ``e``
    joining positions ``e`` and ``e+1 (mod n)``, the CW channel ``2e``
    (``e -> e+1``) followed by the CCW channel ``2e+1`` (``e+1 -> e``),
    with endpoints on each node's CW/CCW ports as determined by its flip
    bit.  Anything else is not a ring this module knows the automorphisms
    of.
    """
    n = len(network.nodes)
    channels = network.channels
    if n < 1 or len(channels) != 2 * n:
        raise ConfigurationError(
            f"symmetry reduction needs a ring ({2 * n} channels for "
            f"{n} nodes); got {len(channels)} channels"
        )
    flips: List[bool] = [False] * n
    for e in range(n):
        j = (e + 1) % n
        cw, ccw = channels[2 * e], channels[2 * e + 1]
        if not (cw.defective and ccw.defective):
            raise ConfigurationError(
                "symmetry reduction supports fully defective (content-"
                "oblivious) rings only"
            )
        ok = (
            cw.src_node == e
            and cw.dst_node == j
            and ccw.src_node == j
            and ccw.dst_node == e
            and cw.src_port == ccw.dst_port
            and cw.dst_port == ccw.src_port
        )
        if not ok:
            raise ConfigurationError(
                f"channels {2 * e},{2 * e + 1} do not follow the ring "
                "builder convention; symmetry reduction is unavailable"
            )
        flips[e] = cw.src_port == PORT_ZERO
    # Cross-check: the CW channel into node j must land on j's CCW port.
    for e in range(n):
        j = (e + 1) % n
        expected_dst = PORT_ONE if flips[j] else PORT_ZERO
        if channels[2 * e].dst_port != expected_dst:
            raise ConfigurationError(
                "inconsistent port wiring; symmetry reduction is unavailable"
            )
    return tuple(flips)


def _rotation(n: int, flips: Sequence[bool], k: int) -> GroupElement:
    """Rotation by ``k``: position ``j`` of the image holds original ``j+k``."""
    node_src = tuple((j + k) % n for j in range(n))
    chan_src: List[int] = []
    for e in range(n):
        src_edge = (e + k) % n
        chan_src.extend((2 * src_edge, 2 * src_edge + 1))
    flip_image = tuple(flips[(j + k) % n] for j in range(n))
    return GroupElement(
        name=f"rot{k}",
        node_src=node_src,
        chan_src=tuple(chan_src),
        flip_image=flip_image,
    )


def _reflection(n: int, flips: Sequence[bool]) -> GroupElement:
    """The orientation-dual: traverse the same physical ring backwards.

    Position ``j`` of the image holds original ``n-1-j`` with its flip
    bit negated; edge ``e`` of the image is original edge ``n-2-e`` with
    its CW and CCW directions swapped (exactly the transformation the
    metamorphic orientation-flip duality test pins on live runs).
    """
    node_src = tuple((n - 1 - j) % n for j in range(n))
    chan_src: List[int] = []
    for e in range(n):
        src_edge = (n - 2 - e) % n
        chan_src.extend((2 * src_edge + 1, 2 * src_edge))
    flip_image = tuple(not flips[(n - 1 - j) % n] for j in range(n))
    return GroupElement(
        name="refl",
        node_src=node_src,
        chan_src=tuple(chan_src),
        flip_image=flip_image,
    )


class RingSymmetry:
    """The concrete automorphism group of one ring instance.

    Args:
        network: A ring network following the builder convention.
        include_duals: Add the orientation-dual coset (reflections),
            doubling the group to the full dihedral action.  Sound for
            algorithms whose instances carry explicit flip bits
            (Algorithm 3); chirality-asymmetric oriented algorithms
            (Algorithm 2 prioritizes CW) should keep rotations only,
            since their reflected instances are not oriented rings.
    """

    def __init__(self, network: Network, include_duals: bool = False) -> None:
        self.n = len(network.nodes)
        self.flips = _ring_flips(network)
        self.include_duals = include_duals
        elements = [_rotation(self.n, self.flips, k) for k in range(self.n)]
        if include_duals:
            refl = _reflection(self.n, self.flips)
            for k in range(self.n):
                rot = elements[k]
                # rot_k ∘ refl: reflect, then rotate the reflected ring.
                node_src = tuple(
                    refl.node_src[rot.node_src[j]] for j in range(self.n)
                )
                chan_src = tuple(
                    refl.chan_src[rot.chan_src[c]] for c in range(2 * self.n)
                )
                flip_image = tuple(
                    refl.flip_image[rot.node_src[j]] for j in range(self.n)
                )
                elements.append(
                    GroupElement(
                        name=f"refl∘rot{k}",
                        node_src=node_src,
                        chan_src=chan_src,
                        flip_image=flip_image,
                    )
                )
        self.elements: Tuple[GroupElement, ...] = tuple(elements)
        # Static per-element prefix: the image instance's flip bits.  Two
        # group images with identical counters but different wirings must
        # not collide, so the wiring is part of every serialized form.
        self._flip_prefix = tuple(
            pack_frozen(element.flip_image) for element in self.elements
        )
        # chan_to_canonical[i][cid] = the channel label ``cid`` gets in
        # element ``i``'s image — the inverse of ``chan_src``, used to
        # translate sleep/explored sets into canonical coordinates.
        inv: List[Tuple[int, ...]] = []
        for element in self.elements:
            mapping = [0] * len(element.chan_src)
            for target, source in enumerate(element.chan_src):
                mapping[source] = target
            inv.append(tuple(mapping))
        self._chan_to_canonical = tuple(inv)

    @classmethod
    def from_network(
        cls, network: Network, include_duals: bool = False
    ) -> "RingSymmetry":
        """Build the group, validating ring structure (see module doc)."""
        return cls(network, include_duals=include_duals)

    @property
    def order(self) -> int:
        """Number of group elements (``n`` or ``2n``)."""
        return len(self.elements)

    # -- serialization under the group ------------------------------------

    def serialize(
        self,
        element_index: int,
        node_packed: Sequence[bytes],
        queue_packed: Sequence[bytes],
    ) -> bytes:
        """The packed byte form of one group image of a state.

        ``node_packed[v]`` / ``queue_packed[c]`` are the pre-packed
        (:func:`~repro.core.schema.pack_frozen`) per-node and per-channel
        components of the *actual* state; the element permutes them.
        Every component is self-delimiting, so the concatenation is
        injective for a fixed ``(n, channel count)``.
        """
        element = self.elements[element_index]
        return (
            self._flip_prefix[element_index]
            + b"".join(node_packed[src] for src in element.node_src)
            + b"".join(queue_packed[src] for src in element.chan_src)
        )

    def canonical(
        self,
        node_packed: Sequence[bytes],
        queue_packed: Sequence[bytes],
    ) -> Tuple[bytes, int, bool]:
        """Minimal serialized group image, the element achieving it, and
        whether that element is ambiguous.

        Ambiguity (two elements producing the same minimal bytes) means
        the state has a nontrivial stabilizer — possible only with
        duplicate IDs — and then canonical *channel labels* are only
        defined up to the stabilizer.  Callers that store per-channel
        data in canonical coordinates (the sleep-set layer) must treat
        ambiguous states conservatively.
        """
        best = self.serialize(0, node_packed, queue_packed)
        best_index = 0
        ambiguous = False
        for index in range(1, len(self.elements)):
            candidate = self.serialize(index, node_packed, queue_packed)
            if candidate < best:
                best, best_index, ambiguous = candidate, index, False
            elif candidate == best:
                ambiguous = True
        return best, best_index, ambiguous

    def orbit_factor(
        self,
        node_packed: Sequence[bytes],
        queue_packed: Sequence[bytes],
    ) -> int:
        """Distinct group images of a state — at the (deterministic) root
        state this counts the distinct *instances* the exploration
        certifies (group order divided by the instance's stabilizer)."""
        return len(
            {
                self.serialize(index, node_packed, queue_packed)
                for index in range(len(self.elements))
            }
        )

    # -- coordinate translation -------------------------------------------

    def to_canonical_channel(self, element_index: int, channel_id: int) -> int:
        """The label ``channel_id`` carries inside element ``i``'s image."""
        return self._chan_to_canonical[element_index][channel_id]

    def permute_nodes(self, element_index: int, nodes: Sequence) -> List:
        """The image's node list (a reordering of the same node objects).

        Used by the invariant spot-check: hooks evaluated on this list
        certify the invariant at one non-identity group image of the
        visited representative.
        """
        element = self.elements[element_index]
        return [nodes[src] for src in element.node_src]
