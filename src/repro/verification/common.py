"""Machinery shared by the unreduced and reduced schedule explorers.

Two concerns live here so that :mod:`repro.verification.explorer` (the
trusted reference search) and :mod:`repro.verification.reduced` (the
partial-order-reduced search) stay byte-for-byte comparable:

* **Fingerprint freezing** — :func:`freeze_value` converts arbitrary node
  state into hashable, order-stable tuples; :func:`node_fingerprint` is
  the canonical "all node states" digest both explorers (and the
  differential tests, via live :class:`~repro.simulator.engine.Engine`
  runs) use to compare terminal states.  The canonical implementations
  now live in :mod:`repro.core.schema` (next to the kernel state
  schemas); this module re-exports them unchanged.
* **Invariant-hook adapters** — the executable lemmas in
  :mod:`repro.core.invariants` are written against a running engine but
  only ever touch ``engine.network.nodes`` and
  ``engine.network.pending_messages()``.  :class:`EngineView` provides
  exactly that surface for an explorer state, so the same hook objects
  certify invariants at every explored state.

Fault emulation — historically a third concern here — moved to
:mod:`repro.faults.profile`: :class:`~repro.faults.profile.ReplayProfile`
replays a faulted network's per-send decisions as a pure function of
``(channel_id, send_index)``, with no cached RNG streams.  ``FaultProfile``
and :func:`build_fault_profile` remain importable from here as aliases.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.schema import (  # noqa: F401  (re-exported, canonical home)
    freeze_value,
    node_fingerprint,
    node_state_dict,
)
from repro.faults.profile import (  # noqa: F401  (re-exported, canonical home)
    FaultProfile,
    ReplayProfile,
    build_fault_profile,
)


class _NetworkFacade:
    """Duck-typed stand-in for a :class:`~repro.simulator.network.Network`."""

    __slots__ = ("nodes", "_pending")

    def __init__(self, nodes: Sequence[Any], pending: int) -> None:
        self.nodes = nodes
        self._pending = pending

    def pending_messages(self) -> int:
        return self._pending


class EngineView:
    """Adapter letting engine invariant hooks run on an explorer state.

    The hooks in :mod:`repro.core.invariants` receive "the engine" but
    only consult ``engine.network`` — its node list and its in-flight
    message count.  An :class:`EngineView` packages one explored global
    state behind that exact surface.
    """

    __slots__ = ("network",)

    def __init__(self, nodes: Sequence[Any], pending: int) -> None:
        self.network = _NetworkFacade(nodes, pending)
