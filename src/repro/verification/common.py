"""Machinery shared by the unreduced and reduced schedule explorers.

Three concerns live here so that :mod:`repro.verification.explorer` (the
trusted reference search) and :mod:`repro.verification.reduced` (the
partial-order-reduced search) stay byte-for-byte comparable:

* **Fingerprint freezing** — :func:`freeze_value` converts arbitrary node
  state into hashable, order-stable tuples; :func:`node_fingerprint` is
  the canonical "all node states" digest both explorers (and the
  differential tests, via live :class:`~repro.simulator.engine.Engine`
  runs) use to compare terminal states.  The canonical implementations
  now live in :mod:`repro.core.schema` (next to the kernel state
  schemas); this module re-exports them unchanged.
* **Invariant-hook adapters** — the executable lemmas in
  :mod:`repro.core.invariants` are written against a running engine but
  only ever touch ``engine.network.nodes`` and
  ``engine.network.pending_messages()``.  :class:`EngineView` provides
  exactly that surface for an explorer state, so the same hook objects
  certify invariants at every explored state.
* **Fault emulation** — :class:`~repro.simulator.faults.FaultyChannel`
  decides drops/duplications with a per-channel seeded RNG, one roll per
  enqueue.  :func:`build_fault_profile` reproduces those roll streams as
  a pure function of ``(channel_id, enqueue_index)`` so exploration can
  branch over delivery schedules while keeping the fault pattern exactly
  the one the live engine would inject.
"""

from __future__ import annotations

import random
from typing import Any, Optional, Sequence

from repro.core.schema import (  # noqa: F401  (re-exported, canonical home)
    freeze_value,
    node_fingerprint,
    node_state_dict,
)
from repro.simulator.faults import FaultyChannel
from repro.simulator.network import Network


class _NetworkFacade:
    """Duck-typed stand-in for a :class:`~repro.simulator.network.Network`."""

    __slots__ = ("nodes", "_pending")

    def __init__(self, nodes: Sequence[Any], pending: int) -> None:
        self.nodes = nodes
        self._pending = pending

    def pending_messages(self) -> int:
        return self._pending


class EngineView:
    """Adapter letting engine invariant hooks run on an explorer state.

    The hooks in :mod:`repro.core.invariants` receive "the engine" but
    only consult ``engine.network`` — its node list and its in-flight
    message count.  An :class:`EngineView` packages one explored global
    state behind that exact surface.
    """

    __slots__ = ("network",)

    def __init__(self, nodes: Sequence[Any], pending: int) -> None:
        self.network = _NetworkFacade(nodes, pending)


class FaultProfile:
    """Deterministic replay of a network's per-channel fault rolls.

    ``copies(channel_id, index)`` answers how many copies of the
    ``index``-th message enqueued on ``channel_id`` actually enter the
    queue: 0 (dropped), 1 (clean), or 2 (duplicated).  The underlying
    roll streams are lazily extended and cached, so the answer is a pure
    function of its arguments — exploration may replay any prefix in any
    branch order and still observe the exact fault pattern of
    :class:`~repro.simulator.faults.FaultyChannel`.
    """

    def __init__(self, network: Network) -> None:
        self._plans = {}
        self._rngs = {}
        self._rolls: dict = {}
        for channel in network.channels:
            if isinstance(channel, FaultyChannel):
                plan = channel._plan
                self._plans[channel.channel_id] = plan
                # Same stream construction as FaultyChannel.__init__.
                self._rngs[channel.channel_id] = random.Random(
                    (plan.seed << 16) ^ channel.channel_id
                )
                self._rolls[channel.channel_id] = []

    def __bool__(self) -> bool:
        return bool(self._plans)

    def is_faulty(self, channel_id: int) -> bool:
        return channel_id in self._plans

    def copies(self, channel_id: int, index: int) -> int:
        plan = self._plans.get(channel_id)
        if plan is None:
            return 1
        rolls = self._rolls[channel_id]
        rng = self._rngs[channel_id]
        while len(rolls) <= index:
            rolls.append(rng.random())
        roll = rolls[index]
        if roll < plan.drop_rate:
            return 0
        if roll < plan.drop_rate + plan.duplicate_rate:
            return 2
        return 1

    # The profile is an immutable-by-contract cache shared by every
    # explored state; deep-copying a state must not fork it.
    def __deepcopy__(self, memo: dict) -> "FaultProfile":
        return self


def build_fault_profile(network: Network) -> Optional[FaultProfile]:
    """A :class:`FaultProfile` for ``network``, or None when unfaulted."""
    profile = FaultProfile(network)
    return profile if profile else None
