"""Machinery shared by the unreduced and reduced schedule explorers.

Two concerns live here so that :mod:`repro.verification.explorer` (the
trusted reference search) and :mod:`repro.verification.reduced` (the
partial-order-reduced search) stay byte-for-byte comparable:

* **Fingerprint freezing** — :func:`freeze_value` converts arbitrary node
  state into hashable, order-stable tuples; :func:`node_fingerprint` is
  the canonical "all node states" digest both explorers (and the
  differential tests, via live :class:`~repro.simulator.engine.Engine`
  runs) use to compare terminal states.  The canonical implementations
  now live in :mod:`repro.core.schema` (next to the kernel state
  schemas); this module re-exports them unchanged.
* **Invariant-hook adapters** — the executable lemmas in
  :mod:`repro.core.invariants` are written against a running engine but
  only ever touch ``engine.network.nodes`` and
  ``engine.network.pending_messages()``.  :class:`EngineView` provides
  exactly that surface for an explorer state, so the same hook objects
  certify invariants at every explored state.

Fault emulation — historically a third concern here — moved to
:mod:`repro.faults.profile`: :class:`~repro.faults.profile.ReplayProfile`
replays a faulted network's per-send decisions as a pure function of
``(channel_id, send_index)``, with no cached RNG streams.  ``FaultProfile``
and :func:`build_fault_profile` remain importable from here as aliases.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
from typing import Any, Callable, FrozenSet, Iterable, Optional, Sequence

from repro.core.schema import (  # noqa: F401  (re-exported, canonical home)
    freeze_value,
    node_fingerprint,
    node_state_dict,
    pack_frozen,
    packed_fingerprint,
)
from repro.faults.profile import (  # noqa: F401  (re-exported, canonical home)
    FaultProfile,
    ReplayProfile,
    build_fault_profile,
)


class _NetworkFacade:
    """Duck-typed stand-in for a :class:`~repro.simulator.network.Network`."""

    __slots__ = ("nodes", "_pending")

    def __init__(self, nodes: Sequence[Any], pending: int) -> None:
        self.nodes = nodes
        self._pending = pending

    def pending_messages(self) -> int:
        return self._pending


class EngineView:
    """Adapter letting engine invariant hooks run on an explorer state.

    The hooks in :mod:`repro.core.invariants` receive "the engine" but
    only consult ``engine.network`` — its node list and its in-flight
    message count.  An :class:`EngineView` packages one explored global
    state behind that exact surface.
    """

    __slots__ = ("network",)

    def __init__(self, nodes: Sequence[Any], pending: int) -> None:
        self.network = _NetworkFacade(nodes, pending)


def run_state_checks(
    nodes: Sequence[Any],
    pending: int,
    invariant: Optional[Callable[[Sequence[Any]], None]],
    invariant_hooks: Sequence[Callable[[Any], None]],
) -> None:
    """Evaluate a user invariant + engine-style hooks at one explored state.

    The shared check both explorers perform at every newly visited state:
    the positional ``invariant`` callback receives the raw node list; each
    hook receives an :class:`EngineView` of the state.  Either aborts the
    exploration by raising (``AssertionError`` /
    :class:`~repro.core.invariants.InvariantViolation`).
    """
    if invariant is not None:
        invariant(nodes)
    if invariant_hooks:
        view = EngineView(nodes, pending)
        for hook in invariant_hooks:
            hook(view)


# ---------------------------------------------------------------------------
# Compact, optionally disk-spilled visited sets.
# ---------------------------------------------------------------------------

#: Rough per-entry bookkeeping cost of a Python dict/set slot holding a
#: small ``bytes`` key (pointer + hash + allocator overhead).  Only used
#: for the spill heuristic and the reported telemetry; it does not need
#: to be exact, just monotone in the real footprint.
_ENTRY_OVERHEAD = 96


def _encode_labels(labels: Iterable[int]) -> bytes:
    """Sorted LEB128 stream — the on-disk form of a transition-label set."""
    out = bytearray()
    for label in sorted(labels):
        while True:
            byte = label & 0x7F
            label >>= 7
            if label:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def _decode_labels(blob: bytes) -> FrozenSet[int]:
    labels = []
    value = shift = 0
    for byte in blob:
        value |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
        else:
            labels.append(value)
            value = shift = 0
    return frozenset(labels)


class VisitedStore:
    """A visited set keyed on packed byte fingerprints, spillable to disk.

    Two shapes, picked at construction:

    * membership only (``track_payload=False``) — :meth:`add` returns
      whether the key was new;
    * key → label-set payload (``track_payload=True``) — the sleep-set
      search stores, per visited state, the stored sleep set the state
      was last (re-)explored with (:meth:`get_payload` /
      :meth:`set_payload`).

    The store starts as an in-memory ``set``/``dict``.  When
    ``spill_threshold`` (bytes) is given and the estimated footprint
    exceeds it, all entries migrate into a stdlib ``sqlite3`` database
    under ``spill_dir`` (a private temp dir by default) and subsequent
    operations hit the database — bounding resident memory at frontier
    budgets at the price of per-op latency.  ``peak_bytes`` always
    reports the estimated *logical* footprint (what the in-memory form
    would have cost), which is the capacity-planning number the bench
    records.
    """

    def __init__(
        self,
        track_payload: bool = False,
        spill_dir: Optional[str] = None,
        spill_threshold: Optional[int] = None,
    ) -> None:
        self.track_payload = track_payload
        self.spill_threshold = spill_threshold
        self._spill_dir = spill_dir
        self._mem_set: Optional[set] = None if track_payload else set()
        self._mem_map: Optional[dict] = {} if track_payload else None
        self._approx_bytes = 0
        self.peak_bytes = 0
        self.spilled = False
        self._count = 0
        self._conn: Optional[sqlite3.Connection] = None
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None

    def __len__(self) -> int:
        return self._count

    # -- membership mode ---------------------------------------------------

    def add(self, key: bytes) -> bool:
        """Insert ``key``; True iff it was not present before."""
        if self._conn is not None:
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO visited (k) VALUES (?)", (key,)
            )
            if cursor.rowcount == 0:
                return False
        else:
            if key in self._mem_set:
                return False
            self._mem_set.add(key)
        self._count += 1
        self._grow(len(key) + _ENTRY_OVERHEAD)
        return True

    # -- payload mode ------------------------------------------------------

    def get_payload(self, key: bytes) -> Optional[FrozenSet[int]]:
        """The stored label set, or None when ``key`` was never visited."""
        if self._conn is not None:
            row = self._conn.execute(
                "SELECT p FROM visited WHERE k = ?", (key,)
            ).fetchone()
            return None if row is None else _decode_labels(row[0])
        return self._mem_map.get(key)

    def set_payload(self, key: bytes, labels: FrozenSet[int]) -> None:
        """Insert or overwrite ``key``'s label set."""
        if self._conn is not None:
            cursor = self._conn.execute(
                "UPDATE visited SET p = ? WHERE k = ?",
                (_encode_labels(labels), key),
            )
            if cursor.rowcount == 0:
                self._conn.execute(
                    "INSERT INTO visited (k, p) VALUES (?, ?)",
                    (key, _encode_labels(labels)),
                )
                self._count += 1
                self._grow(len(key) + _ENTRY_OVERHEAD + 8 * len(labels))
            return
        if key not in self._mem_map:
            self._count += 1
            self._grow(len(key) + _ENTRY_OVERHEAD + 8 * len(labels))
        self._mem_map[key] = frozenset(labels)

    # -- spill plumbing ----------------------------------------------------

    def _grow(self, nbytes: int) -> None:
        self._approx_bytes += nbytes
        if self._approx_bytes > self.peak_bytes:
            self.peak_bytes = self._approx_bytes
        if (
            self._conn is None
            and self.spill_threshold is not None
            and self._approx_bytes > self.spill_threshold
        ):
            self._spill()

    def _spill(self) -> None:
        directory = self._spill_dir
        if directory is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-visited-")
            directory = self._tmpdir.name
        path = os.path.join(directory, "visited.sqlite")
        self._conn = sqlite3.connect(path)
        self._conn.execute("PRAGMA journal_mode = OFF")
        self._conn.execute("PRAGMA synchronous = OFF")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS visited (k BLOB PRIMARY KEY, p BLOB)"
        )
        if self.track_payload:
            self._conn.executemany(
                "INSERT OR REPLACE INTO visited (k, p) VALUES (?, ?)",
                (
                    (key, _encode_labels(labels))
                    for key, labels in self._mem_map.items()
                ),
            )
            self._mem_map = {}
        else:
            self._conn.executemany(
                "INSERT OR IGNORE INTO visited (k) VALUES (?)",
                ((key,) for key in self._mem_set),
            )
            self._mem_set = set()
        self._conn.commit()
        self.spilled = True

    def close(self) -> None:
        """Release the database and its temp directory (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None
