"""One declarative fault language, compiled onto every backend.

:class:`FaultModel` states *what the adversary may do* — per-pulse
drop/duplicate rates, spurious injection, bounded bursts, node
crash(-restart), transient state corruption, probabilistic fail-stop
(``crash_rate``), and correlated :class:`FaultGroup` clauses (crash +
drops + burst bound to one anchor and one trigger) — once, against the
kernel ``SCHEMA``\\ s.  Each backend gets a thin compiler:

* event-driven + batched engines → :class:`FaultyChannel`
  (:func:`apply_fault_model`);
* fleet NumPy + pure-Python columns → :class:`~repro.faults.fleet.DirectionFaults`
  / :class:`~repro.faults.fleet.TerminatingFaults`;
* schedule explorers → :class:`ReplayProfile` (pure-function replay).

All randomness is counter-based (:func:`roll_u64`): a decision is a pure
function of ``(seed, kind, instance, round, channel, pulse)``, so any
run — solo, sharded, or branched — replays bit-identically.

The historical per-backend spellings (``FaultPlan``, ``FaultProfile``,
``FleetFault``) survive as aliases over this model.
"""

from repro.faults.channel import (
    FAULT_SPURIOUS_BIT,
    FAULT_TWIN_BIT,
    FaultyChannel,
    apply_fault_model,
    fault_counts,
    is_fault_seq,
    total_faults,
)
from repro.faults.fleet import (
    DirectionFaults,
    TerminatingFaults,
    merge_events,
)
from repro.faults.model import (
    GROUP_TRIGGER_FIELDS,
    FaultBurst,
    FaultGroup,
    FaultModel,
    FleetFault,
    GroupDrop,
    NodeCrash,
    PulseDrop,
    StateCorruption,
    corruptible_fields,
    mix64,
    rate_threshold,
    roll_u64,
)
from repro.faults.profile import (
    FaultProfile,
    ReplayProfile,
    build_fault_profile,
)

__all__ = [
    "FAULT_SPURIOUS_BIT",
    "FAULT_TWIN_BIT",
    "GROUP_TRIGGER_FIELDS",
    "DirectionFaults",
    "FaultBurst",
    "FaultGroup",
    "FaultModel",
    "FaultProfile",
    "FaultyChannel",
    "FleetFault",
    "GroupDrop",
    "NodeCrash",
    "PulseDrop",
    "ReplayProfile",
    "StateCorruption",
    "TerminatingFaults",
    "apply_fault_model",
    "build_fault_profile",
    "corruptible_fields",
    "fault_counts",
    "is_fault_seq",
    "merge_events",
    "mix64",
    "rate_threshold",
    "roll_u64",
    "total_faults",
]
