"""Fleet-backend compiler: the fault model over struct-of-arrays rounds.

The fleet engine (:mod:`repro.simulator.fleet`) advances ``B`` instances
in lockstep rounds over per-direction ``flight[B, n]`` columns.  This
module lowers a :class:`~repro.faults.model.FaultModel` onto that loop:

* **random channel faults** roll once per *(instance, round, channel)*
  — the fleet's notion of a fault opportunity (event channels roll per
  send; same declarative rates, per-backend opportunity grain).  Drops
  thin the in-flight population pulse-by-pulse (each of the ``f`` pulses
  on a channel rolls independently), duplicates/spurious add at most one
  pulse per channel per round.
* **deterministic drops** (:class:`~repro.faults.model.PulseDrop`)
  reproduce the fleet's historical ``FleetFault`` semantics exactly.
* **crashes** evaporate all deliveries toward the node while down (its
  state freezes: nothing is delivered, its pending is empty at round
  boundaries, so the kernels never touch it); a restart resets the node
  via the kernel's fresh-state semantics and re-sends its init pulse.
* **corruption** overwrites one materialized column value at the start
  of its round (fields pre-validated against the kernel ``SCHEMA``).

Every decision is a counter-based roll keyed on the **global** instance
index (``instance_offset + row``), so a counterexample replayed solo at
the same global index sees the identical fault pattern.  The NumPy and
pure-Python applications are written as exact twins (same clause order,
same roll coordinates) — the fleet differential tests pin this
bit-for-bit.

Lap-skips and faults: fault opportunities are defined per fleet *round*,
and a lap-skip compresses laps **within** one round, so skipping changes
no fault decision.  Node crashes are the exception — a skip would relay
pulses through a node that must absorb nothing — so a model with crash
clauses disables the skip fast-paths (correctness over throughput; the
recovery harness caps rounds with a watchdog anyway).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.faults.model import (
    _KEY_CHANNEL,
    _KEY_INSTANCE,
    _KEY_PULSE,
    _KEY_ROUND,
    _MIX_A,
    _MIX_B,
    _TWO64,
    KIND_DROP,
    KIND_DUPLICATE,
    KIND_SPURIOUS,
    FaultModel,
    corruptible_fields,
    mix64,
    rate_threshold,
    roll_u64,
)

#: Event-counter keys shared by every fleet fault adapter (same totals on
#: both backends; the differential tests compare the dicts directly).
EVENT_KEYS = (
    "dropped",
    "duplicated",
    "injected",
    "det_dropped",
    "crash_lost",
    "restarts",
    "corruptions",
)


def _fresh_events() -> Dict[str, int]:
    return {key: 0 for key in EVENT_KEYS}


def merge_events(*dicts: Optional[Dict[str, int]]) -> Dict[str, int]:
    """Sum per-kind fault-event counters across adapters."""
    merged = _fresh_events()
    for events in dicts:
        if events:
            for key, value in events.items():
                merged[key] = merged.get(key, 0) + value
    return merged


def _check_node(node: int, n: int, what: str) -> None:
    if not 0 <= node < n:
        raise ConfigurationError(
            f"{what} targets node {node}, outside the ring [0, {n})"
        )


def _np_rolls(
    np_mod: Any,
    seed: int,
    kind: int,
    round_index: int,
    pulse: int,
    instance_offset: int,
    n_rows: int,
    chan_base: int,
    n: int,
) -> Any:
    """Vectorized :func:`~repro.faults.model.roll_u64`: uint64 ``[B, n]``."""
    u64 = np_mod.uint64
    with np_mod.errstate(over="ignore"):
        b = (u64(instance_offset) + np_mod.arange(n_rows, dtype=u64))[:, None]
        c = (u64(chan_base) + np_mod.arange(n, dtype=u64))[None, :]
        x = (
            u64(mix64(seed))
            + u64(kind)
            + b * u64(_KEY_INSTANCE)
            + u64(round_index % _TWO64) * u64(_KEY_ROUND)
            + c * u64(_KEY_CHANNEL)
            + u64(pulse) * u64(_KEY_PULSE)
        )
        x = (x ^ (x >> u64(33))) * u64(_MIX_A)
        x = (x ^ (x >> u64(33))) * u64(_MIX_B)
        x = x ^ (x >> u64(33))
    return x


def _np_under(np_mod: Any, rolls: Any, threshold: int) -> Any:
    """``roll < threshold`` with the 2**64 (certain) threshold handled."""
    if threshold >= _TWO64:
        return np_mod.ones(rolls.shape, dtype=bool)
    return rolls < np_mod.uint64(threshold)


def _apply_random_np(
    np_mod: Any,
    model: FaultModel,
    events: Dict[str, int],
    round_index: int,
    flight: Any,
    instance_offset: int,
    chan_base: int,
    live: Any,
) -> None:
    """Random drop/dup/spurious over one direction's flight (in place).

    ``live`` is a bool ``[B]`` row mask: rows whose instance already
    quiesced are frozen — the pure-Python twin's per-instance loop has
    exited by then, so the batch must stop rolling faults for them too
    (fault streams must not depend on batch composition).
    """
    if not model.covers(round_index):
        return
    B, n = flight.shape
    rows = live[:, None]
    t_drop = rate_threshold(model.drop_rate)
    t_dup = rate_threshold(model.duplicate_rate)
    t_spur = rate_threshold(model.spurious_rate)
    if t_drop:
        fmax = int(flight.max())
        if fmax:
            removed = np_mod.zeros_like(flight)
            for j in range(fmax):
                rolls = _np_rolls(
                    np_mod, model.seed, KIND_DROP, round_index, j,
                    instance_offset, B, chan_base, n,
                )
                removed += _np_under(np_mod, rolls, t_drop) & (flight > j) & rows
            flight -= removed
            events["dropped"] += int(removed.sum())
    if t_dup:
        rolls = _np_rolls(
            np_mod, model.seed, KIND_DUPLICATE, round_index, 0,
            instance_offset, B, chan_base, n,
        )
        hit = _np_under(np_mod, rolls, t_dup) & (flight > 0) & rows
        flight += hit
        events["duplicated"] += int(hit.sum())
    if t_spur:
        rolls = _np_rolls(
            np_mod, model.seed, KIND_SPURIOUS, round_index, 0,
            instance_offset, B, chan_base, n,
        )
        hit = _np_under(np_mod, rolls, t_spur) & rows
        flight += hit
        events["injected"] += int(hit.sum())


def _apply_random_py(
    model: FaultModel,
    events: Dict[str, int],
    round_index: int,
    flight: List[int],
    instance: int,
    chan_base: int,
) -> None:
    """Scalar twin of :func:`_apply_random_np` for one instance."""
    if not model.covers(round_index):
        return
    n = len(flight)
    t_drop = rate_threshold(model.drop_rate)
    t_dup = rate_threshold(model.duplicate_rate)
    t_spur = rate_threshold(model.spurious_rate)
    if t_drop:
        for v in range(n):
            hits = 0
            for j in range(flight[v]):
                roll = roll_u64(
                    model.seed, KIND_DROP, instance, round_index, chan_base + v, j
                )
                if roll < t_drop:
                    hits += 1
            if hits:
                flight[v] -= hits
                events["dropped"] += hits
    if t_dup:
        for v in range(n):
            if flight[v] > 0:
                roll = roll_u64(
                    model.seed, KIND_DUPLICATE, instance, round_index,
                    chan_base + v, 0,
                )
                if roll < t_dup:
                    flight[v] += 1
                    events["duplicated"] += 1
    if t_spur:
        for v in range(n):
            roll = roll_u64(
                model.seed, KIND_SPURIOUS, instance, round_index,
                chan_base + v, 0,
            )
            if roll < t_spur:
                flight[v] += 1
                events["injected"] += 1


class DirectionFaults:
    """A :class:`FaultModel` compiled onto one directional warmup-kernel
    fleet run (Algorithm 1, or one half of Algorithm 3).

    The direction run materializes exactly two counter columns — its
    ``rho`` and ``sigma`` — so corruption clauses naming the *other*
    direction's fields are silently owned by the twin adapter (the
    caller compiles one adapter per direction).
    """

    def __init__(
        self,
        model: FaultModel,
        n: int,
        direction: str,
        shift: int,
        chan_base: int,
        algorithm: str,
    ) -> None:
        self.model = model
        self.n = n
        self.direction = direction
        self.shift = shift
        self.chan_base = chan_base
        allowed = corruptible_fields(algorithm)
        for corruption in model.corruptions:
            if corruption.field not in allowed:
                raise ConfigurationError(
                    f"cannot corrupt field {corruption.field!r} of algorithm "
                    f"{algorithm!r}; schema-validated targets: {list(allowed)}"
                )
            _check_node(corruption.node, n, "corruption")
        for crash in model.crashes:
            _check_node(crash.node, n, "crash")
        for drop in model.drops:
            _check_node(drop.node, n, "pulse-drop")
        self.drops = tuple(d for d in model.drops if d.direction == direction)
        rho_field = "rho_cw" if direction == "cw" else "rho_ccw"
        sigma_field = "sigma_cw" if direction == "cw" else "sigma_ccw"
        self._owned = {rho_field: "rho", sigma_field: "sigma"}
        self.corruptions = tuple(
            c for c in model.corruptions if c.field in self._owned
        )
        #: Lap/hop skips relay pulses through every node, which a crashed
        #: node must not do — crash models run skip-free (see module doc).
        self.allow_skips = not model.crashes
        self.events = _fresh_events()

    def apply_np(
        self,
        np_mod: Any,
        round_index: int,
        rho: Any,
        sigma: Any,
        flight: Any,
        instance_offset: int,
        live: Any,
    ) -> Any:
        """Mutate the columns for one round start; returns extra sends
        (0, or an int64 ``[B]`` array when a restart re-init sent pulses).

        ``live`` is a bool ``[B]`` mask of rows that have not yet
        quiesced; quiesced rows are frozen (the pure-Python twin's
        per-instance loop has already exited for them)."""
        B, n = flight.shape
        extra = None
        for drop in self.drops:
            if drop.round_index != round_index:
                continue
            if drop.instance is None:
                removed = np_mod.where(
                    live, np_mod.minimum(flight[:, drop.node], drop.count), 0
                )
                flight[:, drop.node] -= removed
                self.events["det_dropped"] += int(removed.sum())
            else:
                row = drop.instance - instance_offset
                if 0 <= row < B and live[row]:
                    removed = min(int(flight[row, drop.node]), drop.count)
                    flight[row, drop.node] -= removed
                    self.events["det_dropped"] += removed
        for crash in self.model.crashes:
            if crash.instance is None:
                rows: Any = live
                count = int(np_mod.sum(live))
            else:
                row = crash.instance - instance_offset
                if not (0 <= row < B and live[row]):
                    continue
                rows = row
                count = 1
            if count == 0:
                continue
            if crash.down(round_index):
                lost = flight[rows, crash.node]
                self.events["crash_lost"] += int(np_mod.sum(lost))
                flight[rows, crash.node] = 0
            elif crash.restarts_at(round_index):
                rho[rows, crash.node] = 0
                sigma[rows, crash.node] = 1
                flight[rows, (crash.node + self.shift) % n] += 1
                self.events["restarts"] += count
                if extra is None:
                    extra = np_mod.zeros(B, np_mod.int64)
                extra[rows] += 1
        _apply_random_np(
            np_mod, self.model, self.events, round_index, flight,
            instance_offset, self.chan_base, live,
        )
        for corruption in self.corruptions:
            if corruption.at_round != round_index:
                continue
            target = rho if self._owned[corruption.field] == "rho" else sigma
            if corruption.instance is None:
                target[live, corruption.node] = corruption.value
                self.events["corruptions"] += int(np_mod.sum(live))
            else:
                row = corruption.instance - instance_offset
                if 0 <= row < B and live[row]:
                    target[row, corruption.node] = corruption.value
                    self.events["corruptions"] += 1
        return 0 if extra is None else extra

    def apply_py(
        self,
        round_index: int,
        instance: int,
        gov: List[int],
        states: List[Any],
        flight: List[int],
        kernel: Any,
    ) -> int:
        """Scalar twin of :meth:`apply_np` for global ``instance``;
        returns the number of extra pulses sent (restart re-inits)."""
        n = self.n
        extra = 0
        for drop in self.drops:
            if drop.round_index != round_index:
                continue
            if drop.instance is None or drop.instance == instance:
                removed = min(flight[drop.node], drop.count)
                flight[drop.node] -= removed
                self.events["det_dropped"] += removed
        for crash in self.model.crashes:
            if crash.instance is not None and crash.instance != instance:
                continue
            if crash.down(round_index):
                self.events["crash_lost"] += flight[crash.node]
                flight[crash.node] = 0
            elif crash.restarts_at(round_index):
                states[crash.node] = kernel.make_state(gov[crash.node])
                _, emissions, _ = kernel.init(states[crash.node])
                for _port, cnt in emissions:
                    flight[(crash.node + self.shift) % n] += cnt
                    extra += cnt
                self.events["restarts"] += 1
        _apply_random_py(
            self.model, self.events, round_index, flight, instance,
            self.chan_base,
        )
        for corruption in self.corruptions:
            if corruption.at_round != round_index:
                continue
            if corruption.instance is None or corruption.instance == instance:
                attr = (
                    "rho_cw"
                    if self._owned[corruption.field] == "rho"
                    else "sigma_cw"
                )
                setattr(states[corruption.node], attr, corruption.value)
                self.events["corruptions"] += 1
        return extra


#: Terminating-kernel column spellings for corruptible schema fields.
_TERMINATING_COLS = {
    "rho_cw": "rho_cw",
    "sigma_cw": "sigma_cw",
    "rho_ccw": "rho_ccw",
    "sigma_ccw": "sigma_ccw",
    "pending_cw": "pend_cw",
    "pending_ccw": "pend_ccw",
}


class TerminatingFaults:
    """A :class:`FaultModel` compiled onto the terminating fleet run
    (Algorithm 2: both directions in one round loop, CW channels at
    indices ``[0, n)`` and CCW at ``[n, 2n)`` — the seeded scheduler's
    layout)."""

    def __init__(self, model: FaultModel, n: int) -> None:
        self.model = model
        self.n = n
        allowed = corruptible_fields("terminating")
        for corruption in model.corruptions:
            if corruption.field not in allowed:
                raise ConfigurationError(
                    f"cannot corrupt field {corruption.field!r} of algorithm "
                    f"'terminating'; schema-validated targets: {list(allowed)}"
                )
            _check_node(corruption.node, n, "corruption")
        for crash in model.crashes:
            _check_node(crash.node, n, "crash")
        for drop in model.drops:
            _check_node(drop.node, n, "pulse-drop")
        self.cw_drops = tuple(d for d in model.drops if d.direction == "cw")
        self.ccw_drops = tuple(d for d in model.drops if d.direction == "ccw")
        self.allow_skips = not model.crashes
        self.events = _fresh_events()

    def _det_drops_np(
        self,
        np_mod: Any,
        drops: Tuple[Any, ...],
        round_index: int,
        flight: Any,
        instance_offset: int,
        live: Any,
    ) -> None:
        B = flight.shape[0]
        for drop in drops:
            if drop.round_index != round_index:
                continue
            if drop.instance is None:
                removed = np_mod.where(
                    live, np_mod.minimum(flight[:, drop.node], drop.count), 0
                )
                flight[:, drop.node] -= removed
                self.events["det_dropped"] += int(removed.sum())
            else:
                row = drop.instance - instance_offset
                if 0 <= row < B and live[row]:
                    removed = min(int(flight[row, drop.node]), drop.count)
                    flight[row, drop.node] -= removed
                    self.events["det_dropped"] += removed

    def apply_np(
        self,
        np_mod: Any,
        round_index: int,
        cols: Any,
        cw_flight: Any,
        ccw_flight: Any,
        instance_offset: int,
        live: Any,
    ) -> Any:
        """Mutate columns/flights for one round start; returns extra sends
        (0, or int64 ``[B]`` when restart re-inits sent pulses).

        ``live`` freezes already-quiesced rows, matching the pure-Python
        per-instance loop exit (see :meth:`DirectionFaults.apply_np`)."""
        B, n = cw_flight.shape
        extra = None
        self._det_drops_np(
            np_mod, self.cw_drops, round_index, cw_flight, instance_offset, live
        )
        self._det_drops_np(
            np_mod, self.ccw_drops, round_index, ccw_flight, instance_offset, live
        )
        for crash in self.model.crashes:
            if crash.instance is None:
                rows: Any = live
                count = int(np_mod.sum(live))
            else:
                row = crash.instance - instance_offset
                if not (0 <= row < B and live[row]):
                    continue
                rows = row
                count = 1
            if count == 0:
                continue
            if crash.down(round_index):
                lost = cw_flight[rows, crash.node] + ccw_flight[rows, crash.node]
                self.events["crash_lost"] += int(np_mod.sum(lost))
                cw_flight[rows, crash.node] = 0
                ccw_flight[rows, crash.node] = 0
            elif crash.restarts_at(round_index):
                # Fresh-state reset (TerminatingColumns.fresh semantics for
                # one node) + the kernel init pulse on the CW channel.
                cols.rho_cw[rows, crash.node] = 0
                cols.rho_ccw[rows, crash.node] = 0
                cols.pend_cw[rows, crash.node] = 0
                cols.pend_ccw[rows, crash.node] = 0
                cols.sigma_cw[rows, crash.node] = 1
                cols.sigma_ccw[rows, crash.node] = 0
                cols.term_sent[rows, crash.node] = False
                cols.terminated[rows, crash.node] = False
                cols.out_leader[rows, crash.node] = False
                cw_flight[rows, (crash.node + 1) % n] += 1
                self.events["restarts"] += count
                if extra is None:
                    extra = np_mod.zeros(B, np_mod.int64)
                extra[rows] += 1
        _apply_random_np(
            np_mod, self.model, self.events, round_index, cw_flight,
            instance_offset, 0, live,
        )
        _apply_random_np(
            np_mod, self.model, self.events, round_index, ccw_flight,
            instance_offset, n, live,
        )
        for corruption in self.model.corruptions:
            if corruption.at_round != round_index:
                continue
            target = getattr(cols, _TERMINATING_COLS[corruption.field])
            if corruption.instance is None:
                target[live, corruption.node] = corruption.value
                self.events["corruptions"] += int(np_mod.sum(live))
            else:
                row = corruption.instance - instance_offset
                if 0 <= row < B and live[row]:
                    target[row, corruption.node] = corruption.value
                    self.events["corruptions"] += 1
        return 0 if extra is None else extra

    def apply_py(
        self,
        round_index: int,
        instance: int,
        ids: List[int],
        states: List[Any],
        out_leader: List[bool],
        cw_flight: List[int],
        ccw_flight: List[int],
        kernel: Any,
    ) -> int:
        """Scalar twin of :meth:`apply_np` for global ``instance``."""
        n = self.n
        extra = 0
        for drops, flight in ((self.cw_drops, cw_flight), (self.ccw_drops, ccw_flight)):
            for drop in drops:
                if drop.round_index != round_index:
                    continue
                if drop.instance is None or drop.instance == instance:
                    removed = min(flight[drop.node], drop.count)
                    flight[drop.node] -= removed
                    self.events["det_dropped"] += removed
        for crash in self.model.crashes:
            if crash.instance is not None and crash.instance != instance:
                continue
            if crash.down(round_index):
                self.events["crash_lost"] += (
                    cw_flight[crash.node] + ccw_flight[crash.node]
                )
                cw_flight[crash.node] = 0
                ccw_flight[crash.node] = 0
            elif crash.restarts_at(round_index):
                states[crash.node] = kernel.make_state(ids[crash.node])
                _, emissions, _ = kernel.init(states[crash.node])
                for _port, cnt in emissions:
                    # The terminating kernel's init emits on the CW send
                    # port only; route accordingly.
                    cw_flight[(crash.node + 1) % n] += cnt
                    extra += cnt
                out_leader[crash.node] = False
                self.events["restarts"] += 1
        _apply_random_py(
            self.model, self.events, round_index, cw_flight, instance, 0
        )
        _apply_random_py(
            self.model, self.events, round_index, ccw_flight, instance, n
        )
        for corruption in self.model.corruptions:
            if corruption.at_round != round_index:
                continue
            if corruption.instance is None or corruption.instance == instance:
                setattr(
                    states[corruption.node], corruption.field, corruption.value
                )
                self.events["corruptions"] += 1
        return extra
